"""Lexer for the C-like frontend language.

The language is a small C subset: ``long``/``double``/pointer types,
functions, ``if``/``while``/``for``, array indexing, and a ``prefetch``
builtin — enough to write every kernel in this repository at source
level (see ``examples/clike_frontend.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = frozenset({
    "long", "double", "void", "if", "else", "while", "for", "return",
    "prefetch", "pure", "restrict",
})

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = (
    "<<=", ">>=", "&&", "||", "==", "!=", "<=", ">=", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
)


@dataclass
class Token:
    """One lexical token.

    :ivar kind: ``ident``, ``number``, ``float``, ``keyword``, ``op`` or
        ``eof``.
    :ivar text: the exact source text.
    :ivar line: 1-based source line (for error messages).
    """

    kind: str
    text: str
    line: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


class LexError(Exception):
    """Raised on characters the language does not know."""


def tokenize(source: str) -> list[Token]:
    """Split ``source`` into tokens (comments ``//`` and ``/* */``)."""
    tokens: list[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i)
            if end < 0:
                raise LexError(f"line {line}: unterminated comment")
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
            i = j
            continue
        if ch.isdigit():
            j = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                tokens.append(Token("number", source[i:j], line))
                i = j
                continue
            while j < n and source[j].isdigit():
                j += 1
            if j < n and source[j] == "." and j + 1 < n and \
                    source[j + 1].isdigit():
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
                tokens.append(Token("float", source[i:j], line))
            else:
                tokens.append(Token("number", source[i:j], line))
            i = j
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line))
                i += len(op)
                break
        else:
            raise LexError(f"line {line}: unexpected character {ch!r}")
    tokens.append(Token("eof", "", line))
    return tokens
