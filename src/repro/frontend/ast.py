"""Abstract syntax tree for the C-like frontend."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TypeName:
    """A source-level type: ``long``, ``double``, ``void`` plus pointers.

    :ivar base: ``"long"``, ``"double"`` or ``"void"``.
    :ivar pointers: pointer depth (``long*`` has depth 1).
    """

    base: str
    pointers: int = 0

    def __str__(self) -> str:
        return self.base + "*" * self.pointers


# -- expressions --------------------------------------------------------------


@dataclass
class Expr:
    """Base class for expressions."""

    line: int = field(default=0, kw_only=True)


@dataclass
class IntLiteral(Expr):
    value: int


@dataclass
class FloatLiteral(Expr):
    value: float


@dataclass
class VarRef(Expr):
    name: str


@dataclass
class Index(Expr):
    """``base[index]`` — loads through a pointer."""

    base: Expr
    index: Expr


@dataclass
class Unary(Expr):
    op: str
    operand: Expr


@dataclass
class Binary(Expr):
    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class Ternary(Expr):
    """``cond ? a : b``."""

    cond: Expr
    then: Expr
    otherwise: Expr


@dataclass
class CallExpr(Expr):
    name: str
    args: list[Expr]


# -- statements -----------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for statements."""

    line: int = field(default=0, kw_only=True)


@dataclass
class Declaration(Stmt):
    type: TypeName
    name: str
    init: Expr | None


@dataclass
class Assign(Stmt):
    """``target op= value`` where target is a variable or an index."""

    target: Expr
    op: str  # "=", "+=", ...
    value: Expr


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class PrefetchStmt(Stmt):
    """``prefetch(&array[index])``-style hint; operand is an Index."""

    target: Expr


@dataclass
class If(Stmt):
    cond: Expr
    then: list[Stmt]
    otherwise: list[Stmt]


@dataclass
class While(Stmt):
    cond: Expr
    body: list[Stmt]


@dataclass
class For(Stmt):
    init: Stmt | None
    cond: Expr | None
    step: Stmt | None
    body: list[Stmt]


@dataclass
class Return(Stmt):
    value: Expr | None


# -- top level ------------------------------------------------------------------


@dataclass
class Param:
    type: TypeName
    name: str
    #: C99 ``restrict``: the pointer does not alias other parameters.
    restrict: bool = False


@dataclass
class FunctionDef:
    """One function definition."""

    name: str
    return_type: TypeName
    params: list[Param]
    body: list[Stmt]
    pure: bool = False
    line: int = 0


@dataclass
class Program:
    """A whole translation unit."""

    functions: list[FunctionDef]
