"""Recursive-descent parser for the C-like frontend."""

from __future__ import annotations

from . import ast
from .lexer import Token, tokenize


class SyntaxErrorC(Exception):
    """Raised on malformed frontend source."""


#: Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1, "&&": 2,
    "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>=")


class Parser:
    """Parses a token stream into a :class:`~repro.frontend.ast.Program`."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers --------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, text: str) -> bool:
        return self.current.text == text and self.current.kind in (
            "op", "keyword")

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.check(text):
            raise SyntaxErrorC(
                f"line {self.current.line}: expected {text!r}, got "
                f"{self.current.text!r}")
        return self.advance()

    def expect_ident(self) -> str:
        if self.current.kind != "ident":
            raise SyntaxErrorC(
                f"line {self.current.line}: expected identifier, got "
                f"{self.current.text!r}")
        return self.advance().text

    # -- grammar ------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        functions = []
        while self.current.kind != "eof":
            functions.append(self.parse_function())
        return ast.Program(functions)

    def _at_type(self) -> bool:
        return self.current.kind == "keyword" and self.current.text in (
            "long", "double", "void")

    def parse_type(self) -> ast.TypeName:
        if not self._at_type():
            raise SyntaxErrorC(
                f"line {self.current.line}: expected a type, got "
                f"{self.current.text!r}")
        base = self.advance().text
        pointers = 0
        while self.accept("*"):
            pointers += 1
        return ast.TypeName(base, pointers)

    def parse_function(self) -> ast.FunctionDef:
        line = self.current.line
        pure = self.accept("pure")
        return_type = self.parse_type()
        name = self.expect_ident()
        self.expect("(")
        params = []
        if not self.check(")"):
            while True:
                ptype = self.parse_type()
                restrict = self.accept("restrict")
                pname = self.expect_ident()
                params.append(ast.Param(ptype, pname,
                                        restrict=restrict))
                if not self.accept(","):
                    break
        self.expect(")")
        body = self.parse_block()
        return ast.FunctionDef(name, return_type, params, body,
                               pure=pure, line=line)

    def parse_block(self) -> list[ast.Stmt]:
        self.expect("{")
        statements = []
        while not self.accept("}"):
            statements.append(self.parse_statement())
        return statements

    def parse_statement(self) -> ast.Stmt:
        line = self.current.line
        if self.check("{"):
            # A bare block: flatten it as an If(true) would be overkill;
            # represent it as an If with constant-true condition.
            return ast.If(ast.IntLiteral(1, line=line),
                          self.parse_block(), [], line=line)
        if self._at_type():
            decl_type = self.parse_type()
            name = self.expect_ident()
            init = None
            if self.accept("="):
                init = self.parse_expression()
            self.expect(";")
            return ast.Declaration(decl_type, name, init, line=line)
        if self.accept("if"):
            self.expect("(")
            cond = self.parse_expression()
            self.expect(")")
            then = self._branch_body()
            otherwise: list[ast.Stmt] = []
            if self.accept("else"):
                otherwise = self._branch_body()
            return ast.If(cond, then, otherwise, line=line)
        if self.accept("while"):
            self.expect("(")
            cond = self.parse_expression()
            self.expect(")")
            return ast.While(cond, self._branch_body(), line=line)
        if self.accept("for"):
            self.expect("(")
            init = None if self.check(";") else self._simple_statement()
            self.expect(";")
            cond = None if self.check(";") else self.parse_expression()
            self.expect(";")
            step = None if self.check(")") else self._simple_statement()
            self.expect(")")
            return ast.For(init, cond, step, self._branch_body(),
                           line=line)
        if self.accept("return"):
            value = None if self.check(";") else self.parse_expression()
            self.expect(";")
            return ast.Return(value, line=line)
        if self.accept("prefetch"):
            self.expect("(")
            target = self.parse_expression()
            self.expect(")")
            self.expect(";")
            return ast.PrefetchStmt(target, line=line)
        stmt = self._simple_statement()
        self.expect(";")
        return stmt

    def _branch_body(self) -> list[ast.Stmt]:
        if self.check("{"):
            return self.parse_block()
        return [self.parse_statement()]

    def _simple_statement(self) -> ast.Stmt:
        """An assignment, increment, declaration, or expression (no ';')."""
        line = self.current.line
        if self._at_type():
            decl_type = self.parse_type()
            name = self.expect_ident()
            init = None
            if self.accept("="):
                init = self.parse_expression()
            return ast.Declaration(decl_type, name, init, line=line)
        expr = self.parse_expression()
        if self.current.kind == "op" and self.current.text in _ASSIGN_OPS:
            op = self.advance().text
            value = self.parse_expression()
            return ast.Assign(expr, op, value, line=line)
        if self.current.kind == "op" and self.current.text in ("++", "--"):
            op = self.advance().text
            one = ast.IntLiteral(1, line=line)
            return ast.Assign(expr, "+=" if op == "++" else "-=", one,
                              line=line)
        return ast.ExprStmt(expr, line=line)

    # -- expressions ----------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self.parse_ternary()

    def parse_ternary(self) -> ast.Expr:
        cond = self.parse_binary(0)
        if self.accept("?"):
            then = self.parse_expression()
            self.expect(":")
            otherwise = self.parse_ternary()
            return ast.Ternary(cond, then, otherwise, line=cond.line)
        return cond

    def parse_binary(self, min_precedence: int) -> ast.Expr:
        lhs = self.parse_unary()
        while self.current.kind == "op" and \
                _PRECEDENCE.get(self.current.text, -1) >= min_precedence:
            op = self.advance().text
            rhs = self.parse_binary(_PRECEDENCE[op] + 1)
            lhs = ast.Binary(op, lhs, rhs, line=lhs.line)
        return lhs

    def parse_unary(self) -> ast.Expr:
        line = self.current.line
        if self.current.kind == "op" and self.current.text in ("-", "!",
                                                               "~"):
            op = self.advance().text
            return ast.Unary(op, self.parse_unary(), line=line)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            if self.accept("["):
                index = self.parse_expression()
                self.expect("]")
                expr = ast.Index(expr, index, line=expr.line)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "number":
            self.advance()
            return ast.IntLiteral(int(token.text, 0), line=token.line)
        if token.kind == "float":
            self.advance()
            return ast.FloatLiteral(float(token.text), line=token.line)
        if token.kind == "ident":
            name = self.advance().text
            if self.accept("("):
                args = []
                if not self.check(")"):
                    while True:
                        args.append(self.parse_expression())
                        if not self.accept(","):
                            break
                self.expect(")")
                return ast.CallExpr(name, args, line=token.line)
            return ast.VarRef(name, line=token.line)
        if self.accept("("):
            expr = self.parse_expression()
            self.expect(")")
            return expr
        raise SyntaxErrorC(
            f"line {token.line}: unexpected token {token.text!r}")


def parse_source(source: str) -> ast.Program:
    """Tokenise and parse a translation unit."""
    return Parser(tokenize(source)).parse_program()
