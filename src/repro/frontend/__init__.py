"""A C-like frontend that lowers to the repro IR.

Example::

    from repro.frontend import compile_source

    module = compile_source(\"\"\"
        void count(long* keys, long* buckets, long n) {
            for (long i = 0; i < n; i++)
                buckets[keys[i]] += 1;
        }
    \"\"\")

The resulting module is in SSA form (mem2reg has run), so the prefetch
pass can find its induction variables.
"""

from . import ast
from .lexer import LexError, Token, tokenize
from .lowering import LoweringError, compile_source, lower_program
from .parser import Parser, SyntaxErrorC, parse_source

__all__ = [
    "ast", "LexError", "Token", "tokenize",
    "LoweringError", "compile_source", "lower_program",
    "Parser", "SyntaxErrorC", "parse_source",
]
