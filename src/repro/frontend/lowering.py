"""Lowering from the C-like AST to repro IR.

Local variables become one-element ``alloc`` slots in the entry block
with explicit loads and stores; :class:`repro.passes.mem2reg.Mem2RegPass`
then promotes them to SSA registers, after which loop counters are
visible to the induction-variable analysis (and hence the prefetch pass).
"""

from __future__ import annotations

from ..ir.basicblock import BasicBlock
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.instructions import Alloc, Instruction, Jump
from ..ir.module import Module
from ..ir.types import (FLOAT64, INT1, INT64, PointerType, Type, VOID,
                        FloatType, IntType)
from ..ir.values import Constant, Value
from ..ir.verifier import verify_module
from ..passes.constfold import ConstantFoldingPass
from ..passes.dce import DeadCodeEliminationPass
from ..passes.mem2reg import Mem2RegPass
from . import ast
from .parser import parse_source


class LoweringError(Exception):
    """Raised on semantic errors (unknown names, type mismatches...)."""


def _lower_type(t: ast.TypeName) -> Type:
    base: Type
    if t.base == "long":
        base = INT64
    elif t.base == "double":
        base = FLOAT64
    elif t.base == "void":
        base = VOID
    else:  # pragma: no cover - parser guarantees the base
        raise LoweringError(f"unknown type {t.base}")
    for _ in range(t.pointers):
        base = PointerType(base)
    return base


_INT_BINOPS = {"+": "add", "-": "sub", "*": "mul", "/": "sdiv",
               "%": "srem", "&": "and", "|": "or", "^": "xor",
               "<<": "shl", ">>": "ashr"}
_FLOAT_BINOPS = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}
_INT_CMPS = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle",
             ">": "sgt", ">=": "sge"}
_FLOAT_CMPS = {"==": "oeq", "!=": "one", "<": "olt", "<=": "ole",
               ">": "ogt", ">=": "oge"}


class _FunctionLowering:
    def __init__(self, module: Module, func: Function,
                 definition: ast.FunctionDef):
        self.module = module
        self.func = func
        self.definition = definition
        self.builder = IRBuilder()
        self.scopes: list[dict[str, Value]] = [{}]
        self.entry = func.add_block("entry")
        self.entry_jump: Jump | None = None

    # -- scope helpers --------------------------------------------------

    def declare(self, name: str, slot: Value) -> None:
        scope = self.scopes[-1]
        if name in scope:
            raise LoweringError(f"redeclaration of {name!r}")
        scope[name] = slot

    def lookup(self, name: str) -> Value:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise LoweringError(f"unknown variable {name!r}")

    # -- driver -----------------------------------------------------------

    def lower(self) -> None:
        body_start = self.func.add_block("body")
        self.builder.set_insert_point(self.entry)
        self.entry_jump = self.builder.jmp(body_start)
        self.builder.set_insert_point(body_start)

        # Parameters get slots too, so they are assignable like in C.
        for arg in self.func.args:
            slot = self._entry_alloc(arg.type, arg.name)
            self.builder.store(arg, slot)
            self.declare(arg.name, slot)

        self.lower_statements(self.definition.body)
        if self.builder.block.terminator is None:
            if isinstance(self.func.return_type, IntType):
                self.builder.ret(Constant(self.func.return_type, 0))
            elif isinstance(self.func.return_type, FloatType):
                self.builder.ret(Constant(self.func.return_type, 0.0))
            else:
                self.builder.ret()

    def _entry_alloc(self, type: Type, name: str) -> Alloc:
        alloc = Alloc(type, Constant(INT64, 1), name)
        self.entry.insert_before(self.entry_jump, alloc)
        return alloc

    def _new_block(self, name: str) -> BasicBlock:
        # Repeated constructs (nested loops, chains of ifs) reuse the
        # same base names; uniquify with a suffix.
        taken = {b.name for b in self.func.blocks}
        if name in taken:
            counter = 1
            while f"{name}.{counter}" in taken:
                counter += 1
            name = f"{name}.{counter}"
        return self.func.add_block(name)

    # -- statements ----------------------------------------------------------

    def lower_statements(self, statements: list[ast.Stmt]) -> None:
        self.scopes.append({})
        for stmt in statements:
            self.lower_statement(stmt)
        self.scopes.pop()

    def lower_statement(self, stmt: ast.Stmt) -> None:
        if self.builder.block.terminator is not None:
            # Unreachable code after return: lower into a fresh dead
            # block so construction stays well-formed.
            self.builder.set_insert_point(self._new_block("dead"))
        if isinstance(stmt, ast.Declaration):
            var_type = _lower_type(stmt.type)
            if isinstance(var_type, type(VOID)):
                raise LoweringError(
                    f"line {stmt.line}: cannot declare void variable")
            slot = self._entry_alloc(var_type, stmt.name)
            self.declare(stmt.name, slot)
            if stmt.init is not None:
                value = self.lower_expr(stmt.init, expect=var_type)
                self.builder.store(value, slot)
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr)
        elif isinstance(stmt, ast.PrefetchStmt):
            if not isinstance(stmt.target, ast.Index):
                raise LoweringError(
                    f"line {stmt.line}: prefetch needs array[index]")
            ptr = self._lower_address(stmt.target)
            self.builder.prefetch(ptr)
        elif isinstance(stmt, ast.Return):
            value = None
            if stmt.value is not None:
                value = self.lower_expr(stmt.value,
                                        expect=self.func.return_type)
            elif not isinstance(self.func.return_type, type(VOID)):
                raise LoweringError(
                    f"line {stmt.line}: non-void function must return "
                    f"a value")
            self.builder.ret(value)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        else:  # pragma: no cover - parser produces no other nodes
            raise LoweringError(f"cannot lower {type(stmt).__name__}")

    def _lower_assign(self, stmt: ast.Assign) -> None:
        if isinstance(stmt.target, ast.VarRef):
            slot = self.lookup(stmt.target.name)
            target_type = slot.type.pointee  # type: ignore[attr-defined]
            ptr = slot
        elif isinstance(stmt.target, ast.Index):
            ptr = self._lower_address(stmt.target)
            target_type = ptr.type.pointee  # type: ignore[attr-defined]
        else:
            raise LoweringError(
                f"line {stmt.line}: cannot assign to this expression")
        value = self.lower_expr(stmt.value, expect=target_type)
        if stmt.op != "=":
            current = self.builder.load(ptr, "cur")
            opcode = self._binop_opcode(stmt.op[:-1], target_type,
                                        stmt.line)
            value = self.builder.binop(opcode, current, value)
        self.builder.store(value, ptr)

    def _lower_if(self, stmt: ast.If) -> None:
        cond = self.lower_condition(stmt.cond)
        then_block = self._new_block("if.then")
        merge = self._new_block("if.end")
        else_block = self._new_block("if.else") if stmt.otherwise else merge
        self.builder.br(cond, then_block, else_block)
        self.builder.set_insert_point(then_block)
        self.lower_statements(stmt.then)
        if self.builder.block.terminator is None:
            self.builder.jmp(merge)
        if stmt.otherwise:
            self.builder.set_insert_point(else_block)
            self.lower_statements(stmt.otherwise)
            if self.builder.block.terminator is None:
                self.builder.jmp(merge)
        self.builder.set_insert_point(merge)

    def _lower_while(self, stmt: ast.While) -> None:
        header = self._new_block("while.cond")
        body = self._new_block("while.body")
        exit_block = self._new_block("while.end")
        self.builder.jmp(header)
        self.builder.set_insert_point(header)
        cond = self.lower_condition(stmt.cond)
        self.builder.br(cond, body, exit_block)
        self.builder.set_insert_point(body)
        self.lower_statements(stmt.body)
        if self.builder.block.terminator is None:
            self.builder.jmp(header)
        self.builder.set_insert_point(exit_block)

    def _lower_for(self, stmt: ast.For) -> None:
        self.scopes.append({})
        if stmt.init is not None:
            self.lower_statement(stmt.init)
        header = self._new_block("for.cond")
        body = self._new_block("for.body")
        exit_block = self._new_block("for.end")
        self.builder.jmp(header)
        self.builder.set_insert_point(header)
        if stmt.cond is not None:
            cond = self.lower_condition(stmt.cond)
            self.builder.br(cond, body, exit_block)
        else:
            self.builder.jmp(body)
        self.builder.set_insert_point(body)
        self.lower_statements(stmt.body)
        if stmt.step is not None and \
                self.builder.block.terminator is None:
            self.lower_statement(stmt.step)
        if self.builder.block.terminator is None:
            self.builder.jmp(header)
        self.builder.set_insert_point(exit_block)
        self.scopes.pop()

    # -- expressions ------------------------------------------------------------

    def lower_condition(self, expr: ast.Expr) -> Value:
        """Lower an expression used as a branch condition to an i1."""
        if isinstance(expr, ast.Binary) and expr.op in _INT_CMPS:
            lhs = self.lower_expr(expr.lhs)
            rhs = self.lower_expr(expr.rhs, expect=lhs.type)
            table = _FLOAT_CMPS if isinstance(lhs.type, FloatType) \
                else _INT_CMPS
            return self.builder.cmp(table[expr.op], lhs, rhs)
        value = self.lower_expr(expr)
        if value.type == INT1:
            return value
        zero = Constant(value.type, 0)
        return self.builder.cmp(
            "one" if isinstance(value.type, FloatType) else "ne",
            value, zero)

    def _binop_opcode(self, op: str, type: Type, line: int) -> str:
        if isinstance(type, FloatType):
            opcode = _FLOAT_BINOPS.get(op)
        else:
            opcode = _INT_BINOPS.get(op)
        if opcode is None:
            raise LoweringError(
                f"line {line}: operator {op!r} not supported for {type}")
        return opcode

    def lower_expr(self, expr: ast.Expr,
                   expect: Type | None = None) -> Value:
        value = self._lower_expr_inner(expr)
        if expect is not None and value.type != expect:
            if isinstance(value, Constant) and \
                    isinstance(expect, (IntType, FloatType)):
                return Constant(expect, value.value)
            raise LoweringError(
                f"line {expr.line}: expected {expect}, got {value.type}")
        return value

    def _lower_expr_inner(self, expr: ast.Expr) -> Value:
        b = self.builder
        if isinstance(expr, ast.IntLiteral):
            return Constant(INT64, expr.value)
        if isinstance(expr, ast.FloatLiteral):
            return Constant(FLOAT64, expr.value)
        if isinstance(expr, ast.VarRef):
            slot = self.lookup(expr.name)
            return b.load(slot, expr.name)
        if isinstance(expr, ast.Index):
            return b.load(self._lower_address(expr))
        if isinstance(expr, ast.Unary):
            operand = self._lower_expr_inner(expr.operand)
            if expr.op == "-":
                zero = Constant(operand.type, 0)
                opcode = "fsub" if isinstance(operand.type, FloatType) \
                    else "sub"
                return b.binop(opcode, zero, operand)
            if expr.op == "~":
                return b.xor(operand, Constant(operand.type, -1))
            if expr.op == "!":
                is_zero = b.cmp("eq", operand,
                                Constant(operand.type, 0))
                return b.cast("zext", is_zero, INT64)
            raise LoweringError(f"unknown unary operator {expr.op}")
        if isinstance(expr, ast.Binary):
            lhs = self._lower_expr_inner(expr.lhs)
            rhs = self.lower_expr(expr.rhs, expect=lhs.type)
            if expr.op in _INT_CMPS:
                table = _FLOAT_CMPS if isinstance(lhs.type, FloatType) \
                    else _INT_CMPS
                flag = b.cmp(table[expr.op], lhs, rhs)
                return b.cast("zext", flag, INT64)
            if expr.op in ("&&", "||"):
                # Non-short-circuit logical ops on 0/1 longs.
                opcode = "and" if expr.op == "&&" else "or"
                lb = b.cmp("ne", lhs, Constant(lhs.type, 0))
                rb = b.cmp("ne", rhs, Constant(rhs.type, 0))
                combined = b.binop(opcode, b.cast("zext", lb, INT64),
                                   b.cast("zext", rb, INT64))
                return combined
            opcode = self._binop_opcode(expr.op, lhs.type, expr.line)
            return b.binop(opcode, lhs, rhs)
        if isinstance(expr, ast.Ternary):
            cond = self.lower_condition(expr.cond)
            then = self._lower_expr_inner(expr.then)
            otherwise = self.lower_expr(expr.otherwise, expect=then.type)
            return b.select(cond, then, otherwise)
        if isinstance(expr, ast.CallExpr):
            try:
                callee = self.module.function(expr.name)
            except KeyError:
                raise LoweringError(
                    f"line {expr.line}: unknown function "
                    f"{expr.name!r}") from None
            params = callee.type.param_types
            if len(params) != len(expr.args):
                raise LoweringError(
                    f"line {expr.line}: {expr.name} expects "
                    f"{len(params)} arguments")
            args = [self.lower_expr(a, expect=p)
                    for a, p in zip(expr.args, params)]
            return b.call(callee, args)
        raise LoweringError(
            f"cannot lower expression {type(expr).__name__}")

    def _lower_address(self, expr: ast.Index) -> Value:
        base = self._lower_expr_inner(expr.base)
        if not isinstance(base.type, PointerType):
            raise LoweringError(
                f"line {expr.line}: indexing a non-pointer "
                f"({base.type})")
        index = self.lower_expr(expr.index, expect=INT64)
        return self.builder.gep(base, index)


def lower_program(program: ast.Program, name: str = "module",
                  optimize: bool = True) -> Module:
    """Lower a parsed program to IR (verified; optionally cleaned up by
    mem2reg + constant folding + DCE)."""
    module = Module(name)
    functions = []
    for definition in program.functions:
        func = module.create_function(
            definition.name, _lower_type(definition.return_type),
            [(p.name, _lower_type(p.type)) for p in definition.params],
            pure=definition.pure)
        for arg, param in zip(func.args, definition.params):
            arg.noalias = param.restrict
        functions.append((func, definition))
    for func, definition in functions:
        _FunctionLowering(module, func, definition).lower()
    verify_module(module)
    if optimize:
        Mem2RegPass().run(module)
        ConstantFoldingPass().run(module)
        DeadCodeEliminationPass().run(module)
        verify_module(module)
    return module


def compile_source(source: str, name: str = "module",
                   optimize: bool = True) -> Module:
    """Parse and lower C-like source to a verified IR module."""
    from ..telemetry.spans import span
    with span("frontend", "compile_source", module=name,
              optimize=optimize):
        return lower_program(parse_source(source), name, optimize)
