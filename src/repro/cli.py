"""Command-line driver: compile C-like source, run passes, inspect IR.

Usage::

    python -m repro compile kernel.c --prefetch --print-ir
    python -m repro compile kernel.c --prefetch -O --emit-ir out.ir
    python -m repro systems

``compile`` parses and lowers a C-like file (see
:mod:`repro.frontend`), optionally runs the automatic indirect-prefetch
pass (printing its report) and the -O cleanup pipeline, and emits the
textual IR.  ``systems`` prints the simulated Table 1 machines.
"""

from __future__ import annotations

import argparse
import sys

from .bench.reporting import format_table
from .frontend import compile_source
from .ir import print_module, verify_module
from .passes import (CommonSubexpressionEliminationPass,
                     DeadCodeEliminationPass, IndirectPrefetchPass,
                     LoopInvariantCodeMotionPass, PassManager,
                     PrefetchOptions, SimplifyCFGPass)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Software prefetching for indirect memory accesses "
                    "(CGO 2017) — compiler driver")
    sub = parser.add_subparsers(dest="command", required=True)

    compile_cmd = sub.add_parser(
        "compile", help="compile a C-like source file to IR")
    compile_cmd.add_argument("source", help="input source file")
    compile_cmd.add_argument(
        "--prefetch", action="store_true",
        help="run the automatic indirect-prefetch pass")
    compile_cmd.add_argument(
        "--lookahead", type=int, default=64, metavar="C",
        help="look-ahead constant c of eq. (1) (default 64)")
    compile_cmd.add_argument(
        "--no-stride", action="store_true",
        help="omit the staggered stride prefetch (Fig. 5's "
             "indirect-only mode)")
    compile_cmd.add_argument(
        "--hoist", action="store_true",
        help="enable prefetch loop hoisting (§4.6)")
    compile_cmd.add_argument(
        "-O", "--optimize", action="store_true",
        help="run the cleanup pipeline (simplifycfg, licm, cse, dce)")
    compile_cmd.add_argument(
        "--print-ir", action="store_true",
        help="print the final IR to stdout")
    compile_cmd.add_argument(
        "--emit-ir", metavar="FILE", help="write the final IR to FILE")

    sub.add_parser("systems", help="print the simulated machines")
    return parser


def _cmd_compile(args: argparse.Namespace, out) -> int:
    try:
        with open(args.source) as handle:
            source = handle.read()
    except OSError as exc:
        print(f"error: cannot read {args.source}: {exc}",
              file=sys.stderr)
        return 1
    try:
        module = compile_source(source, name=args.source)
    except Exception as exc:  # lexer/parser/lowering errors
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.prefetch:
        options = PrefetchOptions(
            lookahead=args.lookahead,
            emit_stride_prefetch=not args.no_stride,
            enable_hoisting=args.hoist)
        report = IndirectPrefetchPass(options).run(module)
        print(report.summary(), file=out)

    if args.optimize:
        pipeline = PassManager()
        pipeline.add(SimplifyCFGPass())
        pipeline.add(LoopInvariantCodeMotionPass())
        pipeline.add(CommonSubexpressionEliminationPass())
        pipeline.add(DeadCodeEliminationPass())
        pipeline.run(module)

    verify_module(module)
    text = print_module(module)
    if args.emit_ir:
        with open(args.emit_ir, "w") as handle:
            handle.write(text)
    if args.print_ir or not args.emit_ir:
        print(text, file=out)
    return 0


def _cmd_systems(out) -> int:
    from .bench.experiments import table1_rows
    rows = table1_rows()
    headers = list(rows[0])
    print(format_table(headers,
                       [[r[h] for h in headers] for r in rows],
                       "Simulated systems (paper Table 1)"), file=out)
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    if args.command == "compile":
        return _cmd_compile(args, out)
    if args.command == "systems":
        return _cmd_systems(out)
    return 2  # pragma: no cover - argparse enforces the choices
