"""Command-line driver: compile C-like source, run passes, inspect IR.

Usage::

    python -m repro compile kernel.c --prefetch --print-ir
    python -m repro compile kernel.c --prefetch -O --emit-ir out.ir
    python -m repro systems

``compile`` parses and lowers a C-like file (see
:mod:`repro.frontend`), optionally runs the automatic indirect-prefetch
pass (printing its report) and the -O cleanup pipeline, and emits the
textual IR.  ``systems`` prints the simulated Table 1 machines.
"""

from __future__ import annotations

import argparse
import os
import sys

from .bench.reporting import format_table
from .frontend import compile_source
from .ir import print_module, verify_module
from .passes import (CommonSubexpressionEliminationPass,
                     DeadCodeEliminationPass, IndirectPrefetchPass,
                     LoopInvariantCodeMotionPass, PassManager,
                     PrefetchOptions, SimplifyCFGPass)


def _version() -> str:
    """Package version from installed metadata, else the source tree."""
    try:
        from importlib.metadata import version
        return version("repro")
    except Exception:
        from . import __version__
        return __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Software prefetching for indirect memory accesses "
                    "(CGO 2017) — compiler driver")
    parser.add_argument(
        "--version", action="version", version=f"repro {_version()}")
    sub = parser.add_subparsers(dest="command", required=True)

    compile_cmd = sub.add_parser(
        "compile", help="compile a C-like source file to IR")
    compile_cmd.add_argument("source", help="input source file")
    compile_cmd.add_argument(
        "--prefetch", action="store_true",
        help="run the automatic indirect-prefetch pass")
    compile_cmd.add_argument(
        "--lookahead", type=int, default=64, metavar="C",
        help="look-ahead constant c of eq. (1) (default 64)")
    compile_cmd.add_argument(
        "--no-stride", action="store_true",
        help="omit the staggered stride prefetch (Fig. 5's "
             "indirect-only mode)")
    compile_cmd.add_argument(
        "--hoist", action="store_true",
        help="enable prefetch loop hoisting (§4.6)")
    compile_cmd.add_argument(
        "-O", "--optimize", action="store_true",
        help="run the cleanup pipeline (simplifycfg, licm, cse, dce)")
    compile_cmd.add_argument(
        "--print-ir", action="store_true",
        help="print the final IR to stdout")
    compile_cmd.add_argument(
        "--emit-ir", metavar="FILE", help="write the final IR to FILE")

    sub.add_parser("systems", help="print the simulated machines")

    bench_cmd = sub.add_parser(
        "bench", help="run one figure's experiment and print its table")
    bench_cmd.add_argument(
        "figure",
        help="which figure to reproduce (fig2, fig4a-d, fig5-fig10)")
    bench_cmd.add_argument(
        "--small", action="store_true",
        help="scaled-down workloads (quick smoke sizes)")
    bench_cmd.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for independent runs "
             "(default: REPRO_SIM_JOBS or the available CPUs)")
    bench_cmd.add_argument(
        "--no-cache", action="store_true",
        help="disable the run-result disk cache")
    bench_cmd.add_argument(
        "--cache-dir", metavar="DIR",
        help="cache root (default: REPRO_SIM_CACHE_DIR or .sim-cache)")
    bench_cmd.add_argument(
        "--hot-report", action="store_true",
        help="run the figure under the trace-JIT + vector tiers (disk "
             "cache off, single process) and print the hottest compiled "
             "traces, their vectorized-batch coverage, and their "
             "TraceCompiled/TraceDeopt/VectorBatchCompiled/VectorDeopt "
             "remarks")
    bench_cmd.add_argument(
        "--hot-top", type=int, default=10, metavar="N",
        help="rows in the --hot-report table (default 10)")
    bench_cmd.add_argument(
        "--obs-out", metavar="FILE",
        help="after the run, write the bench metrics registry "
             "(per-run counters, per-stage wall-time histograms) as "
             "Prometheus text exposition to FILE")

    stats_cmd = sub.add_parser(
        "stats",
        help="prefetch-telemetry report for a workload or figure")
    stats_cmd.add_argument(
        "target",
        help="workload name (is, cg, ra, hj2, hj8, g500-s16, g500-s21), "
             "'quick' for the whole suite, or fig4a-d for one machine's "
             "suite")
    stats_cmd.add_argument(
        "--machine", default=None, metavar="NAME",
        help="machine to simulate (default Haswell; ignored for "
             "fig4a-d targets, which pin their machine)")
    stats_cmd.add_argument(
        "--variant", default="auto", metavar="V",
        help="prefetched variant to profile against plain "
             "(default auto)")
    stats_cmd.add_argument(
        "--lookahead", type=int, default=64, metavar="C",
        help="look-ahead constant c of eq. (1) (default 64)")
    stats_cmd.add_argument(
        "--small", action="store_true",
        help="scaled-down workloads (quick smoke sizes)")
    stats_cmd.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable JSON report instead of a table")
    stats_cmd.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for independent runs")

    explain_cmd = sub.add_parser(
        "explain",
        help="join compile-time prefetch remarks with runtime outcomes")
    explain_cmd.add_argument(
        "target",
        help="workload name (is, cg, ra, hj2, hj8, g500-s16, g500-s21), "
             "'quick' for the whole suite, or fig4a-d for one machine's "
             "suite")
    explain_cmd.add_argument(
        "--machine", default=None, metavar="NAME",
        help="machine to simulate (default Haswell; ignored for "
             "fig4a-d targets, which pin their machine)")
    explain_cmd.add_argument(
        "--variant", default="auto", metavar="V",
        help="prefetched variant to explain (default auto)")
    explain_cmd.add_argument(
        "--lookahead", type=int, default=64, metavar="C",
        help="look-ahead constant c of eq. (1) (default 64)")
    explain_cmd.add_argument(
        "--small", action="store_true",
        help="scaled-down workloads (quick smoke sizes)")
    explain_cmd.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable JSON report instead of tables")
    explain_cmd.add_argument(
        "--remarks-out", metavar="FILE",
        help="also write the per-workload remark streams as JSON")
    explain_cmd.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for independent runs")

    timeline_cmd = sub.add_parser(
        "timeline",
        help="flight-recorder phase report (windowed time series) for "
             "a workload or figure")
    timeline_cmd.add_argument(
        "target",
        help="workload name (is, cg, ra, hj2, hj8, g500-s16, g500-s21), "
             "'quick' for the whole suite, or fig4a-d for one machine's "
             "suite")
    timeline_cmd.add_argument(
        "--machine", default=None, metavar="NAME",
        help="machine to simulate (default Haswell; ignored for "
             "fig4a-d targets, which pin their machine)")
    timeline_cmd.add_argument(
        "--variant", default="auto", metavar="V",
        help="variant to record (default auto)")
    timeline_cmd.add_argument(
        "--lookahead", type=int, default=64, metavar="C",
        help="look-ahead constant c of eq. (1) (default 64)")
    timeline_cmd.add_argument(
        "--small", action="store_true",
        help="scaled-down workloads (quick smoke sizes)")
    timeline_cmd.add_argument(
        "--window", type=int, default=None, metavar="CYCLES",
        help="window width in simulated cycles (default: "
             "REPRO_SIM_TIMELINE_WINDOW or 100000)")
    timeline_cmd.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable JSON report instead of tables")
    timeline_cmd.add_argument(
        "--perfetto", metavar="FILE",
        help="write the runs as Chrome trace-event JSON (loadable at "
             "ui.perfetto.dev) to FILE")

    serve_cmd = sub.add_parser(
        "serve",
        help="run the multi-tenant compile-and-simulate HTTP service")
    serve_cmd.add_argument(
        "--host", default="127.0.0.1", help="bind address")
    serve_cmd.add_argument(
        "--port", type=int, default=8787,
        help="bind port (0 = pick a free one; default 8787)")
    serve_cmd.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="simulation worker processes (default: "
             "REPRO_SERVE_WORKERS or the available CPUs)")
    serve_cmd.add_argument(
        "--queue", type=int, default=64, metavar="N",
        help="max distinct jobs in flight before shedding with 429 "
             "(default 64)")
    serve_cmd.add_argument(
        "--timeout", type=float, default=300.0, metavar="S",
        help="per-request execution deadline in seconds; a blown "
             "deadline answers 504 and recycles the worker "
             "(default 300)")
    serve_cmd.add_argument(
        "--cache-dir", metavar="DIR",
        help="content-addressed result store root (default: "
             "REPRO_SIM_CACHE_DIR or .serve-cas)")
    serve_cmd.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="CAS byte budget; LRU garbage collection runs "
             "opportunistically past it (default: unbounded)")
    serve_cmd.add_argument(
        "--log-format", default="text",
        choices=("text", "json", "off"),
        help="structured access/event log format, on stderr "
             "(default text; json = one repro-serve-log-v1 object "
             "per line)")
    serve_cmd.add_argument(
        "--trace-buffer", type=int, default=256, metavar="N",
        help="request traces kept for GET /v1/trace/<id> "
             "(default 256)")
    serve_cmd.add_argument(
        "--debug", action="store_true", help=argparse.SUPPRESS)

    submit_cmd = sub.add_parser(
        "submit", help="submit one job to a running repro serve")
    submit_cmd.add_argument(
        "target", nargs="?",
        help="workload name (is, cg, ra, hj2, hj8, g500-s16, "
             "g500-s21); omit when using --source")
    submit_cmd.add_argument(
        "--source", metavar="FILE",
        help="compile request: C-like kernel source file instead of a "
             "simulation target")
    submit_cmd.add_argument(
        "--host", default="127.0.0.1", help="server address")
    submit_cmd.add_argument(
        "--port", type=int, default=8787, help="server port")
    submit_cmd.add_argument(
        "--machine", default="Haswell", metavar="NAME",
        help="machine to simulate (default Haswell)")
    submit_cmd.add_argument(
        "--variant", default="auto", metavar="V",
        help="variant to run (default auto)")
    submit_cmd.add_argument(
        "--lookahead", type=int, default=64, metavar="C",
        help="look-ahead constant c of eq. (1) (default 64)")
    submit_cmd.add_argument(
        "--small", action="store_true",
        help="scaled-down workload (quick smoke sizes)")
    submit_cmd.add_argument(
        "--tier", default="auto",
        choices=("auto", "reference", "fastpath", "tracejit", "vector"),
        help="execution tier gate for the worker (default auto)")
    submit_cmd.add_argument(
        "--include", default="", metavar="LIST",
        help="comma-separated extras to return: "
             "telemetry,remarks,timeline,spans")
    submit_cmd.add_argument(
        "--no-validate", action="store_true",
        help="skip functional validation of the results")
    submit_cmd.add_argument(
        "-O", "--optimize", action="store_true",
        help="compile requests: run the -O cleanup pipeline")
    submit_cmd.add_argument(
        "--no-prefetch", action="store_true",
        help="compile requests: skip the indirect-prefetch pass")
    submit_cmd.add_argument(
        "--metrics", action="store_true",
        help="fetch /metrics instead of submitting a job")
    submit_cmd.add_argument(
        "--trace-out", metavar="FILE",
        help="after the job answers, fetch its cross-process span "
             "tree (GET /v1/trace/<request_id>) and write it as "
             "Chrome trace-event JSON loadable at ui.perfetto.dev")

    top_cmd = sub.add_parser(
        "top",
        help="live terminal dashboard over a running repro serve "
             "(polls GET /metrics)")
    top_cmd.add_argument(
        "--host", default="127.0.0.1", help="server address")
    top_cmd.add_argument(
        "--port", type=int, default=8787, help="server port")
    top_cmd.add_argument(
        "--interval", type=float, default=2.0, metavar="S",
        help="poll interval in seconds (default 2)")
    top_cmd.add_argument(
        "--once", action="store_true",
        help="print a single frame and exit (scripts, smoke checks)")

    cache_cmd = sub.add_parser(
        "cache", help="inspect and garbage-collect the result store")
    cache_sub = cache_cmd.add_subparsers(dest="cache_command",
                                         required=True)
    gc_cmd = cache_sub.add_parser(
        "gc", help="evict least-recently-used entries over a byte "
                   "budget (works on any run-cache/CAS root)")
    gc_cmd.add_argument(
        "--max-bytes", type=int, default=256 << 20, metavar="N",
        help="byte budget to trim the store to (default 256 MiB)")
    gc_cmd.add_argument(
        "--dry-run", action="store_true",
        help="report what would be evicted without deleting")
    gc_cmd.add_argument(
        "--cache-dir", metavar="DIR",
        help="store root (default: REPRO_SIM_CACHE_DIR or .sim-cache)")
    return parser


def _cmd_compile(args: argparse.Namespace, out) -> int:
    try:
        with open(args.source) as handle:
            source = handle.read()
    except OSError as exc:
        print(f"error: cannot read {args.source}: {exc}",
              file=sys.stderr)
        return 1
    try:
        module = compile_source(source, name=args.source)
    except Exception as exc:  # lexer/parser/lowering errors
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.prefetch:
        options = PrefetchOptions(
            lookahead=args.lookahead,
            emit_stride_prefetch=not args.no_stride,
            enable_hoisting=args.hoist)
        report = IndirectPrefetchPass(options).run(module)
        print(report.summary(), file=out)

    if args.optimize:
        pipeline = PassManager()
        pipeline.add(SimplifyCFGPass())
        pipeline.add(LoopInvariantCodeMotionPass())
        pipeline.add(CommonSubexpressionEliminationPass())
        pipeline.add(DeadCodeEliminationPass())
        pipeline.run(module)

    verify_module(module)
    text = print_module(module)
    if args.emit_ir:
        with open(args.emit_ir, "w") as handle:
            handle.write(text)
    if args.print_ir or not args.emit_ir:
        print(text, file=out)
    return 0


def _fig2(small, jobs):
    from .bench.experiments import fig2_prefetch_schemes
    result = fig2_prefetch_schemes(small=small)
    return format_table(["Scheme", "Speedup"], list(result.items()),
                        "Fig. 2: prefetch schemes (IS, Haswell)")


def _fig4(letter, small, jobs):
    from .bench.experiments import fig4_geomeans, fig4_system
    from .bench.reporting import telemetry_summary
    from .machine import A53, A57, HASWELL, XEON_PHI
    machine = {"a": HASWELL, "b": A57, "c": A53, "d": XEON_PHI}[letter]
    include_icc = letter == "d"
    rows = fig4_system(machine, include_icc=include_icc, small=small,
                       jobs=jobs)
    gm = fig4_geomeans(rows)
    headers = ["Benchmark", "Autogenerated", "Manual"]
    body = [[r.benchmark, r.auto, r.manual] for r in rows]
    tail = ["Geomean", gm["auto"], gm["manual"]]
    if include_icc:
        headers.append("ICC-generated")
        for row, r in zip(body, rows):
            row.append(r.icc)
        tail.append(gm["icc"])
    # With REPRO_SIM_TELEMETRY=1, each auto run carries a snapshot:
    # surface its prefetch-outcome summary alongside the speedups.
    summaries = [telemetry_summary(r.auto_result.telemetry
                                   if r.auto_result else None)
                 for r in rows]
    if any(summaries):
        extra = list(next(s for s in summaries if s))
        headers += [f"{h} (auto)" for h in extra]
        for row, summary in zip(body, summaries):
            row += [summary.get(h, "") for h in extra]
        tail += ["" for _ in extra]
    return format_table(headers, body + [tail],
                        f"Fig. 4({letter}): speedups on {machine.name}")


def _fig5(small, jobs):
    from .bench.experiments import fig5_stride_contribution
    rows = fig5_stride_contribution(small=small, jobs=jobs)
    return format_table(
        ["Benchmark", "Indirect only", "Indirect + stride"],
        [[r["benchmark"], r["indirect_only"], r["indirect_plus_stride"]]
         for r in rows],
        "Fig. 5: stride-prefetch contribution (Haswell)")


def _fig6(small, jobs):
    from .bench.reporting import format_series
    from .bench.experiments import (LOOKAHEAD_SWEEP,
                                    fig6_lookahead_sweep)
    results = fig6_lookahead_sweep(small=small, jobs=jobs)
    out = []
    workloads = sorted({wl for wl, _ in results})
    for wl in workloads:
        series = {machine: data for (w, machine), data in
                  results.items() if w == wl}
        out.append(format_series(
            f"Fig. 6: look-ahead sweep — {wl}", "c",
            LOOKAHEAD_SWEEP, series))
    return "\n".join(out)


def _fig7(small, jobs):
    from .bench.reporting import format_series
    from .bench.experiments import fig7_stagger_depth
    results = fig7_stagger_depth(small=small, jobs=jobs)
    return format_series("Fig. 7: HJ-8 stagger depth", "depth",
                         (1, 2, 3, 4), results)


def _fig8(small, jobs):
    from .bench.experiments import fig8_instruction_overhead
    result = fig8_instruction_overhead(small=small)
    return format_table(
        ["Benchmark", "Extra instructions (%)"], list(result.items()),
        "Fig. 8: dynamic instruction overhead (Haswell)")


def _fig9(small, jobs):
    from .bench.experiments import fig9_bandwidth
    result = fig9_bandwidth(small=small)
    return format_table(
        ["Cores", "Scheme", "Normalised throughput"],
        [[n, label, v] for (n, label), v in result.items()],
        "Fig. 9: multicore bandwidth (IS, Haswell)")


def _fig10(small, jobs):
    from .bench.experiments import fig10_huge_pages
    results = fig10_huge_pages(small=small)
    return format_table(
        ["Benchmark", "Small Pages", "Huge Pages"],
        [[wl, row["Small Pages"], row["Huge Pages"]]
         for wl, row in results.items()],
        "Fig. 10: transparent huge pages (Haswell)")


_FIGURES = {
    "fig2": _fig2,
    "fig4a": lambda s, j: _fig4("a", s, j),
    "fig4b": lambda s, j: _fig4("b", s, j),
    "fig4c": lambda s, j: _fig4("c", s, j),
    "fig4d": lambda s, j: _fig4("d", s, j),
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
}


def _bench_hot_report(figure, args: argparse.Namespace, out) -> int:
    """Run one figure under the trace-JIT + vector tiers and print the
    hottest traces: loop header, iteration count, share of the simulated
    instructions, and how much of each trace ran as vectorized batches,
    plus the tiers' remark stream."""
    from .bench.runner import TELEMETRY, TRACE_REPORT, reset_telemetry
    from .remarks import RemarkEmitter, collecting, render_remarks
    saved = {k: os.environ.get(k)
             for k in ("REPRO_SIM_CACHE", "REPRO_SIM_TRACEJIT",
                       "REPRO_SIM_VECTOR")}
    # Cached runs never execute (no traces) and pooled workers keep
    # their trace rows: force real single-process simulation.
    os.environ["REPRO_SIM_CACHE"] = "0"
    os.environ["REPRO_SIM_TRACEJIT"] = "1"
    os.environ["REPRO_SIM_VECTOR"] = "1"
    reset_telemetry()
    emitter = RemarkEmitter()
    try:
        with collecting(emitter):
            table = figure(args.small, 1)
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    print(table, file=out)
    total = TELEMETRY["simulated_instructions"]
    rows = sorted(TRACE_REPORT, key=lambda r: r["instructions"],
                  reverse=True)
    top = rows[:max(args.hot_top, 0)]
    headers = ["workload", "variant", "machine", "function", "loop",
               "iterations", "instructions", "% sim", "vec iters"]
    body = [[r["workload"], r["variant"], r["machine"], r["function"],
             r["header"], r["iterations"], r["instructions"],
             (f"{100.0 * r['instructions'] / total:.1f}%"
              if total else "-"),
             (f"{r['vector_iterations']} "
              f"({r['vector_batches']} batches)"
              if r.get("vector_batches") else "-")]
            for r in top]
    print(format_table(
        headers, body,
        f"Hottest traces — top {len(top)} of {len(rows)} "
        f"({total} simulated instructions)"), file=out)
    trace_remarks = [r for r in emitter
                     if r.name in ("TraceCompiled", "TraceDeopt",
                                   "VectorBatchCompiled", "VectorDeopt")]
    print(render_remarks(trace_remarks,
                         title="Trace-JIT remarks (repro-remarks-v1):"),
          file=out)
    return 0


def _cmd_bench(args: argparse.Namespace, out) -> int:
    figure = _FIGURES.get(args.figure.lower())
    if figure is None:
        return _unknown_target(
            "bench", args.figure,
            "a figure (" + ", ".join(sorted(_FIGURES)) + ")")
    if args.hot_report:
        return _bench_hot_report(figure, args, out)
    if args.no_cache:
        os.environ["REPRO_SIM_CACHE"] = "0"
    else:
        os.environ.setdefault("REPRO_SIM_CACHE", "1")
    if args.cache_dir:
        os.environ["REPRO_SIM_CACHE_DIR"] = args.cache_dir
    print(figure(args.small, args.jobs), file=out)
    if args.obs_out:
        from .bench.runner import METRICS
        with open(args.obs_out, "w") as handle:
            handle.write(METRICS.render_prometheus())
        print(f"wrote bench metrics exposition to {args.obs_out}",
              file=sys.stderr)
    return 0


#: fig4 letters pin their machine (paper Table 1 names).
_FIG4_MACHINES = {"fig4a": "Haswell", "fig4b": "A57", "fig4c": "A53",
                  "fig4d": "Xeon Phi"}

#: What the workload-target commands accept, for error messages.
_WORKLOAD_EXPECTED = ("a workload name (is, cg, ra, hj2, hj8, "
                      "g500-s16, g500-s21), 'quick', or fig4a-fig4d")


def _unknown_target(command: str, target: str, expected: str) -> int:
    """Print the uniform unknown-target error; returns exit code 2.

    Every subcommand that takes a figure/workload target (``bench``,
    ``stats``, ``explain``, ``timeline``) reports failures through this
    one helper so the message shape — and the exit code — never drift.
    """
    print(f"error: unknown {command} target '{target}'; expected "
          f"{expected}", file=sys.stderr)
    return 2


def _stats_workloads(target: str, small: bool):
    """Workloads selected by a ``stats`` target, or ``None``.

    ``quick`` / a fig4 letter → the whole suite; otherwise one workload
    matched by name (case- and punctuation-insensitive, so ``hj2``
    finds HJ-2).
    """
    from .workloads import canonical_name, paper_benchmarks
    suite = paper_benchmarks(small=small)
    if target in ("quick", "suite", "all") or target in _FIG4_MACHINES:
        return suite
    matches = [w for w in suite
               if canonical_name(w.name) == canonical_name(target)]
    return matches or None


def _resolve_target(command: str, args: argparse.Namespace):
    """Shared workload-target resolution for stats/explain/timeline.

    Returns ``(workloads, machine)``; or ``None`` with the uniform
    error already printed (exit code 2 is the caller's job).
    """
    from .machine.configs import system_by_name
    target = args.target.lower()
    workloads = _stats_workloads(target, args.small)
    if workloads is None:
        _unknown_target(command, args.target, _WORKLOAD_EXPECTED)
        return None
    machine_name = _FIG4_MACHINES.get(target, args.machine or "Haswell")
    try:
        machine = system_by_name(machine_name)
    except KeyError:
        print(f"error: unknown machine '{machine_name}'",
              file=sys.stderr)
        return None
    return workloads, machine


def _cmd_stats(args: argparse.Namespace, out) -> int:
    import json

    from .telemetry.report import (effectiveness_rows, render_effectiveness,
                                   report_dict)
    resolved = _resolve_target("stats", args)
    if resolved is None:
        return 2
    workloads, machine = resolved
    rows = effectiveness_rows(workloads, machines=(machine,),
                              variant=args.variant,
                              lookahead=args.lookahead, jobs=args.jobs)
    if args.json:
        print(json.dumps(report_dict(rows), indent=2), file=out)
    else:
        print(render_effectiveness(
            rows, title=f"Prefetch effectiveness — {args.variant} on "
                        f"{machine.name}"), file=out)
    return 0


def _cmd_explain(args: argparse.Namespace, out) -> int:
    import json

    from .remarks.join import explain_rows, render_explain, report_dict
    resolved = _resolve_target("explain", args)
    if resolved is None:
        return 2
    workloads, machine = resolved
    rows = explain_rows(workloads, machines=(machine,),
                        variant=args.variant,
                        lookahead=args.lookahead, jobs=args.jobs)
    if args.remarks_out:
        streams = {row["workload"]: row["remarks_stream"]
                   for row in rows}
        with open(args.remarks_out, "w") as handle:
            json.dump({"schema": "repro-explain-remarks-v1",
                       "machine": machine.name,
                       "variant": args.variant,
                       "workloads": streams}, handle, indent=2)
            handle.write("\n")
    if args.json:
        print(json.dumps(report_dict(rows), indent=2), file=out)
    else:
        print(render_explain(rows), file=out)
    return 0


def _cmd_timeline(args: argparse.Namespace, out) -> int:
    import json

    from .telemetry.perfetto import build_trace
    from .telemetry.report import (render_timeline, timeline_report_dict,
                                   timeline_rows)
    from .telemetry.spans import SpanRecorder, recording
    resolved = _resolve_target("timeline", args)
    if resolved is None:
        return 2
    workloads, machine = resolved
    if args.window is not None and args.window <= 0:
        print(f"error: --window must be positive (got {args.window})",
              file=sys.stderr)
        return 2
    # Runs are serial and span-traced: the recorder is in-process, so
    # no worker pool (see repro.telemetry.spans).
    recorder = SpanRecorder()
    with recording(recorder):
        rows = timeline_rows(workloads, machine, variant=args.variant,
                             lookahead=args.lookahead,
                             window=args.window)
    if args.perfetto:
        trace = build_trace(rows, recorder,
                            meta={"machine": machine.name,
                                  "variant": args.variant})
        with open(args.perfetto, "w") as handle:
            json.dump(trace, handle, indent=1)
            handle.write("\n")
    if args.json:
        print(json.dumps(timeline_report_dict(rows), indent=2),
              file=out)
    else:
        print(render_timeline(rows), file=out)
    return 0


def _cmd_serve(args: argparse.Namespace, out) -> int:
    import asyncio

    from .serve.server import ServeConfig, serve_forever
    config = ServeConfig(
        host=args.host, port=args.port, workers=args.workers,
        queue_limit=args.queue, timeout_s=args.timeout,
        cache_dir=args.cache_dir, cas_max_bytes=args.max_bytes,
        debug=args.debug, log_format=args.log_format,
        trace_capacity=args.trace_buffer)
    if config.queue_limit < 1 or config.timeout_s <= 0:
        print("error: --queue must be >= 1 and --timeout > 0",
              file=sys.stderr)
        return 2
    try:
        asyncio.run(serve_forever(config))
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    return 0


def _cmd_submit(args: argparse.Namespace, out) -> int:
    import json

    from .serve.client import ServeHTTPError, get_metrics, submit
    if args.metrics:
        try:
            print(json.dumps(get_metrics(args.host, args.port),
                             indent=2), file=out)
        except (OSError, ServeHTTPError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return 0
    include = [part for part in args.include.split(",") if part]
    if args.source:
        try:
            with open(args.source) as handle:
                source = handle.read()
        except OSError as exc:
            print(f"error: cannot read {args.source}: {exc}",
                  file=sys.stderr)
            return 1
        request = {"kind": "compile", "source": source,
                   "prefetch": not args.no_prefetch,
                   "optimize": args.optimize,
                   "lookahead": args.lookahead, "include": include}
    elif args.target:
        request = {"kind": "simulate", "workload": args.target,
                   "small": args.small, "variant": args.variant,
                   "machine": args.machine,
                   "lookahead": args.lookahead, "tier": args.tier,
                   "validate": not args.no_validate,
                   "include": include}
    else:
        print("error: submit needs a workload target or --source",
              file=sys.stderr)
        return 2
    try:
        payload = submit(args.host, args.port, request)
    except ServeHTTPError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: cannot reach {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    print(json.dumps(payload, indent=2), file=out)
    if args.trace_out:
        from .serve.client import get_trace
        request_id = payload.get("request_id")
        if not request_id:
            print("error: answer carries no request_id; cannot fetch "
                  "a trace", file=sys.stderr)
            return 1
        try:
            trace = get_trace(args.host, args.port, request_id)
        except (OSError, ServeHTTPError) as exc:
            print(f"error: cannot fetch trace {request_id}: {exc}",
                  file=sys.stderr)
            return 1
        with open(args.trace_out, "w") as handle:
            json.dump(trace, handle, indent=1)
        print(f"wrote request trace {request_id} to {args.trace_out} "
              f"(load at ui.perfetto.dev)", file=sys.stderr)
    return 0


def _cmd_top(args: argparse.Namespace, out) -> int:
    from .obs.top import run_top
    if args.interval <= 0:
        print("error: --interval must be > 0", file=sys.stderr)
        return 2
    return run_top(args.host, args.port, interval_s=args.interval,
                   once=args.once, out=out)


def _cmd_cache(args: argparse.Namespace, out) -> int:
    from .bench.cache import default_cache_dir
    from .serve.cas import ContentStore
    root = args.cache_dir or default_cache_dir()
    store = ContentStore(root)
    if args.max_bytes < 0:
        print("error: --max-bytes must be >= 0", file=sys.stderr)
        return 2
    report = store.gc(args.max_bytes, dry_run=args.dry_run)
    verb = "would evict" if args.dry_run else "evicted"
    print(f"cache gc {root}: {report['entries']} entries, "
          f"{report['bytes']} bytes; {verb} "
          f"{len(report['removed'])} entries "
          f"({report['removed_bytes']} bytes), keeping "
          f"{report['kept_bytes']} bytes", file=out)
    for key in report["removed"]:
        print(f"  {verb} {key}", file=out)
    return 0


def _cmd_systems(out) -> int:
    from .bench.experiments import table1_rows
    rows = table1_rows()
    headers = list(rows[0])
    print(format_table(headers,
                       [[r[h] for h in headers] for r in rows],
                       "Simulated systems (paper Table 1)"), file=out)
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    if args.command == "compile":
        return _cmd_compile(args, out)
    if args.command == "systems":
        return _cmd_systems(out)
    if args.command == "bench":
        return _cmd_bench(args, out)
    if args.command == "stats":
        return _cmd_stats(args, out)
    if args.command == "explain":
        return _cmd_explain(args, out)
    if args.command == "timeline":
        return _cmd_timeline(args, out)
    if args.command == "serve":
        return _cmd_serve(args, out)
    if args.command == "submit":
        return _cmd_submit(args, out)
    if args.command == "top":
        return _cmd_top(args, out)
    if args.command == "cache":
        return _cmd_cache(args, out)
    return 2  # pragma: no cover - argparse enforces the choices
