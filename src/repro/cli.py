"""Command-line driver: compile C-like source, run passes, inspect IR.

Usage::

    python -m repro compile kernel.c --prefetch --print-ir
    python -m repro compile kernel.c --prefetch -O --emit-ir out.ir
    python -m repro systems

``compile`` parses and lowers a C-like file (see
:mod:`repro.frontend`), optionally runs the automatic indirect-prefetch
pass (printing its report) and the -O cleanup pipeline, and emits the
textual IR.  ``systems`` prints the simulated Table 1 machines.
"""

from __future__ import annotations

import argparse
import os
import sys

from .bench.reporting import format_table
from .frontend import compile_source
from .ir import print_module, verify_module
from .passes import (CommonSubexpressionEliminationPass,
                     DeadCodeEliminationPass, IndirectPrefetchPass,
                     LoopInvariantCodeMotionPass, PassManager,
                     PrefetchOptions, SimplifyCFGPass)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Software prefetching for indirect memory accesses "
                    "(CGO 2017) — compiler driver")
    sub = parser.add_subparsers(dest="command", required=True)

    compile_cmd = sub.add_parser(
        "compile", help="compile a C-like source file to IR")
    compile_cmd.add_argument("source", help="input source file")
    compile_cmd.add_argument(
        "--prefetch", action="store_true",
        help="run the automatic indirect-prefetch pass")
    compile_cmd.add_argument(
        "--lookahead", type=int, default=64, metavar="C",
        help="look-ahead constant c of eq. (1) (default 64)")
    compile_cmd.add_argument(
        "--no-stride", action="store_true",
        help="omit the staggered stride prefetch (Fig. 5's "
             "indirect-only mode)")
    compile_cmd.add_argument(
        "--hoist", action="store_true",
        help="enable prefetch loop hoisting (§4.6)")
    compile_cmd.add_argument(
        "-O", "--optimize", action="store_true",
        help="run the cleanup pipeline (simplifycfg, licm, cse, dce)")
    compile_cmd.add_argument(
        "--print-ir", action="store_true",
        help="print the final IR to stdout")
    compile_cmd.add_argument(
        "--emit-ir", metavar="FILE", help="write the final IR to FILE")

    sub.add_parser("systems", help="print the simulated machines")

    bench_cmd = sub.add_parser(
        "bench", help="run one figure's experiment and print its table")
    bench_cmd.add_argument(
        "figure", choices=sorted(_FIGURES),
        help="which figure to reproduce")
    bench_cmd.add_argument(
        "--small", action="store_true",
        help="scaled-down workloads (quick smoke sizes)")
    bench_cmd.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for independent runs "
             "(default: REPRO_SIM_JOBS or the available CPUs)")
    bench_cmd.add_argument(
        "--no-cache", action="store_true",
        help="disable the run-result disk cache")
    bench_cmd.add_argument(
        "--cache-dir", metavar="DIR",
        help="cache root (default: REPRO_SIM_CACHE_DIR or .sim-cache)")
    return parser


def _cmd_compile(args: argparse.Namespace, out) -> int:
    try:
        with open(args.source) as handle:
            source = handle.read()
    except OSError as exc:
        print(f"error: cannot read {args.source}: {exc}",
              file=sys.stderr)
        return 1
    try:
        module = compile_source(source, name=args.source)
    except Exception as exc:  # lexer/parser/lowering errors
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.prefetch:
        options = PrefetchOptions(
            lookahead=args.lookahead,
            emit_stride_prefetch=not args.no_stride,
            enable_hoisting=args.hoist)
        report = IndirectPrefetchPass(options).run(module)
        print(report.summary(), file=out)

    if args.optimize:
        pipeline = PassManager()
        pipeline.add(SimplifyCFGPass())
        pipeline.add(LoopInvariantCodeMotionPass())
        pipeline.add(CommonSubexpressionEliminationPass())
        pipeline.add(DeadCodeEliminationPass())
        pipeline.run(module)

    verify_module(module)
    text = print_module(module)
    if args.emit_ir:
        with open(args.emit_ir, "w") as handle:
            handle.write(text)
    if args.print_ir or not args.emit_ir:
        print(text, file=out)
    return 0


def _fig2(small, jobs):
    from .bench.experiments import fig2_prefetch_schemes
    result = fig2_prefetch_schemes(small=small)
    return format_table(["Scheme", "Speedup"], list(result.items()),
                        "Fig. 2: prefetch schemes (IS, Haswell)")


def _fig4(letter, small, jobs):
    from .bench.experiments import fig4_geomeans, fig4_system
    from .machine import A53, A57, HASWELL, XEON_PHI
    machine = {"a": HASWELL, "b": A57, "c": A53, "d": XEON_PHI}[letter]
    include_icc = letter == "d"
    rows = fig4_system(machine, include_icc=include_icc, small=small,
                       jobs=jobs)
    gm = fig4_geomeans(rows)
    headers = ["Benchmark", "Autogenerated", "Manual"]
    body = [[r.benchmark, r.auto, r.manual] for r in rows]
    tail = ["Geomean", gm["auto"], gm["manual"]]
    if include_icc:
        headers.append("ICC-generated")
        for row, r in zip(body, rows):
            row.append(r.icc)
        tail.append(gm["icc"])
    return format_table(headers, body + [tail],
                        f"Fig. 4({letter}): speedups on {machine.name}")


def _fig5(small, jobs):
    from .bench.experiments import fig5_stride_contribution
    rows = fig5_stride_contribution(small=small, jobs=jobs)
    return format_table(
        ["Benchmark", "Indirect only", "Indirect + stride"],
        [[r["benchmark"], r["indirect_only"], r["indirect_plus_stride"]]
         for r in rows],
        "Fig. 5: stride-prefetch contribution (Haswell)")


def _fig6(small, jobs):
    from .bench.reporting import format_series
    from .bench.experiments import (LOOKAHEAD_SWEEP,
                                    fig6_lookahead_sweep)
    results = fig6_lookahead_sweep(small=small, jobs=jobs)
    out = []
    workloads = sorted({wl for wl, _ in results})
    for wl in workloads:
        series = {machine: data for (w, machine), data in
                  results.items() if w == wl}
        out.append(format_series(
            f"Fig. 6: look-ahead sweep — {wl}", "c",
            LOOKAHEAD_SWEEP, series))
    return "\n".join(out)


def _fig7(small, jobs):
    from .bench.reporting import format_series
    from .bench.experiments import fig7_stagger_depth
    results = fig7_stagger_depth(small=small, jobs=jobs)
    return format_series("Fig. 7: HJ-8 stagger depth", "depth",
                         (1, 2, 3, 4), results)


def _fig8(small, jobs):
    from .bench.experiments import fig8_instruction_overhead
    result = fig8_instruction_overhead(small=small)
    return format_table(
        ["Benchmark", "Extra instructions (%)"], list(result.items()),
        "Fig. 8: dynamic instruction overhead (Haswell)")


def _fig9(small, jobs):
    from .bench.experiments import fig9_bandwidth
    result = fig9_bandwidth(small=small)
    return format_table(
        ["Cores", "Scheme", "Normalised throughput"],
        [[n, label, v] for (n, label), v in result.items()],
        "Fig. 9: multicore bandwidth (IS, Haswell)")


def _fig10(small, jobs):
    from .bench.experiments import fig10_huge_pages
    results = fig10_huge_pages(small=small)
    return format_table(
        ["Benchmark", "Small Pages", "Huge Pages"],
        [[wl, row["Small Pages"], row["Huge Pages"]]
         for wl, row in results.items()],
        "Fig. 10: transparent huge pages (Haswell)")


_FIGURES = {
    "fig2": _fig2,
    "fig4a": lambda s, j: _fig4("a", s, j),
    "fig4b": lambda s, j: _fig4("b", s, j),
    "fig4c": lambda s, j: _fig4("c", s, j),
    "fig4d": lambda s, j: _fig4("d", s, j),
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
}


def _cmd_bench(args: argparse.Namespace, out) -> int:
    if args.no_cache:
        os.environ["REPRO_SIM_CACHE"] = "0"
    else:
        os.environ.setdefault("REPRO_SIM_CACHE", "1")
    if args.cache_dir:
        os.environ["REPRO_SIM_CACHE_DIR"] = args.cache_dir
    print(_FIGURES[args.figure](args.small, args.jobs), file=out)
    return 0


def _cmd_systems(out) -> int:
    from .bench.experiments import table1_rows
    rows = table1_rows()
    headers = list(rows[0])
    print(format_table(headers,
                       [[r[h] for h in headers] for r in rows],
                       "Simulated systems (paper Table 1)"), file=out)
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    if args.command == "compile":
        return _cmd_compile(args, out)
    if args.command == "systems":
        return _cmd_systems(out)
    if args.command == "bench":
        return _cmd_bench(args, out)
    return 2  # pragma: no cover - argparse enforces the choices
