"""Dead code elimination.

Removes instructions whose results are unused and which have no side
effects.  Used as a cleanup after other transformations and by tests to
check that prefetch code is not trivially dead.
"""

from __future__ import annotations

from ..ir.function import Function
from ..ir.instructions import Instruction
from ..ir.module import Module
from ..ir.printer import Namer
from ..ir.types import VoidType
from ..remarks import active_emitter, emit


class DeadCodeEliminationPass:
    """Iteratively deletes trivially dead instructions."""

    name = "dce"

    def run(self, module: Module) -> int:
        """Run on every function; returns the number of deletions."""
        return sum(self.run_on_function(f) for f in module.functions)

    def run_on_function(self, func: Function) -> int:
        """Run on one function; returns the number of deletions."""
        namer = Namer(func) if active_emitter() is not None else None
        removed = 0
        changed = True
        while changed:
            changed = False
            for block in func.blocks:
                for inst in reversed(block.instructions):
                    if self._is_dead(inst):
                        if namer is not None:
                            emit("passed", self.name,
                                 "DeadInstructionRemoved",
                                 function=func.name,
                                 instruction=namer.ref(inst),
                                 opcode=inst.opcode)
                        inst.erase()
                        removed += 1
                        changed = True
        return removed

    @staticmethod
    def _is_dead(inst: Instruction) -> bool:
        if inst.HAS_SIDE_EFFECTS or inst.IS_TERMINATOR:
            return False
        if isinstance(inst.type, VoidType):
            return False
        # Allocations are conservatively kept: their addresses may have
        # escaped into memory via stores that alias analysis missed.
        if inst.opcode == "alloc":
            return False
        return not inst.uses
