"""An ICC-like stride-indirect prefetching baseline (§2, §6.1, Fig. 4d).

The Intel compiler for the Xeon Phi can generate software prefetches for
the very simplest indirect patterns.  The paper characterises it as:

* matching only direct ``B[A[i]]`` accesses — a load of ``A[i]`` with the
  canonical induction variable as the index, optionally widened, used
  immediately as the index into ``B`` (no hashing, no other arithmetic);
* requiring statically known array sizes to guarantee safety (it "misses
  out on any performance improvement for G500 ... likely because it is
  unable to determine the size of arrays");
* therefore missing RA, HJ-2, HJ-8 (hash computations) and G500 (dynamic
  sizes / control flow).

This pass reproduces exactly those limits so Fig. 4d's "ICC-generated"
series has a faithful comparator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.allocsize import known_array_bound
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.instructions import Cast, GEP, Instruction, Load, Prefetch
from ..ir.module import Module
from ..ir.printer import Namer
from ..ir.types import IntType
from ..ir.values import Constant
from ..ir.verifier import verify_function
from ..remarks import active_emitter, emit
from .analysis_bundle import FunctionAnalyses
from .prefetch.scheduling import DEFAULT_LOOKAHEAD, offset_for


@dataclass
class BaselineReport:
    """What the baseline pass found and emitted."""

    prefetched: list[Load] = field(default_factory=list)
    skipped: list[tuple[Load, str]] = field(default_factory=list)

    @property
    def num_prefetches(self) -> int:
        """Number of target loads prefetched (two prefetches each)."""
        return len(self.prefetched)


class StrideIndirectBaselinePass:
    """The deliberately limited ICC-style stride-indirect pass."""

    name = "stride-indirect-baseline"

    def __init__(self, lookahead: int = DEFAULT_LOOKAHEAD):
        self.lookahead = lookahead

    def run(self, module: Module) -> BaselineReport:
        """Run on every function of ``module``."""
        report = BaselineReport()
        for func in module.functions:
            self.run_on_function(func, report)
        return report

    def run_on_function(self, func: Function,
                        report: BaselineReport | None = None
                        ) -> BaselineReport:
        """Run on one function."""
        report = report if report is not None else BaselineReport()
        analyses = FunctionAnalyses(func)
        loads = [i for i in func.instructions() if isinstance(i, Load)
                 and analyses.loop_info.loop_of(i) is not None]
        skipped: list[tuple[Load, str]] = []
        inserted: list[tuple[Load, list[Prefetch]]] = []
        sequence = 0
        for load in loads:
            match = self._match(load, analyses)
            if isinstance(match, str):
                report.skipped.append((load, match))
                skipped.append((load, match))
                continue
            base_load, iv = match
            prefetches = self._emit(load, base_load, iv)
            for prefetch in prefetches:
                prefetch.remark_id = f"pf:{func.name}:{sequence}"
                sequence += 1
            report.prefetched.append(load)
            inserted.append((load, prefetches))
        if active_emitter() is not None:
            namer = Namer(func)
            for load, reason in skipped:
                emit("missed", self.name, "BaselineSkipped",
                     function=func.name, load=namer.ref(load),
                     reason=reason)
            for load, prefetches in inserted:
                for prefetch in prefetches:
                    emit("passed", self.name, "BaselinePrefetchInserted",
                         function=func.name,
                         prefetch_id=prefetch.remark_id,
                         load=namer.ref(load), c=self.lookahead)
        verify_function(func)
        return report

    def _match(self, load: Load, analyses: FunctionAnalyses):
        """Match ``B[A[i]]``; returns (inner load, IV) or a skip reason."""
        gep = load.ptr
        if not isinstance(gep, GEP):
            return "address is not a gep"
        index = gep.index
        if isinstance(index, Cast) and index.opcode in ("sext", "zext"):
            index = index.value
        if not isinstance(index, Load):
            return "index is not a direct load (pattern too complex)"
        inner = index
        inner_gep = inner.ptr
        if not isinstance(inner_gep, GEP):
            return "inner address is not a gep"
        iv = analyses.induction.iv_for(inner_gep.index)
        if iv is None or not iv.loop.contains(load):
            return "inner index is not a loop induction variable"
        if iv.step != 1:
            return "induction variable is not unit-stride"
        # Static size of the look-ahead array is mandatory for safety.
        bound = known_array_bound(inner_gep.base)
        if bound is None or not isinstance(bound.count, Constant):
            return "look-ahead array size not statically known"
        if known_array_bound(gep.base) is None:
            return "target array size unknown"
        return inner, iv

    def _emit(self, load: Load, base_load: Load, iv) -> list[Prefetch]:
        """Emit the two staggered prefetches for a matched pattern."""
        builder = IRBuilder()
        builder.set_insert_point(load.parent, before=load)
        iv_type = iv.phi.type
        assert isinstance(iv_type, IntType)
        base_gep = base_load.ptr
        assert isinstance(base_gep, GEP)
        target_gep = load.ptr
        assert isinstance(target_gep, GEP)
        bound = known_array_bound(base_gep.base)
        limit = builder.const(bound.count.value - 1, iv_type)

        # Indirect prefetch at c/2 with a clamped intermediate load.
        off1 = offset_for(1, 2, self.lookahead)
        iv_off = builder.add(iv.phi, builder.const(off1, iv_type), "icc.iv")
        lt = builder.cmp("slt", iv_off, limit, "icc.cl")
        clamped = builder.select(lt, iv_off, limit, "icc.iv.c")
        a_ptr = builder.gep(base_gep.base, clamped, "icc.ap")
        a_val = builder.load(a_ptr, "icc.av")
        index_value = a_val
        outer_index = target_gep.index
        if isinstance(outer_index, Cast):
            index_value = builder.cast(outer_index.opcode, a_val,
                                       outer_index.type, "icc.ix")
        b_ptr = builder.gep(target_gep.base, index_value, "icc.bp")
        indirect = builder.prefetch(b_ptr)

        # Stride prefetch of the look-ahead array at c.
        off0 = offset_for(0, 2, self.lookahead)
        iv_off0 = builder.add(iv.phi, builder.const(off0, iv_type),
                              "icc.iv0")
        a_ptr0 = builder.gep(base_gep.base, iv_off0, "icc.ap0")
        stride = builder.prefetch(a_ptr0)
        return [indirect, stride]
