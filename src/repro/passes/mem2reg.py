"""mem2reg: promote scalar stack slots to SSA registers.

The C-like frontend lowers every local variable to a one-element ``alloc``
plus loads and stores.  This pass rewrites those slots into SSA form with
pruned phi placement (iterated dominance frontiers + dominator-tree
renaming), after which the induction-variable analysis — and hence the
prefetch pass — can see loop counters.
"""

from __future__ import annotations

from ..analysis.cfg import dominance_frontiers, dominators
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Alloc, Instruction, Load, Phi, Store
from ..ir.module import Module
from ..ir.printer import Namer
from ..ir.values import Constant, UndefValue, Value
from ..remarks import active_emitter, emit


class Mem2RegPass:
    """Promotes non-escaping single-element allocations to SSA values."""

    name = "mem2reg"

    def run(self, module: Module) -> int:
        """Run on every function; returns slots promoted."""
        return sum(self.run_on_function(f) for f in module.functions)

    def run_on_function(self, func: Function) -> int:
        """Run on one function; returns slots promoted."""
        slots = [inst for inst in func.instructions()
                 if isinstance(inst, Alloc) and self._promotable(inst)]
        if not slots:
            return 0
        idom = dominators(func)
        frontiers = dominance_frontiers(func, idom)
        children: dict[BasicBlock, list[BasicBlock]] = {
            b: [] for b in idom}
        for block, parent in idom.items():
            if parent is not None:
                children[parent].append(block)

        namer = Namer(func) if active_emitter() is not None else None
        for slot in slots:
            if namer is not None:
                emit("passed", self.name, "SlotPromoted",
                     function=func.name, slot=namer.ref(slot),
                     loads=sum(1 for u, _ in slot.uses
                               if isinstance(u, Load)),
                     stores=sum(1 for u, _ in slot.uses
                                if isinstance(u, Store)))
            self._promote(func, slot, idom, frontiers, children)
        return len(slots)

    @staticmethod
    def _promotable(alloc: Alloc) -> bool:
        count = alloc.static_count
        if count != 1:
            return False
        for user, index in alloc.uses:
            if isinstance(user, Load):
                continue
            if isinstance(user, Store) and user.ptr is alloc and \
                    user.value is not alloc:
                continue
            return False  # address escapes (gep, call, stored value, ...)
        return True

    def _promote(self, func: Function, slot: Alloc, idom, frontiers,
                 children) -> None:
        loads = [u for u, _ in slot.uses if isinstance(u, Load)]
        stores = [u for u, _ in slot.uses if isinstance(u, Store)]
        value_type = slot.element_type

        # Phi placement on the iterated dominance frontier of def blocks.
        def_blocks = {s.parent for s in stores if s.parent is not None}
        phi_blocks: set[BasicBlock] = set()
        worklist = list(def_blocks)
        while worklist:
            block = worklist.pop()
            for frontier_block in frontiers.get(block, ()):
                if frontier_block not in phi_blocks:
                    phi_blocks.add(frontier_block)
                    worklist.append(frontier_block)

        phis: dict[BasicBlock, Phi] = {}
        for block in phi_blocks:
            phi = Phi(value_type, slot.name or "m2r")
            if block.instructions:
                block.insert_before(block.instructions[0], phi)
            else:
                block.append(phi)
            phis[block] = phi

        # Rename along the dominator tree.
        undef = UndefValue(value_type, (slot.name or "slot") + ".undef")
        replacements: dict[int, Value] = {}

        def rename(block: BasicBlock, incoming: Value) -> None:
            current = incoming
            if block in phis:
                current = phis[block]
            for inst in block.instructions:
                if isinstance(inst, Load) and inst.ptr is slot:
                    replacements[id(inst)] = current
                elif isinstance(inst, Store) and inst.ptr is slot:
                    current = inst.value
            for succ in block.successors:
                phi = phis.get(succ)
                if phi is not None and not any(
                        b is block for b in phi.incoming_blocks):
                    phi.add_incoming(
                        replacements.get(id(current), current), block)
            for child in sorted(children.get(block, ()),
                                key=lambda b: func.blocks.index(b)):
                rename(child, current)

        rename(func.entry, undef)

        # Apply replacements (resolving chains through replaced loads).
        def resolve(value: Value) -> Value:
            seen = set()
            while id(value) in replacements and id(value) not in seen:
                seen.add(id(value))
                value = replacements[id(value)]
            return value

        for load in loads:
            load.replace_all_uses_with(resolve(load))
        for block in func.blocks:
            for phi in block.phis:
                for index, operand in enumerate(phi.operands):
                    resolved = resolve(operand)
                    if resolved is not operand:
                        phi.set_operand(index, resolved)

        for store in stores:
            store.erase()
        for load in loads:
            load.erase()
        slot.erase()
