"""Control-flow graph simplification.

Two conservative clean-ups applied to a fixed point:

* **block merging** — a block ending in an unconditional jump to a block
  with a single predecessor absorbs that block (its phis, having a
  single incoming value, are replaced by it);
* **forwarding-block removal** — an empty block containing only
  ``jmp T`` is bypassed, provided the retargeting keeps T's phis
  well-formed (no predecessor duplication).

The C-like frontend emits chains of such blocks (``entry -> body ->
for.cond``); this pass restores the compact loop shapes the analyses and
the interpreter prefer.  Unreachable blocks are deleted as a by-product.
"""

from __future__ import annotations

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Branch, Jump, Phi
from ..ir.module import Module
from ..remarks import emit


class SimplifyCFGPass:
    """Merges trivial blocks and removes forwarding blocks."""

    name = "simplifycfg"

    def run(self, module: Module) -> int:
        """Run on every function; returns blocks removed."""
        return sum(self.run_on_function(f) for f in module.functions)

    def run_on_function(self, func: Function) -> int:
        """Run on one function; returns blocks removed."""
        removed = 0
        changed = True
        while changed:
            changed = False
            removed += self._drop_unreachable(func)
            for block in list(func.blocks):
                if self._merge_into_predecessor(func, block):
                    removed += 1
                    changed = True
                    break
                if self._bypass_forwarding_block(func, block):
                    removed += 1
                    changed = True
                    break
        return removed

    # -- unreachable blocks ----------------------------------------------

    def _drop_unreachable(self, func: Function) -> int:
        reachable: set[int] = set()
        stack = [func.entry]
        while stack:
            block = stack.pop()
            if id(block) in reachable:
                continue
            reachable.add(id(block))
            stack.extend(block.successors)
        dead = [b for b in func.blocks if id(b) not in reachable]
        for block in dead:
            emit("passed", self.name, "UnreachableBlockRemoved",
                 function=func.name, block=block.name)
            # Detach phi edges in still-reachable successors first.
            for succ in block.successors:
                if id(succ) in reachable:
                    for phi in succ.phis:
                        for index in range(len(phi.incoming_blocks) - 1,
                                           -1, -1):
                            if phi.incoming_blocks[index] is block:
                                phi.incoming_blocks.pop(index)
                                victim = phi.operand(index)
                                phi._operands.pop(index)
                                victim._remove_use(phi, index)
                                # Re-index remaining uses.
                                for later in range(
                                        index, len(phi._operands)):
                                    op = phi._operands[later]
                                    op._remove_use(phi, later + 1)
                                    op._add_use(phi, later)
            for inst in reversed(block.instructions):
                inst.remove_from_parent()
                inst.drop_all_references()
            func.remove_block(block)
        return len(dead)

    # -- merging -------------------------------------------------------------

    def _merge_into_predecessor(self, func: Function,
                                block: BasicBlock) -> bool:
        term = block.terminator
        if not isinstance(term, Jump):
            return False
        succ = term.target
        if succ is block or succ is func.entry:
            return False
        if len(succ.predecessors) != 1:
            return False
        emit("passed", self.name, "BlockMerged",
             function=func.name, block=succ.name, into=block.name)
        # Fold single-incoming phis, then splice.
        for phi in list(succ.phis):
            phi.replace_all_uses_with(phi.incoming_for_block(block))
            phi.remove_from_parent()
            phi.drop_all_references()
        term.remove_from_parent()
        term.drop_all_references()
        for inst in succ.instructions:
            inst.remove_from_parent()
            block.append(inst)
        # Phis in the successors' successors name the old block.
        new_term = block.terminator
        if new_term is not None:
            for far in new_term.successors:  # type: ignore[attr-defined]
                for phi in far.phis:
                    for index, pred in enumerate(phi.incoming_blocks):
                        if pred is succ:
                            phi.set_incoming_block(index, block)
        func.remove_block(succ)
        return True

    # -- forwarding blocks ------------------------------------------------------

    def _bypass_forwarding_block(self, func: Function,
                                 block: BasicBlock) -> bool:
        if block is func.entry or len(block) != 1:
            return False
        term = block.terminator
        if not isinstance(term, Jump):
            return False
        target = term.target
        if target is block:
            return False
        preds = block.predecessors
        if not preds:
            return False
        target_preds = set(map(id, target.predecessors))
        # Retargeting must not create duplicate edges into a phi.
        if target.phis and any(id(p) in target_preds for p in preds):
            return False
        # A conditional branch with both edges through here would
        # become a duplicate edge too.
        for pred in preds:
            pterm = pred.terminator
            if isinstance(pterm, Branch) and \
                    pterm.then_block is block and \
                    pterm.else_block is block and target.phis:
                return False
        emit("passed", self.name, "ForwardingBlockRemoved",
             function=func.name, block=block.name, target=target.name)
        for phi in target.phis:
            incoming = phi.incoming_for_block(block)
            index = phi.incoming_blocks.index(block)
            if len(preds) == 1:
                phi.set_incoming_block(index, preds[0])
            else:
                # Duplicate the edge value for each new predecessor.
                phi.incoming_blocks.pop(index)
                victim = phi._operands.pop(index)
                victim._remove_use(phi, index)
                for later in range(index, len(phi._operands)):
                    op = phi._operands[later]
                    op._remove_use(phi, later + 1)
                    op._add_use(phi, later)
                for pred in preds:
                    phi.add_incoming(incoming, pred)
        for pred in preds:
            pred.terminator.replace_successor(block, target)  # type: ignore
        term.remove_from_parent()
        term.drop_all_references()
        func.remove_block(block)
        return True
