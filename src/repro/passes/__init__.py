"""Transformation passes over the repro IR.

The star of the package is :class:`repro.passes.prefetch.IndirectPrefetchPass`
— the paper's automatic software-prefetch generation pass.  Alongside it:

* :class:`StrideIndirectBaselinePass` — the ICC-like comparator;
* :class:`DeadCodeEliminationPass`, :class:`ConstantFoldingPass`,
  :class:`CommonSubexpressionEliminationPass`,
  :class:`LoopInvariantCodeMotionPass`, :class:`SimplifyCFGPass` — generic
  cleanups;
* :class:`Mem2RegPass` — promotes frontend scalar slots to SSA registers;
* :class:`PassManager` — sequential pass driver.
"""

from .analysis_bundle import FunctionAnalyses
from .constfold import ConstantFoldingPass
from .cse import CommonSubexpressionEliminationPass
from .dce import DeadCodeEliminationPass
from .licm import LoopInvariantCodeMotionPass
from .mem2reg import Mem2RegPass
from .pass_manager import PassManager
from .simplifycfg import SimplifyCFGPass
from .prefetch import (IndirectPrefetchPass, PrefetchOptions, PrefetchReport,
                       RejectReason)
from .stride_indirect_baseline import (BaselineReport,
                                       StrideIndirectBaselinePass)

__all__ = [
    "FunctionAnalyses",
    "ConstantFoldingPass",
    "CommonSubexpressionEliminationPass",
    "DeadCodeEliminationPass",
    "LoopInvariantCodeMotionPass",
    "Mem2RegPass",
    "PassManager",
    "SimplifyCFGPass",
    "IndirectPrefetchPass", "PrefetchOptions", "PrefetchReport",
    "RejectReason",
    "BaselineReport", "StrideIndirectBaselinePass",
]
