"""An instrumented sequential pass manager.

Runs a list of passes over a module, optionally verifying the IR between
passes, and collects each pass's report keyed by pass name.  When a
remark emitter is installed — either passed to the constructor or
already active via :func:`repro.remarks.collecting` — the manager also
records per-pass instrumentation: wall time and IR-size deltas
(instructions and blocks before → after), emitted as ``PassExecuted``
analysis remarks.  An active span recorder
(:func:`repro.telemetry.spans.recording`) likewise turns the
instrumentation on and receives one ``pass`` span per pass, reusing the
same wall-time measurement.  With no emitter or recorder anywhere, the
run loop is exactly the uninstrumented original: no timing calls, no
IR walks.
"""

from __future__ import annotations

import time

from ..ir.module import Module
from ..ir.verifier import verify_module
from ..remarks import (RemarkEmitter, active_emitter, collecting, emit)
from ..telemetry.spans import active_recorder


def _ir_size(module: Module) -> tuple[int, int]:
    """(instruction count, block count) of a module."""
    instructions = 0
    blocks = 0
    for func in module.functions:
        blocks += len(func.blocks)
        for block in func.blocks:
            instructions += len(block)
    return instructions, blocks


class PassManager:
    """Runs passes in order over a module.

    :param verify_between: run the IR verifier after each pass (cheap for
        the module sizes in this project, and catches pass bugs early).
    :param emitter: a :class:`~repro.remarks.RemarkEmitter` to collect
        optimization remarks and per-pass instrumentation.  ``None``
        (the default) uses whatever emitter is already active, if any.
    """

    def __init__(self, verify_between: bool = True,
                 emitter: RemarkEmitter | None = None):
        self._passes: list = []
        self.verify_between = verify_between
        self.emitter = emitter

    def add(self, pass_) -> "PassManager":
        """Append a pass; returns self for chaining."""
        if not hasattr(pass_, "run") or not hasattr(pass_, "name"):
            raise TypeError(
                f"{pass_!r} does not look like a pass (needs .run/.name)")
        self._passes.append(pass_)
        return self

    @property
    def passes(self) -> list:
        """The registered passes in run order."""
        return list(self._passes)

    def run(self, module: Module) -> dict[str, object]:
        """Run all passes; returns {pass name: report} in run order."""
        if self.emitter is not None:
            with collecting(self.emitter):
                return self._run(module, instrumented=True)
        instrumented = (active_emitter() is not None
                        or active_recorder() is not None)
        return self._run(module, instrumented=instrumented)

    def _run(self, module: Module, instrumented: bool) -> dict[str, object]:
        reports: dict[str, object] = {}
        recorder = active_recorder() if instrumented else None
        for pass_ in self._passes:
            if instrumented:
                insts_before, blocks_before = _ir_size(module)
                if recorder is not None:
                    span_start = recorder.now_us()
                start = time.perf_counter()
            reports[pass_.name] = pass_.run(module)
            if instrumented:
                wall_us = int((time.perf_counter() - start) * 1e6)
                insts_after, blocks_after = _ir_size(module)
                emit("analysis", pass_.name, "PassExecuted",
                     wall_us=wall_us,
                     insts_before=insts_before, insts_after=insts_after,
                     blocks_before=blocks_before,
                     blocks_after=blocks_after)
                if recorder is not None:
                    # One pipeline span per pass, sharing the remark's
                    # wall-time measurement.
                    recorder.add_span(
                        "pass", pass_.name, span_start, wall_us,
                        {"insts_before": insts_before,
                         "insts_after": insts_after,
                         "blocks_before": blocks_before,
                         "blocks_after": blocks_after})
            if self.verify_between:
                verify_module(module)
        return reports
