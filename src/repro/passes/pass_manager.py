"""A minimal sequential pass manager.

Runs a list of passes over a module, optionally verifying the IR between
passes, and collects each pass's report keyed by pass name.
"""

from __future__ import annotations

from ..ir.module import Module
from ..ir.verifier import verify_module


class PassManager:
    """Runs passes in order over a module.

    :param verify_between: run the IR verifier after each pass (cheap for
        the module sizes in this project, and catches pass bugs early).
    """

    def __init__(self, verify_between: bool = True):
        self._passes: list = []
        self.verify_between = verify_between

    def add(self, pass_) -> "PassManager":
        """Append a pass; returns self for chaining."""
        if not hasattr(pass_, "run") or not hasattr(pass_, "name"):
            raise TypeError(
                f"{pass_!r} does not look like a pass (needs .run/.name)")
        self._passes.append(pass_)
        return self

    @property
    def passes(self) -> list:
        """The registered passes in run order."""
        return list(self._passes)

    def run(self, module: Module) -> dict[str, object]:
        """Run all passes; returns {pass name: report} in run order."""
        reports: dict[str, object] = {}
        for pass_ in self._passes:
            reports[pass_.name] = pass_.run(module)
            if self.verify_between:
                verify_module(module)
        return reports
