"""Constant folding and algebraic simplification.

Folds binary operations, comparisons, selects, and casts whose operands
are compile-time constants, plus a few identities (``x + 0``, ``x * 1``,
``x * 0``).  Keeps the prefetch pass's emitted clamp code tidy when bounds
are constants.
"""

from __future__ import annotations

from ..ir.function import Function
from ..ir.instructions import BinOp, Cast, Cmp, Instruction, Select
from ..ir.module import Module
from ..ir.printer import Namer
from ..ir.types import FloatType, IntType
from ..ir.values import Constant, Value
from ..remarks import active_emitter, emit

_INT_FOLDS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << (b & 63),
    "sdiv": lambda a, b: _sdiv(a, b),
    "srem": lambda a, b: _srem(a, b),
    "udiv": lambda a, b: (a & _M64) // (b & _M64) if b else 0,
    "urem": lambda a, b: (a & _M64) % (b & _M64) if b else 0,
    "lshr": lambda a, b: (a & _M64) >> (b & 63),
    "ashr": lambda a, b: a >> (b & 63),
}
_FLOAT_FOLDS = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": lambda a, b: a / b if b else float("inf"),
}
_CMP_FOLDS = {
    "eq": lambda a, b: a == b, "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b, "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b, "sge": lambda a, b: a >= b,
    "ult": lambda a, b: (a & _M64) < (b & _M64),
    "ule": lambda a, b: (a & _M64) <= (b & _M64),
    "ugt": lambda a, b: (a & _M64) > (b & _M64),
    "uge": lambda a, b: (a & _M64) >= (b & _M64),
    "oeq": lambda a, b: a == b, "one": lambda a, b: a != b,
    "olt": lambda a, b: a < b, "ole": lambda a, b: a <= b,
    "ogt": lambda a, b: a > b, "oge": lambda a, b: a >= b,
}
_M64 = (1 << 64) - 1


def _sdiv(a: int, b: int) -> int:
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _srem(a: int, b: int) -> int:
    if b == 0:
        return 0
    return a - _sdiv(a, b) * b


class ConstantFoldingPass:
    """Folds constant expressions until a fixed point."""

    name = "constfold"

    def run(self, module: Module) -> int:
        """Run on every function; returns the number of folds."""
        return sum(self.run_on_function(f) for f in module.functions)

    def run_on_function(self, func: Function) -> int:
        """Run on one function; returns the number of folds."""
        namer = Namer(func) if active_emitter() is not None else None
        folded = 0
        changed = True
        while changed:
            changed = False
            for block in func.blocks:
                for inst in block.instructions:
                    replacement = self._fold(inst)
                    if replacement is not None:
                        if namer is not None:
                            emit("passed", self.name, "ConstantFolded",
                                 function=func.name,
                                 instruction=namer.ref(inst),
                                 opcode=inst.opcode,
                                 replaced_by=namer.ref(replacement))
                        inst.replace_all_uses_with(replacement)
                        inst.erase()
                        folded += 1
                        changed = True
        return folded

    def _fold(self, inst: Instruction) -> Value | None:
        if isinstance(inst, BinOp):
            return self._fold_binop(inst)
        if isinstance(inst, Cmp):
            return self._fold_cmp(inst)
        if isinstance(inst, Select):
            if isinstance(inst.condition, Constant):
                return (inst.true_value if inst.condition.value
                        else inst.false_value)
            return None
        if isinstance(inst, Cast):
            return self._fold_cast(inst)
        return None

    @staticmethod
    def _fold_binop(inst: BinOp) -> Value | None:
        lhs, rhs = inst.lhs, inst.rhs
        lc = isinstance(lhs, Constant)
        rc = isinstance(rhs, Constant)
        if lc and rc:
            table = _FLOAT_FOLDS if inst.opcode in _FLOAT_FOLDS else _INT_FOLDS
            fn = table.get(inst.opcode)
            if fn is None:
                return None
            return Constant(inst.type, fn(lhs.value, rhs.value))
        # Identities.
        if inst.opcode in ("add", "or", "xor"):
            if rc and rhs.value == 0:
                return lhs
            if lc and lhs.value == 0:
                return rhs
        if inst.opcode == "sub" and rc and rhs.value == 0:
            return lhs
        if inst.opcode == "mul":
            if rc and rhs.value == 1:
                return lhs
            if lc and lhs.value == 1:
                return rhs
            if (rc and rhs.value == 0) or (lc and lhs.value == 0):
                return Constant(inst.type, 0)
        if inst.opcode in ("shl", "lshr", "ashr") and rc and rhs.value == 0:
            return lhs
        return None

    @staticmethod
    def _fold_cmp(inst: Cmp) -> Value | None:
        if isinstance(inst.lhs, Constant) and isinstance(inst.rhs, Constant):
            fn = _CMP_FOLDS.get(inst.predicate)
            if fn is None:
                return None
            return Constant(inst.type, int(fn(inst.lhs.value,
                                              inst.rhs.value)))
        return None

    @staticmethod
    def _fold_cast(inst: Cast) -> Value | None:
        value = inst.value
        if not isinstance(value, Constant):
            return None
        if inst.opcode in ("sext", "trunc", "ptrtoint", "inttoptr",
                           "bitcast"):
            return Constant(inst.type, value.value)
        if inst.opcode == "zext":
            src = value.type
            if isinstance(src, IntType):
                return Constant(inst.type, value.value & ((1 << src.bits) - 1))
        if inst.opcode == "sitofp":
            return Constant(inst.type, float(value.value))
        if inst.opcode == "fptosi":
            return Constant(inst.type, int(value.value))
        return None
