"""Shared per-function analysis bundle used by transformation passes."""

from __future__ import annotations

from ..analysis.cfg import dominators
from ..analysis.induction import InductionAnalysis
from ..analysis.loops import LoopInfo
from ..analysis.sideeffects import SideEffectAnalysis
from ..ir.basicblock import BasicBlock
from ..ir.function import Function


class FunctionAnalyses:
    """Lazily computed analyses for one function.

    Passes construct this once per function and share it between their
    stages; it is invalidated (simply rebuilt) after mutation.
    """

    def __init__(self, func: Function,
                 side_effects: SideEffectAnalysis | None = None):
        self.function = func
        self._loop_info: LoopInfo | None = None
        self._induction: InductionAnalysis | None = None
        self._dominators: dict[BasicBlock, BasicBlock | None] | None = None
        self._side_effects = side_effects

    @property
    def loop_info(self) -> LoopInfo:
        """Natural loops of the function."""
        if self._loop_info is None:
            self._loop_info = LoopInfo(self.function)
        return self._loop_info

    @property
    def induction(self) -> InductionAnalysis:
        """Induction variables of the function."""
        if self._induction is None:
            self._induction = InductionAnalysis(self.function,
                                                self.loop_info)
        return self._induction

    @property
    def dominators(self) -> dict[BasicBlock, BasicBlock | None]:
        """Immediate-dominator map."""
        if self._dominators is None:
            self._dominators = dominators(self.function)
        return self._dominators

    @property
    def side_effects(self) -> SideEffectAnalysis:
        """Module-level purity analysis (requires the function to be in a
        module)."""
        if self._side_effects is None:
            module = self.function.parent
            if module is None:
                raise ValueError(
                    "side-effect analysis needs the function in a module")
            self._side_effects = SideEffectAnalysis(module)
        return self._side_effects
