"""Loop-invariant code motion (LICM).

Hoists pure, speculation-safe computations whose operands are loop
invariant into the loop preheader.  The indirect-prefetch pass emits
per-iteration clamp bounds like ``n - 1`` inside loops; LICM moves them
out, trimming the instruction overhead Fig. 8 measures.

Conservative by construction:

* only side-effect-free, non-trapping instructions move (no loads — a
  load's value can change under stores; no division — it can trap);
* only loops with a dedicated preheader are transformed;
* phis and terminators never move.
"""

from __future__ import annotations

from ..analysis.loops import Loop, LoopInfo
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (BinOp, Cast, Cmp, GEP, Instruction, Select)
from ..ir.module import Module
from ..ir.printer import Namer
from ..ir.values import Argument, Constant, UndefValue, Value
from ..remarks import active_emitter, emit

#: Division and remainder can trap on zero; never speculate them.
_TRAPPING = ("sdiv", "srem", "udiv", "urem", "fdiv")


class LoopInvariantCodeMotionPass:
    """Hoists invariant arithmetic to loop preheaders."""

    name = "licm"

    def run(self, module: Module) -> int:
        """Run on every function; returns instructions hoisted."""
        return sum(self.run_on_function(f) for f in module.functions)

    def run_on_function(self, func: Function) -> int:
        """Run on one function; returns instructions hoisted."""
        hoisted = 0
        info = LoopInfo(func)
        namer = Namer(func) if active_emitter() is not None else None
        # Innermost first, so nested invariants bubble outwards across
        # the fixed-point iterations.
        for loop in sorted(info.loops, key=lambda l: -l.depth):
            hoisted += self._hoist_loop(loop, func, namer)
        return hoisted

    def _hoist_loop(self, loop: Loop, func: Function,
                    namer: Namer | None) -> int:
        preheader = loop.preheader
        if preheader is None or preheader.terminator is None:
            return 0
        insertion = preheader.terminator
        hoisted = 0
        changed = True
        while changed:
            changed = False
            for block in list(loop.blocks):
                for inst in block.instructions:
                    if self._can_hoist(inst, loop):
                        inst.remove_from_parent()
                        preheader.insert_before(insertion, inst)
                        hoisted += 1
                        changed = True
                        if namer is not None:
                            emit("passed", self.name,
                                 "LoopInvariantHoisted",
                                 function=func.name,
                                 instruction=namer.ref(inst),
                                 opcode=inst.opcode,
                                 loop=loop.header.name,
                                 to=preheader.name)
        return hoisted

    def _can_hoist(self, inst: Instruction, loop: Loop) -> bool:
        if not isinstance(inst, (BinOp, Cmp, Select, Cast, GEP)):
            return False
        if inst.opcode in _TRAPPING:
            return False
        return all(self._is_invariant(op, loop) for op in inst.operands)

    @staticmethod
    def _is_invariant(value: Value, loop: Loop) -> bool:
        if isinstance(value, (Constant, Argument, UndefValue)):
            return True
        if isinstance(value, Instruction):
            return value.parent is not None and \
                value.parent not in loop.blocks
        return False
