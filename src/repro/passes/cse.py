"""Common subexpression elimination (dominator-scoped value numbering).

The prefetch pass intentionally duplicates address computations per
prefetch (the paper's O(n^2) staggered code); a real compiler's CSE
then collapses the redundant pure work.  This pass value-numbers pure
expressions along the dominator tree: an instruction computing the same
(opcode, operands, attributes) as an available dominating instruction is
replaced by it.

Loads, stores, calls, allocations, phis, and prefetches are never
touched (memory and effects stay put).
"""

from __future__ import annotations

from ..analysis.cfg import dominators
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (BinOp, Cast, Cmp, GEP, Instruction, Select)
from ..ir.module import Module
from ..ir.printer import Namer
from ..ir.values import Constant, Value
from ..remarks import active_emitter, emit

#: Commutative binary opcodes (operands sorted into canonical order).
_COMMUTATIVE = ("add", "mul", "and", "or", "xor", "fadd", "fmul")


def _operand_key(op: Value):
    # Constants compare by value: equal literals are interchangeable
    # even when they are distinct objects.
    if isinstance(op, Constant):
        return ("c", str(op.type), op.value)
    return id(op)


def _key(inst: Instruction) -> tuple | None:
    operands = tuple(_operand_key(op) for op in inst.operands)
    if isinstance(inst, BinOp):
        if inst.opcode in _COMMUTATIVE:
            operands = tuple(sorted(operands, key=repr))
        return ("bin", inst.opcode, operands)
    if isinstance(inst, Cmp):
        return ("cmp", inst.predicate, operands)
    if isinstance(inst, Select):
        return ("select", operands)
    if isinstance(inst, Cast):
        return ("cast", inst.opcode, str(inst.type), operands)
    if isinstance(inst, GEP):
        return ("gep", str(inst.type), operands)
    return None


class CommonSubexpressionEliminationPass:
    """Removes redundant pure expressions along the dominator tree."""

    name = "cse"

    def run(self, module: Module) -> int:
        """Run on every function; returns instructions eliminated."""
        return sum(self.run_on_function(f) for f in module.functions)

    def run_on_function(self, func: Function) -> int:
        """Run on one function; returns instructions eliminated."""
        namer = Namer(func) if active_emitter() is not None else None
        idom = dominators(func)
        children: dict[BasicBlock, list[BasicBlock]] = {}
        for block, parent in idom.items():
            if parent is not None:
                children.setdefault(parent, []).append(block)

        removed = 0

        def walk(block: BasicBlock,
                 available: dict[tuple, Instruction]) -> None:
            nonlocal removed
            scope = dict(available)
            for inst in block.instructions:
                key = _key(inst)
                if key is None:
                    continue
                existing = scope.get(key)
                if existing is not None:
                    if namer is not None:
                        emit("passed", self.name,
                             "RedundantExpressionEliminated",
                             function=func.name,
                             instruction=namer.ref(inst),
                             opcode=inst.opcode,
                             replaced_by=namer.ref(existing))
                    inst.replace_all_uses_with(existing)
                    inst.erase()
                    removed += 1
                else:
                    scope[key] = inst
            for child in children.get(block, ()):
                walk(child, scope)

        if func.blocks:
            walk(func.entry, {})
        return removed
