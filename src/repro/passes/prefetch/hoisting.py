"""Prefetch loop hoisting (§4.6).

Loads inside an inner loop may be rejected by the main pass because their
address computation crosses a non-induction phi (e.g. the node pointer of
a linked-list walk).  When that phi lives in the inner loop's header and
its initial value comes from the enclosing loop, the first inner-loop
iteration's address is computable *before* the inner loop starts: we
substitute the phi with its initial value and hoist the prefetch code into
the inner loop's preheader.

Safety requires that the hoisted code's loads would have executed anyway:

* the preheader must end in an unconditional jump to the header (so the
  loop body is entered whenever the hoisted code runs);
* every chain load must execute on every iteration (block dominates the
  latches), hence on the guaranteed first iteration;
* no stores in the inner loop may clobber the arrays the chain loads.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...analysis.cfg import dominates
from ...analysis.memdep import may_alias, stores_in_loop
from ...ir.builder import IRBuilder
from ...ir.function import Function
from ...ir.instructions import (Instruction, Jump, Load, Phi, Prefetch,
                                clone_instruction)
from ...ir.values import Argument, Constant, Value
from ..analysis_bundle import FunctionAnalyses
from .dfs import find_chain
from .legality import RejectReason


@dataclass
class HoistedPrefetch:
    """A prefetch emitted in an inner loop's preheader."""

    load: Load
    prefetch: Prefetch
    new_instructions: list[Instruction]


def hoist_inner_loop_prefetches(func: Function, report,
                                options) -> list[HoistedPrefetch]:
    """Attempt §4.6 hoisting for loads the main pass rejected.

    Operates on the loads recorded in ``report.rejected`` with reason
    ``NON_INDUCTION_PHI``; returns the hoisted prefetches (also appended
    to the caller's report by the pass driver).
    """
    analyses = FunctionAnalyses(func)
    hoisted: list[HoistedPrefetch] = []
    for rejected in report.rejected:
        if rejected.reason is not RejectReason.NON_INDUCTION_PHI:
            continue
        result = _try_hoist(rejected.load, analyses)
        if result is not None:
            hoisted.append(result)
    return hoisted


def _try_hoist(load: Load, analyses: FunctionAnalyses
               ) -> HoistedPrefetch | None:
    loop = analyses.loop_info.loop_of(load)
    if loop is None:
        return None
    preheader = loop.preheader
    if preheader is None or not isinstance(preheader.terminator, Jump):
        return None

    chain = find_chain(load, analyses)
    if chain is None:
        # The address may not involve any IV at all (pure pointer chase);
        # fall back to the phi-rooted walk.
        chain_instructions = _phi_rooted_chain(load, loop)
        if chain_instructions is None:
            return None
    else:
        chain_instructions = chain.instructions

    # Collect the non-induction phis used by the chain; all must be header
    # phis of this loop with an incoming value from the preheader.
    substitutions: dict[Value, Value] = {}
    for inst in chain_instructions:
        if isinstance(inst, Phi):
            if analyses.induction.is_induction_phi(inst):
                return None  # mixed IV/pointer chain: leave to main pass
            if inst.parent is not loop.header:
                return None
            try:
                substitutions[inst] = inst.incoming_for_block(preheader)
            except KeyError:
                return None

    if not substitutions:
        return None  # nothing to hoist around

    body = [i for i in chain_instructions if not isinstance(i, Phi)]

    # All loads in the chain must execute every iteration.
    idom = analyses.dominators
    for inst in body:
        if not all(dominates(inst.parent, latch, idom)
                   for latch in loop.latches):
            return None

    # Inputs of the hoisted code must be available at the preheader.
    chain_ids = {id(i) for i in chain_instructions}
    for inst in body:
        for operand in inst.operands:
            if id(operand) in chain_ids or operand in substitutions:
                continue
            if isinstance(operand, (Constant, Argument)):
                continue
            if isinstance(operand, Instruction) and \
                    operand.parent in loop.blocks:
                return None  # depends on another in-loop value

    # No stores in the loop may clobber the chain's loads.
    stores = stores_in_loop(loop)
    for inst in body:
        if isinstance(inst, Load) and inst is not load:
            if any(may_alias(s.ptr, inst.ptr) for s in stores):
                return None

    # Emit: clones of the chain at the preheader, final load -> prefetch.
    builder = IRBuilder()
    builder.set_insert_point(preheader, before=preheader.terminator)
    created: list[Instruction] = []
    value_map: dict[Value, Value] = dict(substitutions)
    prefetch: Prefetch | None = None
    for inst in body:
        if inst is load:
            ptr = value_map.get(load.ptr, load.ptr)
            prefetch = builder.prefetch(ptr)
            created.append(prefetch)
        else:
            clone = clone_instruction(inst, value_map)
            builder._insert(clone)
            created.append(clone)
    assert prefetch is not None
    return HoistedPrefetch(load=load, prefetch=prefetch,
                           new_instructions=created)


def _phi_rooted_chain(load: Load, loop) -> list[Instruction] | None:
    """Chain for addresses rooted at a header phi with no IV (e.g. a
    linked-list cursor): walk back from the load to phis of this loop."""
    chain: list[Instruction] = []
    seen: set[int] = set()

    def walk(value: Value) -> bool:
        if id(value) in seen:
            return True
        seen.add(id(value))
        if isinstance(value, Phi):
            chain.append(value)
            return value.parent is loop.header
        if isinstance(value, (Constant, Argument)):
            return True
        if isinstance(value, Instruction):
            if value.parent not in loop.blocks:
                return True  # loop-invariant input
            chain.append(value)
            return all(walk(op) for op in value.operands)
        return False

    if not walk(load):
        return None
    # Program order.
    position = {}
    func = load.function
    for bi, block in enumerate(func.blocks):
        for ii, inst in enumerate(block):
            position[id(inst)] = (bi, ii)
    chain.sort(key=lambda i: position[id(i)])
    return chain
