"""Driver for the automatic indirect-prefetch pass (the paper's Algorithm 1).

Usage::

    from repro.passes.prefetch import IndirectPrefetchPass, PrefetchOptions

    pass_ = IndirectPrefetchPass(PrefetchOptions(lookahead=64))
    report = pass_.run(module)          # or pass_.run_on_function(func)
    print(report.summary())

The pass finds loads inside loops whose addresses are (transitively)
computed from an induction variable, rejects those that cannot be made
fault-free (§4.2), schedules staggered look-ahead offsets (§4.4, eq. 1),
and inserts the prefetch code just before each original load (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...analysis.sideeffects import SideEffectAnalysis
from ...ir.function import Function
from ...ir.instructions import Load
from ...ir.module import Module
from ...ir.printer import Namer
from ...ir.verifier import verify_function
from ...remarks import active_emitter, emit
from ..analysis_bundle import FunctionAnalyses
from .dfs import ChainSearchResult, chain_loads, find_chain
from .legality import (ClampBound, LegalityResult, RejectReason, check_chain)
from .codegen import EmittedPrefetch, emit_prefetches
from .scheduling import (DEFAULT_LOOKAHEAD, ScheduledPrefetch,
                         schedule_chain)


@dataclass
class PrefetchOptions:
    """Tuning knobs of the prefetch pass.

    :ivar lookahead: the constant ``c`` of eq. (1); the paper uses 64.
    :ivar emit_stride_prefetch: emit the staggered stride prefetch for the
        look-ahead array itself (Fig. 5's "Indirect + Stride"; on by
        default, as in the paper's pass).
    :ivar max_stagger_depth: prefetch at most this many dependent indirect
        loads per chain (Fig. 7); ``None`` = all.
    :ivar allow_pure_calls: permit side-effect-free calls in prefetch
        address code (the extension sketched in §4.1).
    :ivar enable_hoisting: enable prefetch loop hoisting (§4.6).
    :ivar require_canonical_iv: restrict to canonical induction variables
        (the prototype restriction mentioned in §4.2).
    :ivar verify: run the IR verifier after transforming each function.
    """

    lookahead: int = DEFAULT_LOOKAHEAD
    emit_stride_prefetch: bool = True
    max_stagger_depth: int | None = None
    allow_pure_calls: bool = False
    enable_hoisting: bool = False
    require_canonical_iv: bool = False
    verify: bool = True


@dataclass
class AcceptedChain:
    """A chain the pass prefetched."""

    load: Load
    chain: ChainSearchResult
    clamp: ClampBound
    schedules: list[ScheduledPrefetch]
    emitted: list[EmittedPrefetch]

    @property
    def num_loads(self) -> int:
        """``t`` of eq. (1) for this chain."""
        return len(chain_loads(self.chain))


@dataclass
class RejectedLoad:
    """A load the pass considered but did not prefetch."""

    load: Load
    reason: RejectReason
    detail: str = ""


@dataclass
class FunctionReport:
    """Per-function outcome of the pass."""

    function: Function
    accepted: list[AcceptedChain] = field(default_factory=list)
    rejected: list[RejectedLoad] = field(default_factory=list)
    subsumed: list[Load] = field(default_factory=list)
    hoisted: list = field(default_factory=list)

    @property
    def num_prefetches(self) -> int:
        """Total prefetch instructions inserted in this function."""
        return (sum(len(a.emitted) for a in self.accepted)
                + len(self.hoisted))


@dataclass
class PrefetchReport:
    """Whole-module outcome of the pass."""

    functions: list[FunctionReport] = field(default_factory=list)

    @property
    def num_prefetches(self) -> int:
        """Total prefetch instructions inserted."""
        return sum(f.num_prefetches for f in self.functions)

    @property
    def accepted(self) -> list[AcceptedChain]:
        """All accepted chains across functions."""
        return [a for f in self.functions for a in f.accepted]

    @property
    def rejected(self) -> list[RejectedLoad]:
        """All rejected loads across functions."""
        return [r for f in self.functions for r in f.rejected]

    def summary(self) -> str:
        """Human-readable description of what the pass did.

        Loads are named with the IR printer's stable numbering, so an
        anonymous load prints as the ``%<n>`` the printed IR shows
        rather than an ambiguous ``%load``.
        """
        lines = []
        for freport in self.functions:
            namer = Namer(freport.function)
            lines.append(f"function @{freport.function.name}:")
            for acc in freport.accepted:
                offsets = ", ".join(
                    f"l={s.position}@+{s.offset}" for s in acc.schedules)
                lines.append(
                    f"  prefetched {namer.ref(acc.load)} "
                    f"(t={acc.num_loads}, clamp={acc.clamp.source}, "
                    f"{offsets})")
            for rej in freport.rejected:
                detail = f" ({rej.detail})" if rej.detail else ""
                lines.append(
                    f"  rejected {namer.ref(rej.load)}: "
                    f"{rej.reason.value}{detail}")
            for load in freport.subsumed:
                lines.append(
                    f"  {namer.ref(load)} covered by a longer chain")
        return "\n".join(lines) if lines else "(nothing to do)"


class IndirectPrefetchPass:
    """The automatic software-prefetch generation pass for indirect
    memory accesses (Algorithm 1)."""

    name = "indirect-prefetch"

    def __init__(self, options: PrefetchOptions | None = None):
        self.options = options or PrefetchOptions()

    def run(self, module: Module) -> PrefetchReport:
        """Run on every function of ``module``."""
        side_effects = SideEffectAnalysis(module)
        report = PrefetchReport()
        for func in module.functions:
            report.functions.append(
                self.run_on_function(func, side_effects))
        return report

    def run_on_function(self, func: Function,
                        side_effects: SideEffectAnalysis | None = None
                        ) -> FunctionReport:
        """Run on a single function and return its report."""
        analyses = FunctionAnalyses(func, side_effects)
        report = FunctionReport(function=func)

        # Collect candidate loads *before* mutating (Algorithm 1 line 30).
        loads = [inst for inst in func.instructions()
                 if isinstance(inst, Load) and analyses.loop_info.loop_of(
                     inst) is not None]

        # Phase 1: DFS + legality for every load.  Chains of rejected
        # loads are kept so their DFS paths can be reported in remarks.
        chains: list[tuple[Load, ChainSearchResult, LegalityResult]] = []
        rejected_chains: dict[int, ChainSearchResult] = {}
        for load in loads:
            chain = find_chain(load, analyses)
            if chain is None:
                report.rejected.append(RejectedLoad(
                    load, RejectReason.NO_INDUCTION_VARIABLE))
                continue
            legality = check_chain(
                chain, load, analyses,
                allow_pure_calls=self.options.allow_pure_calls,
                require_canonical_iv=self.options.require_canonical_iv)
            if not legality.ok:
                report.rejected.append(RejectedLoad(
                    load, legality.reason, legality.detail))
                rejected_chains[id(load)] = chain
                continue
            chains.append((load, chain, legality))

        # Phase 2: drop chains subsumed by a longer chain over the same
        # induction variable (their loads are covered by the longer
        # chain's staggered prefetches).
        maximal = self._select_maximal(chains, report)

        # Phase 3: schedule and emit, deduplicating identical prefetches
        # (same covered load at the same offset) across chains.
        emitted_keys: set[tuple[int, int]] = set()
        for load, chain, legality in maximal:
            loads_in_chain = chain_loads(chain)
            schedules = schedule_chain(
                len(loads_in_chain), self.options.lookahead,
                max_depth=self.options.max_stagger_depth,
                include_stride=self.options.emit_stride_prefetch)
            schedules = [
                s for s in schedules
                if (id(loads_in_chain[s.position]), s.offset)
                not in emitted_keys]
            if not schedules:
                continue
            for s in schedules:
                emitted_keys.add((id(loads_in_chain[s.position]), s.offset))
            emitted = emit_prefetches(chain, legality.clamp, schedules)
            report.accepted.append(AcceptedChain(
                load=load, chain=chain, clamp=legality.clamp,
                schedules=schedules, emitted=emitted))

        if self.options.enable_hoisting:
            from .hoisting import hoist_inner_loop_prefetches
            report.hoisted = hoist_inner_loop_prefetches(
                func, report, self.options)

        # Stable per-prefetch IDs, assigned in emission order.  The
        # join layer (repro explain) maps them to runtime PCs, so they
        # are attached whether or not remarks are being collected.
        sequence = 0
        for acc in report.accepted:
            for emitted in acc.emitted:
                emitted.prefetch.remark_id = f"pf:{func.name}:{sequence}"
                sequence += 1
        for hoist in report.hoisted:
            hoist.prefetch.remark_id = f"pf:{func.name}:{sequence}"
            sequence += 1

        if active_emitter() is not None:
            self._emit_remarks(func, report, rejected_chains)

        if self.options.verify:
            verify_function(func)
        return report

    def _emit_remarks(self, func: Function, report: FunctionReport,
                      rejected_chains: dict[int, ChainSearchResult]
                      ) -> None:
        """Emit one remark per decision this run of the pass made.

        Names use the IR printer's stable numbering of the *transformed*
        function, matching ``report.summary()`` and ``--print-ir``.
        """
        namer = Namer(func)
        c = self.options.lookahead
        for rej in report.rejected:
            chain = rejected_chains.get(id(rej.load))
            emit("missed", self.name, "PrefetchRejected",
                 function=func.name, load=namer.ref(rej.load),
                 reason=rej.reason.name, detail=rej.detail,
                 path=[namer.ref(i) for i in chain.instructions]
                 if chain else [])
        for load in report.subsumed:
            emit("analysis", self.name, "PrefetchSubsumed",
                 function=func.name, load=namer.ref(load))
        for acc in report.accepted:
            loads_in_chain = chain_loads(acc.chain)
            emit("passed", self.name, "PrefetchChainAccepted",
                 function=func.name, load=namer.ref(acc.load),
                 iv=namer.ref(acc.chain.iv.phi), t=acc.num_loads, c=c,
                 clamp_source=acc.clamp.source,
                 clamp_bound=namer.ref(acc.clamp.value),
                 chain=[namer.ref(i) for i in acc.chain.instructions])
            for emitted in acc.emitted:
                # offset = max(1, c*(t-l)//t), eq. (1); the inputs are
                # recorded so the join layer can tell the whole story.
                emit("passed", self.name, "PrefetchInserted",
                     function=func.name,
                     prefetch_id=emitted.prefetch.remark_id,
                     covered_load=namer.ref(
                         loads_in_chain[emitted.position]),
                     position=emitted.position, offset=emitted.offset,
                     t=acc.num_loads, c=c,
                     clamp_source=(acc.clamp.source
                                   if emitted.position >= 1 else "none"),
                     new_instructions=len(emitted.new_instructions))
        for hoist in report.hoisted:
            emit("passed", self.name, "PrefetchHoisted",
                 function=func.name,
                 prefetch_id=hoist.prefetch.remark_id,
                 load=namer.ref(hoist.load),
                 block=(hoist.prefetch.parent.name
                        if hoist.prefetch.parent else ""),
                 new_instructions=len(hoist.new_instructions))
        if self.options.enable_hoisting:
            hoisted = {id(h.load) for h in report.hoisted}
            for rej in report.rejected:
                if rej.reason is RejectReason.NON_INDUCTION_PHI and \
                        id(rej.load) not in hoisted:
                    emit("missed", self.name, "PrefetchHoistRejected",
                         function=func.name, load=namer.ref(rej.load))

    @staticmethod
    def _select_maximal(chains, report: FunctionReport):
        """Keep only chains not subsumed by a longer chain on the same IV."""
        maximal = []
        load_sets = [
            (set(map(id, chain_loads(chain))), load, chain, legality)
            for load, chain, legality in chains]
        for ids, load, chain, legality in load_sets:
            subsumed = False
            for other_ids, other_load, other_chain, _ in load_sets:
                if other_load is load:
                    continue
                if ids < other_ids and other_chain.iv is chain.iv:
                    subsumed = True
                    break
            if subsumed:
                report.subsumed.append(load)
            else:
                maximal.append((load, chain, legality))
        return maximal
