"""Driver for the automatic indirect-prefetch pass (the paper's Algorithm 1).

Usage::

    from repro.passes.prefetch import IndirectPrefetchPass, PrefetchOptions

    pass_ = IndirectPrefetchPass(PrefetchOptions(lookahead=64))
    report = pass_.run(module)          # or pass_.run_on_function(func)
    print(report.summary())

The pass finds loads inside loops whose addresses are (transitively)
computed from an induction variable, rejects those that cannot be made
fault-free (§4.2), schedules staggered look-ahead offsets (§4.4, eq. 1),
and inserts the prefetch code just before each original load (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...analysis.sideeffects import SideEffectAnalysis
from ...ir.function import Function
from ...ir.instructions import Load
from ...ir.module import Module
from ...ir.verifier import verify_function
from ..analysis_bundle import FunctionAnalyses
from .dfs import ChainSearchResult, chain_loads, find_chain
from .legality import (ClampBound, LegalityResult, RejectReason, check_chain)
from .codegen import EmittedPrefetch, emit_prefetches
from .scheduling import (DEFAULT_LOOKAHEAD, ScheduledPrefetch,
                         schedule_chain)


@dataclass
class PrefetchOptions:
    """Tuning knobs of the prefetch pass.

    :ivar lookahead: the constant ``c`` of eq. (1); the paper uses 64.
    :ivar emit_stride_prefetch: emit the staggered stride prefetch for the
        look-ahead array itself (Fig. 5's "Indirect + Stride"; on by
        default, as in the paper's pass).
    :ivar max_stagger_depth: prefetch at most this many dependent indirect
        loads per chain (Fig. 7); ``None`` = all.
    :ivar allow_pure_calls: permit side-effect-free calls in prefetch
        address code (the extension sketched in §4.1).
    :ivar enable_hoisting: enable prefetch loop hoisting (§4.6).
    :ivar require_canonical_iv: restrict to canonical induction variables
        (the prototype restriction mentioned in §4.2).
    :ivar verify: run the IR verifier after transforming each function.
    """

    lookahead: int = DEFAULT_LOOKAHEAD
    emit_stride_prefetch: bool = True
    max_stagger_depth: int | None = None
    allow_pure_calls: bool = False
    enable_hoisting: bool = False
    require_canonical_iv: bool = False
    verify: bool = True


@dataclass
class AcceptedChain:
    """A chain the pass prefetched."""

    load: Load
    chain: ChainSearchResult
    clamp: ClampBound
    schedules: list[ScheduledPrefetch]
    emitted: list[EmittedPrefetch]

    @property
    def num_loads(self) -> int:
        """``t`` of eq. (1) for this chain."""
        return len(chain_loads(self.chain))


@dataclass
class RejectedLoad:
    """A load the pass considered but did not prefetch."""

    load: Load
    reason: RejectReason
    detail: str = ""


@dataclass
class FunctionReport:
    """Per-function outcome of the pass."""

    function: Function
    accepted: list[AcceptedChain] = field(default_factory=list)
    rejected: list[RejectedLoad] = field(default_factory=list)
    subsumed: list[Load] = field(default_factory=list)
    hoisted: list = field(default_factory=list)

    @property
    def num_prefetches(self) -> int:
        """Total prefetch instructions inserted in this function."""
        return (sum(len(a.emitted) for a in self.accepted)
                + len(self.hoisted))


@dataclass
class PrefetchReport:
    """Whole-module outcome of the pass."""

    functions: list[FunctionReport] = field(default_factory=list)

    @property
    def num_prefetches(self) -> int:
        """Total prefetch instructions inserted."""
        return sum(f.num_prefetches for f in self.functions)

    @property
    def accepted(self) -> list[AcceptedChain]:
        """All accepted chains across functions."""
        return [a for f in self.functions for a in f.accepted]

    @property
    def rejected(self) -> list[RejectedLoad]:
        """All rejected loads across functions."""
        return [r for f in self.functions for r in f.rejected]

    def summary(self) -> str:
        """Human-readable description of what the pass did."""
        lines = []
        for freport in self.functions:
            lines.append(f"function @{freport.function.name}:")
            for acc in freport.accepted:
                offsets = ", ".join(
                    f"l={s.position}@+{s.offset}" for s in acc.schedules)
                lines.append(
                    f"  prefetched %{acc.load.name or 'load'} "
                    f"(t={acc.num_loads}, clamp={acc.clamp.source}, "
                    f"{offsets})")
            for rej in freport.rejected:
                detail = f" ({rej.detail})" if rej.detail else ""
                lines.append(
                    f"  rejected %{rej.load.name or 'load'}: "
                    f"{rej.reason.value}{detail}")
            for load in freport.subsumed:
                lines.append(
                    f"  %{load.name or 'load'} covered by a longer chain")
        return "\n".join(lines) if lines else "(nothing to do)"


class IndirectPrefetchPass:
    """The automatic software-prefetch generation pass for indirect
    memory accesses (Algorithm 1)."""

    name = "indirect-prefetch"

    def __init__(self, options: PrefetchOptions | None = None):
        self.options = options or PrefetchOptions()

    def run(self, module: Module) -> PrefetchReport:
        """Run on every function of ``module``."""
        side_effects = SideEffectAnalysis(module)
        report = PrefetchReport()
        for func in module.functions:
            report.functions.append(
                self.run_on_function(func, side_effects))
        return report

    def run_on_function(self, func: Function,
                        side_effects: SideEffectAnalysis | None = None
                        ) -> FunctionReport:
        """Run on a single function and return its report."""
        analyses = FunctionAnalyses(func, side_effects)
        report = FunctionReport(function=func)

        # Collect candidate loads *before* mutating (Algorithm 1 line 30).
        loads = [inst for inst in func.instructions()
                 if isinstance(inst, Load) and analyses.loop_info.loop_of(
                     inst) is not None]

        # Phase 1: DFS + legality for every load.
        chains: list[tuple[Load, ChainSearchResult, LegalityResult]] = []
        for load in loads:
            chain = find_chain(load, analyses)
            if chain is None:
                report.rejected.append(RejectedLoad(
                    load, RejectReason.NO_INDUCTION_VARIABLE))
                continue
            legality = check_chain(
                chain, load, analyses,
                allow_pure_calls=self.options.allow_pure_calls,
                require_canonical_iv=self.options.require_canonical_iv)
            if not legality.ok:
                report.rejected.append(RejectedLoad(
                    load, legality.reason, legality.detail))
                continue
            chains.append((load, chain, legality))

        # Phase 2: drop chains subsumed by a longer chain over the same
        # induction variable (their loads are covered by the longer
        # chain's staggered prefetches).
        maximal = self._select_maximal(chains, report)

        # Phase 3: schedule and emit, deduplicating identical prefetches
        # (same covered load at the same offset) across chains.
        emitted_keys: set[tuple[int, int]] = set()
        for load, chain, legality in maximal:
            loads_in_chain = chain_loads(chain)
            schedules = schedule_chain(
                len(loads_in_chain), self.options.lookahead,
                max_depth=self.options.max_stagger_depth,
                include_stride=self.options.emit_stride_prefetch)
            schedules = [
                s for s in schedules
                if (id(loads_in_chain[s.position]), s.offset)
                not in emitted_keys]
            if not schedules:
                continue
            for s in schedules:
                emitted_keys.add((id(loads_in_chain[s.position]), s.offset))
            emitted = emit_prefetches(chain, legality.clamp, schedules)
            report.accepted.append(AcceptedChain(
                load=load, chain=chain, clamp=legality.clamp,
                schedules=schedules, emitted=emitted))

        if self.options.enable_hoisting:
            from .hoisting import hoist_inner_loop_prefetches
            report.hoisted = hoist_inner_loop_prefetches(
                func, report, self.options)

        if self.options.verify:
            verify_function(func)
        return report

    @staticmethod
    def _select_maximal(chains, report: FunctionReport):
        """Keep only chains not subsumed by a longer chain on the same IV."""
        maximal = []
        load_sets = [
            (set(map(id, chain_loads(chain))), load, chain, legality)
            for load, chain, legality in chains]
        for ids, load, chain, legality in load_sets:
            subsumed = False
            for other_ids, other_load, other_chain, _ in load_sets:
                if other_load is load:
                    continue
                if ids < other_ids and other_chain.iv is chain.iv:
                    subsumed = True
                    break
            if subsumed:
                report.subsumed.append(load)
            else:
                maximal.append((load, chain, legality))
        return maximal
