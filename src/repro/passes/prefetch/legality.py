"""Legality filtering for prefetch candidates (Algorithm 1 lines 34-40,
plus the fault-avoidance conditions of §4.2).

A candidate chain survives only when duplicating its instructions at
look-ahead offsets cannot introduce new faults or side effects:

* no function calls in the chain (unless the pass option permitting
  *pure* calls is enabled — the extension §4.1 sketches);
* no non-induction phi nodes in the chain (complex control flow);
* no stores in the loop that may clobber the arrays the chain loads from;
* chain instructions must execute unconditionally every iteration (not
  control-dependent on loop-variant values);
* a safe clamp bound for the look-ahead induction value must exist:
  either the look-ahead array's size is statically discoverable (alloc
  or annotated argument) or the loop has a single termination condition
  on a monotonic induction variable used as a *direct* index.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ...analysis.allocsize import known_array_bound
from ...analysis.cfg import dominates
from ...analysis.induction import InductionVariable
from ...analysis.memdep import may_alias, stores_in_loop
from ...ir.instructions import Call, GEP, Instruction, Load, Phi
from ...ir.values import Argument, Constant, Value
from ..analysis_bundle import FunctionAnalyses
from .dfs import ChainSearchResult, chain_loads


class RejectReason(Enum):
    """Why a candidate load was not prefetched."""

    NO_INDUCTION_VARIABLE = "no induction variable found by the DFS"
    NOT_INDIRECT = "pure stride access; left to the hardware prefetcher"
    CONTAINS_CALL = "address computation contains a (possibly impure) call"
    NON_INDUCTION_PHI = "address computation contains a non-induction phi"
    STORED_TO = "loop stores to an array used for address generation"
    VARIANT_CONTROL = ("address loads are control-dependent on "
                       "loop-variant values")
    NO_SAFE_BOUND = "no array size or usable loop bound for the clamp"
    LOOP_VARIANT_INPUT = ("address computation reads loop-variant values "
                          "outside the recorded chain")


@dataclass
class ClampBound:
    """How to clamp ``iv + offset`` so duplicated loads cannot fault.

    :ivar value: IR value of the bound (array size or loop bound).
    :ivar inclusive: whether ``iv`` may equal ``value``.  When false the
        emitted clamp is ``min(iv + off, value - 1)``.
    :ivar source: ``"alloc"``, ``"argument"`` or ``"loop"``.
    """

    value: Value
    inclusive: bool
    source: str


@dataclass
class LegalityResult:
    """Outcome of legality checking for one candidate."""

    ok: bool
    reason: RejectReason | None = None
    detail: str = ""
    clamp: ClampBound | None = None


def check_chain(chain: ChainSearchResult, load: Load,
                analyses: FunctionAnalyses, *,
                allow_pure_calls: bool = False,
                require_canonical_iv: bool = False) -> LegalityResult:
    """Apply every legality filter to one candidate chain."""
    iv = chain.iv
    loads = chain_loads(chain)

    # Pure stride accesses are not prefetched here (§4.3): the hardware
    # stride prefetcher already covers them.
    if len(loads) < 2:
        return LegalityResult(False, RejectReason.NOT_INDIRECT)

    if require_canonical_iv and not iv.is_canonical:
        return LegalityResult(
            False, RejectReason.NO_SAFE_BOUND,
            "induction variable is not in canonical form")

    # Algorithm 1 line 35: function calls only if side-effect free.
    for inst in chain.instructions:
        if isinstance(inst, Call):
            if not allow_pure_calls:
                return LegalityResult(False, RejectReason.CONTAINS_CALL,
                                      f"call to @{inst.callee.name}")
            if not analyses.side_effects.call_is_safe_to_duplicate(inst):
                return LegalityResult(
                    False, RejectReason.CONTAINS_CALL,
                    f"call to impure @{inst.callee.name}")

    # Algorithm 1 line 40: non-induction phi nodes indicate control flow
    # the pass cannot reproduce next to the load.
    for inst in chain.instructions:
        if isinstance(inst, Phi) and inst is not iv.phi:
            return LegalityResult(False, RejectReason.NON_INDUCTION_PHI,
                                  f"phi %{inst.name} in chain")

    # §4.2: no stores in the loop to arrays the chain loads from.  The
    # *target* load is excluded: it becomes a prefetch, which reads
    # nothing architecturally.
    intermediate_loads = [l for l in loads if l is not load]
    stores = stores_in_loop(iv.loop)
    for intermediate in intermediate_loads:
        for store in stores:
            if may_alias(store.ptr, intermediate.ptr):
                return LegalityResult(
                    False, RejectReason.STORED_TO,
                    f"store may clobber %{intermediate.name or 'load'}")

    # §4.2: chain instructions must execute unconditionally each
    # iteration of the IV's loop — i.e. their blocks dominate the latch.
    idom = analyses.dominators
    for inst in chain.instructions:
        if inst.parent is None:
            return LegalityResult(False, RejectReason.VARIANT_CONTROL,
                                  "unplaced chain instruction")
        for latch in iv.loop.latches:
            if not dominates(inst.parent, latch, idom):
                return LegalityResult(
                    False, RejectReason.VARIANT_CONTROL,
                    f"{inst.opcode} in conditional block "
                    f"{inst.parent.name}")

    # Every value the chain consumes from outside the chain must be
    # loop-invariant w.r.t. the IV's loop (other than the IV itself).
    chain_ids = {id(i) for i in chain.instructions}
    for inst in chain.instructions:
        for operand in inst.operands:
            if operand is iv.phi or id(operand) in chain_ids:
                continue
            if isinstance(operand, (Constant, Argument)):
                continue
            if isinstance(operand, Instruction) and \
                    operand.parent in iv.loop.blocks:
                return LegalityResult(
                    False, RejectReason.LOOP_VARIANT_INPUT,
                    f"{inst.opcode} reads loop-variant "
                    f"%{operand.name or operand.opcode}")

    clamp = _find_clamp_bound(chain, loads[0], iv)
    if clamp is None:
        return LegalityResult(False, RejectReason.NO_SAFE_BOUND)
    return LegalityResult(True, clamp=clamp)


def _find_clamp_bound(chain: ChainSearchResult, first_load: Load,
                      iv: InductionVariable) -> ClampBound | None:
    """Derive the clamp for ``min(iv + off, bound)`` (§4.2).

    Prefers size information recovered from the IR (allocation or
    annotated argument) over the loop bound, since the former never
    changes program behaviour even for originally-faulty programs.
    """
    bound = known_array_bound(first_load.ptr)
    if bound is not None:
        # Valid indices are 0 .. count-1.
        return ClampBound(value=bound.count, inclusive=False,
                          source=bound.source)

    # Fall back to the loop bound.  This requires (a) a single loop
    # termination condition, captured by InductionAnalysis as iv.bound;
    # (b) a monotonic IV; and (c) the look-ahead array being indexed by
    # the IV *directly* (base[i], not base[f(i)]) — the prototype
    # restriction of §4.2.
    if iv.bound is None:
        return None
    if not iv.is_increasing:
        # The prototype restriction: look-ahead arrays are walked upwards.
        # (Decreasing IVs would need a max-clamp; see tests for coverage
        # of the rejection.)
        return None
    gep = first_load.ptr
    if not (isinstance(gep, GEP) and gep.index is iv.phi):
        return None
    return ClampBound(value=iv.bound.value, inclusive=iv.bound.inclusive,
                      source="loop")
