"""The automatic indirect-prefetch pass — the paper's core contribution.

Public entry points:

* :class:`IndirectPrefetchPass` / :class:`PrefetchOptions` — the pass;
* :class:`PrefetchReport` — what it did and why;
* :func:`~repro.passes.prefetch.scheduling.offset_for` — eq. (1).
"""

from .codegen import EmittedPrefetch, emit_prefetches
from .dfs import ChainSearchResult, chain_loads, find_chain
from .hoisting import HoistedPrefetch, hoist_inner_loop_prefetches
from .legality import ClampBound, LegalityResult, RejectReason, check_chain
from .pass_ import (AcceptedChain, FunctionReport, IndirectPrefetchPass,
                    PrefetchOptions, PrefetchReport, RejectedLoad)
from .scheduling import (DEFAULT_LOOKAHEAD, ScheduledPrefetch, offset_for,
                         schedule_chain)

__all__ = [
    "EmittedPrefetch", "emit_prefetches",
    "ChainSearchResult", "chain_loads", "find_chain",
    "HoistedPrefetch", "hoist_inner_loop_prefetches",
    "ClampBound", "LegalityResult", "RejectReason", "check_chain",
    "AcceptedChain", "FunctionReport", "IndirectPrefetchPass",
    "PrefetchOptions", "PrefetchReport", "RejectedLoad",
    "DEFAULT_LOOKAHEAD", "ScheduledPrefetch", "offset_for",
    "schedule_chain",
]
