"""Look-ahead scheduling (§4.4, equation 1).

For a chain of ``t`` dependent loads, the load at position ``l`` (counting
from the one nearest the induction variable) is prefetched at offset::

    offset(l) = c * (t - l) / t

so the look-ahead is spaced evenly: each prefetched value is ready
``c / t`` iterations before the next prefetch in the sequence (or the
original load) needs it.  ``c`` is a microarchitecture-influenced constant;
the paper sets ``c = 64`` everywhere and shows (Fig. 6) that this is close
to optimal on all four machines.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The paper's default look-ahead constant.
DEFAULT_LOOKAHEAD = 64


@dataclass
class ScheduledPrefetch:
    """One prefetch to emit for a chain.

    :ivar position: index ``l`` of the covered load within the chain
        (0 = the stride load on the look-ahead array itself).
    :ivar offset: iterations of look-ahead for this prefetch.
    """

    position: int
    offset: int


def schedule_chain(num_loads: int, lookahead: int = DEFAULT_LOOKAHEAD,
                   *, max_depth: int | None = None,
                   include_stride: bool = True) -> list[ScheduledPrefetch]:
    """Compute the prefetches for a chain of ``num_loads`` dependent loads.

    :param num_loads: ``t`` in eq. (1); must be >= 1.
    :param lookahead: the constant ``c``.
    :param max_depth: prefetch only the first ``max_depth`` *indirect*
        loads of the chain (the stagger-depth knob of Fig. 7); the
        position-0 stride prefetch does not count against the depth.
        ``None`` prefetches the whole chain.
    :param include_stride: also emit the position-0 prefetch covering the
        sequentially accessed look-ahead array (Fig. 5 compares this
        against indirect-only prefetching).
    :returns: schedules sorted by position.
    """
    if num_loads < 1:
        raise ValueError("a chain must contain at least one load")
    if lookahead < 1:
        raise ValueError("look-ahead constant must be positive")
    depth = (num_loads - 1) if max_depth is None else max_depth
    schedules = []
    for position in range(num_loads):
        if position == 0 and not include_stride:
            continue
        if position > depth:
            # Stagger depth exhausted: deeper loads are not prefetched.
            continue
        offset = offset_for(position, num_loads, lookahead)
        schedules.append(ScheduledPrefetch(position=position, offset=offset))
    return schedules


def offset_for(position: int, num_loads: int,
               lookahead: int = DEFAULT_LOOKAHEAD) -> int:
    """Equation (1): ``offset = c * (t - l) / t``, at least 1."""
    if not 0 <= position < num_loads:
        raise ValueError(
            f"position {position} out of range for {num_loads} loads")
    return max(1, (lookahead * (num_loads - position)) // num_loads)
