"""Prefetch code generation (§4.3, Algorithm 1 lines 42-54).

For every scheduled prefetch of a chain this emits, immediately before the
original target load:

* ``%iv.off = add %iv, offset`` — the look-ahead induction value;
* for indirect prefetches (position >= 1), the fault clamp
  ``%iv.c = min(%iv.off, bound)`` as a ``cmp``+``select`` pair;
* clones of the address-generation instructions with the induction
  variable replaced by the clamped look-ahead value, where loads below
  the covered position stay *real* loads;
* a ``prefetch`` of the covered load's cloned address.

Position-0 (stride) prefetches carry no clamp: a prefetch cannot fault,
and no intermediate load executes (matching Fig. 3(c) lines 7-9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...ir.builder import IRBuilder
from ...ir.instructions import (Instruction, Load, Prefetch,
                                clone_instruction)
from ...ir.types import IntType
from ...ir.values import Constant, Value
from .dfs import ChainSearchResult, chain_loads
from .legality import ClampBound
from .scheduling import ScheduledPrefetch


@dataclass
class EmittedPrefetch:
    """Code emitted for one scheduled prefetch."""

    position: int
    offset: int
    prefetch: Prefetch
    new_instructions: list[Instruction] = field(default_factory=list)


def emit_prefetches(chain: ChainSearchResult, clamp: ClampBound,
                    schedules: list[ScheduledPrefetch]
                    ) -> list[EmittedPrefetch]:
    """Generate and insert the prefetch code for one candidate chain."""
    loads = chain_loads(chain)
    target = loads[-1]
    emitted = []
    for schedule in schedules:
        emitted.append(
            _emit_one(chain, loads, target, clamp, schedule))
    return emitted


def _emit_one(chain: ChainSearchResult, loads: list[Load], target: Load,
              clamp: ClampBound, schedule: ScheduledPrefetch
              ) -> EmittedPrefetch:
    iv = chain.iv
    covered = loads[schedule.position]
    builder = IRBuilder()
    builder.set_insert_point(target.parent, before=target)
    created: list[Instruction] = []

    def track(inst: Instruction) -> Instruction:
        created.append(inst)
        return inst

    iv_type = iv.phi.type
    if not isinstance(iv_type, IntType):
        raise TypeError("induction variable must be an integer")

    # Look-ahead induction value.  The IV may step by more than one; the
    # offset is expressed in iterations, so scale by the step magnitude.
    step_scale = abs(iv.step)
    advance = schedule.offset * step_scale
    if iv.step < 0:
        advance = -advance
    iv_off = track(builder.add(iv.phi, builder.const(advance, iv_type),
                               "pf.iv"))

    lookahead: Value = iv_off
    if schedule.position >= 1:
        lookahead = _emit_clamp(builder, track, iv_off, clamp, iv_type,
                                increasing=iv.step > 0)

    # Clone the address-generation sub-chain feeding the covered load.
    sub = _subchain(chain.instructions, covered)
    value_map: dict[Value, Value] = {iv.phi: lookahead}
    prefetch: Prefetch | None = None
    for inst in sub:
        if inst is covered:
            ptr = value_map.get(inst.ptr, inst.ptr)  # type: ignore[attr-defined]
            prefetch = track(builder.prefetch(ptr))  # type: ignore[assignment]
        else:
            clone = clone_instruction(inst, value_map)
            track(builder._insert(clone))
    assert prefetch is not None
    return EmittedPrefetch(position=schedule.position,
                           offset=schedule.offset,
                           prefetch=prefetch,
                           new_instructions=created)


def _emit_clamp(builder: IRBuilder, track, iv_off: Value, clamp: ClampBound,
                iv_type: IntType, *, increasing: bool) -> Value:
    """Emit ``min(iv_off, bound)`` (or ``max`` for decreasing IVs)."""
    bound: Value = clamp.value
    adjust = 0 if clamp.inclusive else (-1 if increasing else 1)
    if adjust:
        if isinstance(bound, Constant):
            bound = builder.const(bound.value + adjust, iv_type)
        else:
            bound = track(builder.add(
                bound, builder.const(adjust, iv_type), "pf.bound"))
    predicate = "slt" if increasing else "sgt"
    cmp = track(builder.cmp(predicate, iv_off, bound, "pf.cl"))
    return track(builder.select(cmp, iv_off, bound, "pf.iv.c"))


def _subchain(chain_instructions: list[Instruction],
              covered: Load) -> list[Instruction]:
    """The chain instructions the covered load's address depends on,
    in program order, ending with the covered load itself."""
    in_chain = {id(inst): inst for inst in chain_instructions}
    needed = {id(covered)}
    for inst in reversed(chain_instructions):
        if id(inst) in needed:
            for operand in inst.operands:
                if id(operand) in in_chain:
                    needed.add(id(operand))
    return [inst for inst in chain_instructions if id(inst) in needed]
