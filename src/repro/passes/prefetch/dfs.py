"""The depth-first search of Algorithm 1 (lines 1-24).

Starting from a load inside a loop, walk the data-dependence graph
backwards through SSA operands to find an induction variable in the
transitive closure of the address computation.  Record every instruction
on each path from the induction variable to the load: that set becomes
the prefetch address-generation code.

Searching stops along a path at instructions not inside any loop
(allocations, loop-invariant setup code) and at non-instruction values
(constants, arguments).  Non-induction phis are traversed and *recorded*
so that the legality stage (Algorithm 1 line 40) can reject the chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...ir.instructions import Instruction, Load, Phi
from ...ir.values import Value
from ..analysis_bundle import FunctionAnalyses
from ...analysis.induction import InductionVariable


@dataclass
class ChainSearchResult:
    """Outcome of the DFS for one target load.

    :ivar iv: the chosen induction variable (innermost when several are
        referenced, per Algorithm 1 line 21).
    :ivar instructions: all instructions on paths from the IV to the load,
        including the load itself, in program order.
    :ivar all_ivs: every induction variable any path reached (useful for
        diagnostics and the innermost-IV ablation).
    """

    iv: InductionVariable
    instructions: list[Instruction]
    all_ivs: list[InductionVariable] = field(default_factory=list)


def find_chain(load: Load, analyses: FunctionAnalyses
               ) -> ChainSearchResult | None:
    """Run the Algorithm 1 DFS from ``load``.

    Returns ``None`` when no induction variable of a loop enclosing the
    load is reachable through the address computation.
    """
    loop_info = analyses.loop_info
    induction = analyses.induction
    load_loop = loop_info.loop_of(load)
    if load_loop is None:
        return None

    # Loops enclosing the load, innermost first; IVs must belong to one.
    enclosing: list = []
    loop = load_loop
    while loop is not None:
        enclosing.append(loop)
        loop = loop.parent

    # memo maps instruction id -> dict of iv id -> set of instruction ids
    # on paths from that iv through this instruction.
    memo: dict[int, dict[int, set[int]] | None] = {}
    iv_by_id: dict[int, InductionVariable] = {}
    inst_by_id: dict[int, Instruction] = {}

    def dfs(inst: Instruction, visiting: set[int]) -> dict[int, set[int]]:
        """Return {iv_id: instruction-id set} for paths through ``inst``."""
        if id(inst) in memo:
            cached = memo[id(inst)]
            return dict(cached) if cached else {}
        if id(inst) in visiting:
            return {}  # loop-carried cycle through a non-IV phi
        visiting.add(id(inst))
        inst_by_id[id(inst)] = inst

        candidates: dict[int, set[int]] = {}
        operands: list[Value] = list(inst.operands)
        if isinstance(inst, Phi):
            operands = [v for v, _ in inst.incoming]
        for operand in operands:
            iv = induction.iv_for(operand)
            if iv is not None and iv.loop in enclosing:
                # Found an induction variable: finish this path.
                iv_by_id[id(operand)] = iv
                candidates.setdefault(id(operand), set()).add(id(inst))
            elif isinstance(operand, Instruction) and \
                    loop_info.in_any_loop(operand):
                # Recurse to find an induction variable (line 8-10).
                sub = dfs(operand, visiting)
                for iv_id, insts in sub.items():
                    merged = candidates.setdefault(iv_id, set())
                    merged.add(id(inst))
                    merged.update(insts)
            # Otherwise: defined outside all loops / constant / argument --
            # stop searching along this path.
        visiting.discard(id(inst))
        memo[id(inst)] = {k: set(v) for k, v in candidates.items()}
        return candidates

    candidates = dfs(load, set())
    if not candidates:
        return None

    all_ivs = [iv_by_id[iv_id] for iv_id in candidates]
    # Multiple induction variables: choose the one in the closest
    # (innermost) loop to the load (Algorithm 1 line 21).
    def loop_rank(iv: InductionVariable) -> int:
        for rank, enclosing_loop in enumerate(enclosing):
            if iv.loop is enclosing_loop:
                return rank
        return len(enclosing)

    chosen_id = min(candidates, key=lambda iv_id: loop_rank(iv_by_id[iv_id]))
    chosen_iv = iv_by_id[chosen_id]
    inst_ids = candidates[chosen_id]

    ordered = _program_order(
        [inst_by_id[i] for i in inst_ids], load.function)
    return ChainSearchResult(iv=chosen_iv, instructions=ordered,
                             all_ivs=all_ivs)


def _program_order(instructions: list[Instruction], func) -> list[Instruction]:
    position: dict[int, tuple[int, int]] = {}
    for block_index, block in enumerate(func.blocks):
        for inst_index, inst in enumerate(block):
            position[id(inst)] = (block_index, inst_index)
    return sorted(instructions, key=lambda i: position[id(i)])


def chain_loads(result: ChainSearchResult) -> list[Load]:
    """The loads of a chain in dependence order (base-most first).

    Program order is a topological order of SSA dependences, so the sorted
    instruction list already satisfies "base-most first"; the target load
    is last.
    """
    return [i for i in result.instructions if isinstance(i, Load)]
