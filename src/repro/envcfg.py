"""Validated integer environment variables: warn, never crash.

Runtime knobs (worker counts, queue bounds, ring sizes) arrive through
``REPRO_*`` environment variables, frequently set by CI scripts and
shell one-liners where a typo is easy.  A bad value must never abort a
run: like :func:`repro.telemetry.collector.ring_capacity` and the
trace-JIT threshold clamp, an out-of-range or non-integer value
produces a Python warning plus (when remarks are being collected) an
``EnvVarClamped`` warning remark, and a documented fallback is used.

:func:`env_int` is the one shared implementation; callers state their
fallback and bounds, so every knob degrades the same way.
"""

from __future__ import annotations

import os
import warnings

from .remarks import emit


def _fallback(name: str, raw: str, used: int, reason: str) -> int:
    """Report an unusable value for ``name`` and carry on with ``used``."""
    warnings.warn(f"{name}={raw!r} is {reason}; using {used}",
                  RuntimeWarning, stacklevel=4)
    emit("warning", "env", "EnvVarClamped",
         var=name, value=raw, used=used, reason=reason)
    return used


def env_int(name: str, fallback: int, *, minimum: int | None = None,
            maximum: int | None = None) -> int:
    """Integer value of environment variable ``name``, validated.

    Unset (or empty) returns ``fallback`` silently.  A value that is
    not an integer falls back to ``fallback``; one below ``minimum``
    clamps to ``minimum``; one above ``maximum`` clamps to ``maximum``
    — each with a ``RuntimeWarning`` and an ``EnvVarClamped`` remark
    instead of an exception.
    """
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return fallback
    try:
        value = int(raw)
    except ValueError:
        return _fallback(name, raw, fallback, "not an integer")
    if minimum is not None and value < minimum:
        return _fallback(name, raw, minimum,
                         f"below the minimum {minimum}")
    if maximum is not None and value > maximum:
        return _fallback(name, raw, maximum,
                         f"above the maximum {maximum}")
    return value
