"""Control-flow graph analyses: orderings, dominators, frontiers.

Dominators use the Cooper-Harvey-Kennedy iterative algorithm, which is
simple and fast for the CFG sizes this project manipulates.
"""

from __future__ import annotations

from ..ir.basicblock import BasicBlock
from ..ir.function import Function


def successor_map(func: Function) -> dict[BasicBlock, list[BasicBlock]]:
    """Map each block to its successor list."""
    return {block: block.successors for block in func.blocks}


def predecessor_map(func: Function) -> dict[BasicBlock, list[BasicBlock]]:
    """Map each block to its predecessor list (single scan, O(E))."""
    preds: dict[BasicBlock, list[BasicBlock]] = {
        block: [] for block in func.blocks}
    for block in func.blocks:
        for succ in block.successors:
            preds[succ].append(block)
    return preds


def reverse_postorder(func: Function) -> list[BasicBlock]:
    """Blocks reachable from entry, in reverse postorder."""
    visited: set[int] = set()
    order: list[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        # Iterative DFS with an explicit stack to avoid recursion limits.
        stack: list[tuple[BasicBlock, int]] = [(block, 0)]
        visited.add(id(block))
        while stack:
            current, index = stack.pop()
            succs = current.successors
            if index < len(succs):
                stack.append((current, index + 1))
                child = succs[index]
                if id(child) not in visited:
                    visited.add(id(child))
                    stack.append((child, 0))
            else:
                order.append(current)

    visit(func.entry)
    order.reverse()
    return order


def dominators(func: Function) -> dict[BasicBlock, BasicBlock | None]:
    """Immediate dominators for all reachable blocks.

    Returns a map ``block -> idom``; the entry block maps to ``None``.
    Unreachable blocks are absent from the map.
    """
    rpo = reverse_postorder(func)
    index = {id(b): i for i, b in enumerate(rpo)}
    preds = predecessor_map(func)
    entry = func.entry

    idom: dict[int, BasicBlock] = {id(entry): entry}

    def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while index[id(a)] > index[id(b)]:
                a = idom[id(a)]
            while index[id(b)] > index[id(a)]:
                b = idom[id(b)]
        return a

    changed = True
    while changed:
        changed = False
        for block in rpo:
            if block is entry:
                continue
            new_idom: BasicBlock | None = None
            for pred in preds[block]:
                if id(pred) not in idom or id(pred) not in index:
                    continue
                if new_idom is None:
                    new_idom = pred
                else:
                    new_idom = intersect(new_idom, pred)
            if new_idom is not None and idom.get(id(block)) is not new_idom:
                idom[id(block)] = new_idom
                changed = True

    result: dict[BasicBlock, BasicBlock | None] = {entry: None}
    for block in rpo:
        if block is entry:
            continue
        if id(block) in idom:
            result[block] = idom[id(block)]
    return result


def dominates(a: BasicBlock, b: BasicBlock,
              idom: dict[BasicBlock, BasicBlock | None]) -> bool:
    """Whether block ``a`` dominates block ``b`` under the idom map."""
    runner: BasicBlock | None = b
    while runner is not None:
        if runner is a:
            return True
        runner = idom.get(runner)
    return False


def dominance_frontiers(
        func: Function,
        idom: dict[BasicBlock, BasicBlock | None] | None = None,
) -> dict[BasicBlock, set[BasicBlock]]:
    """Dominance frontier of each reachable block (Cytron's definition)."""
    if idom is None:
        idom = dominators(func)
    preds = predecessor_map(func)
    frontiers: dict[BasicBlock, set[BasicBlock]] = {
        block: set() for block in idom}
    for block in idom:
        block_preds = [p for p in preds[block] if p in frontiers]
        if len(block_preds) < 2:
            continue
        for pred in block_preds:
            runner: BasicBlock | None = pred
            while runner is not None and runner is not idom[block]:
                frontiers[runner].add(block)
                runner = idom.get(runner)
    return frontiers


def instruction_dominates(a, b, idom=None) -> bool:
    """Whether instruction ``a`` dominates instruction ``b``.

    Both must be placed in the same function.  For same-block pairs this is
    program order; otherwise it reduces to block dominance.
    """
    if a.parent is None or b.parent is None:
        raise ValueError("both instructions must be placed in blocks")
    if a.parent is b.parent:
        block = a.parent
        for inst in block:
            if inst is a:
                return True
            if inst is b:
                return False
        raise ValueError("instructions not found in their parent block")
    if idom is None:
        idom = dominators(a.parent.parent)
    return dominates(a.parent, b.parent, idom)
