"""Natural loop detection and the loop nesting forest.

Loops are discovered from back edges (``latch -> header`` where the header
dominates the latch); loops sharing a header are merged.  The nesting
forest orders loops by block containment, giving each loop a depth used by
the prefetch pass to pick the *innermost* induction variable when a load's
address depends on several.
"""

from __future__ import annotations

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Instruction
from .cfg import dominates, dominators, predecessor_map


class Loop:
    """A natural loop: a header plus the blocks of its body.

    :ivar header: the loop header block (the target of the back edges).
    :ivar blocks: all blocks in the loop, including the header.
    :ivar latches: blocks with a back edge to the header.
    :ivar parent: the enclosing loop, or ``None`` for top-level loops.
    :ivar children: loops nested immediately inside this one.
    """

    def __init__(self, header: BasicBlock, blocks: set[BasicBlock]):
        self.header = header
        self.blocks = blocks
        self.latches: list[BasicBlock] = []
        self.parent: "Loop | None" = None
        self.children: list["Loop"] = []

    @property
    def depth(self) -> int:
        """Nesting depth; top-level loops have depth 1."""
        depth = 1
        loop = self.parent
        while loop is not None:
            depth += 1
            loop = loop.parent
        return depth

    def contains_block(self, block: BasicBlock) -> bool:
        """Whether ``block`` belongs to this loop (or a nested one)."""
        return block in self.blocks

    def contains(self, inst: Instruction) -> bool:
        """Whether ``inst`` is placed inside this loop."""
        return inst.parent is not None and inst.parent in self.blocks

    @property
    def preheader(self) -> BasicBlock | None:
        """The unique out-of-loop predecessor of the header, if it exists."""
        outside = [p for p in self.header.predecessors
                   if p not in self.blocks]
        if len(outside) == 1:
            return outside[0]
        return None

    @property
    def exiting_blocks(self) -> list[BasicBlock]:
        """Blocks inside the loop with a successor outside it."""
        result = []
        for block in self.blocks:
            if any(succ not in self.blocks for succ in block.successors):
                result.append(block)
        return result

    @property
    def exit_blocks(self) -> list[BasicBlock]:
        """Blocks outside the loop that are targets of loop exits."""
        result = []
        seen: set[int] = set()
        for block in self.blocks:
            for succ in block.successors:
                if succ not in self.blocks and id(succ) not in seen:
                    seen.add(id(succ))
                    result.append(succ)
        return result

    @property
    def single_exit_condition(self) -> Instruction | None:
        """If the loop has exactly one exiting block whose terminator is a
        conditional branch, return that branch; else ``None``.

        The fault-avoidance analysis (§4.2) requires a *single* loop
        termination condition before it will use the loop bound as a
        substitute for unknown array sizes.
        """
        exiting = self.exiting_blocks
        if len(exiting) != 1:
            return None
        term = exiting[0].terminator
        if term is not None and term.opcode == "br":
            return term
        return None

    def __repr__(self) -> str:
        return (f"<Loop header={self.header.name} depth={self.depth} "
                f"blocks={sorted(b.name for b in self.blocks)}>")


class LoopInfo:
    """All loops of a function, arranged in a nesting forest.

    :ivar top_level: loops not contained in any other loop.
    """

    def __init__(self, func: Function):
        self.function = func
        self._idom = dominators(func)
        self._loops = _find_loops(func, self._idom)
        _build_forest(self._loops)
        self.top_level = [l for l in self._loops if l.parent is None]
        # Innermost loop per block.
        self._block_loop: dict[BasicBlock, Loop] = {}
        for loop in sorted(self._loops, key=lambda l: l.depth):
            for block in loop.blocks:
                self._block_loop[block] = loop

    @property
    def loops(self) -> list[Loop]:
        """All loops, outermost first."""
        return sorted(self._loops, key=lambda l: l.depth)

    def loop_of_block(self, block: BasicBlock) -> Loop | None:
        """The innermost loop containing ``block``, if any."""
        return self._block_loop.get(block)

    def loop_of(self, inst: Instruction) -> Loop | None:
        """The innermost loop containing ``inst``, if any."""
        if inst.parent is None:
            return None
        return self.loop_of_block(inst.parent)

    def in_any_loop(self, inst: Instruction) -> bool:
        """Whether ``inst`` sits inside at least one loop."""
        return self.loop_of(inst) is not None


def _find_loops(func: Function,
                idom: dict[BasicBlock, BasicBlock | None]) -> list[Loop]:
    preds = predecessor_map(func)
    loops_by_header: dict[int, Loop] = {}
    header_of: dict[int, BasicBlock] = {}

    for block in func.blocks:
        if block not in idom:
            continue  # unreachable
        for succ in block.successors:
            if succ in idom and dominates(succ, block, idom):
                header = succ
                loop = loops_by_header.get(id(header))
                if loop is None:
                    loop = Loop(header, {header})
                    loops_by_header[id(header)] = loop
                    header_of[id(header)] = header
                loop.latches.append(block)
                # Blocks reaching the latch without passing the header.
                stack = [block]
                while stack:
                    current = stack.pop()
                    if current in loop.blocks:
                        continue
                    loop.blocks.add(current)
                    for pred in preds[current]:
                        if pred in idom:
                            stack.append(pred)
    return list(loops_by_header.values())


def _build_forest(loops: list[Loop]) -> None:
    # Sort by size so the smallest enclosing loop is found first.
    by_size = sorted(loops, key=lambda l: len(l.blocks))
    for i, inner in enumerate(by_size):
        for outer in by_size[i + 1:]:
            if outer is not inner and inner.header in outer.blocks:
                inner.parent = outer
                outer.children.append(inner)
                break
