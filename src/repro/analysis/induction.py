"""Induction variable analysis.

Detects *basic* induction variables: header phis of the form
``i = phi [init, preheader], [i + step, latch]`` with a compile-time
constant step.  For loops with a single exit condition testing the IV (or
its update) against a loop-invariant bound, the analysis also derives the
maximum (or minimum) value the IV takes inside the loop body — the
substitute for array-size information that §4.2 of the paper uses to keep
prefetch address generation fault-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import BinOp, Branch, Cmp, Instruction, Phi
from ..ir.values import Argument, Constant, Value
from .loops import Loop, LoopInfo


@dataclass
class IVBound:
    """The extreme value an induction variable reaches in its loop.

    :ivar value: loop-invariant IR value the IV is compared against.
    :ivar inclusive: whether the IV may equal ``value`` inside the body.
        The clamp emitted by the prefetch pass is ``min(i + off, value)``
        when inclusive and ``min(i + off, value - 1)`` otherwise (mirrored
        for decreasing IVs).
    """

    value: Value
    inclusive: bool


@dataclass
class InductionVariable:
    """A basic induction variable of a loop.

    :ivar phi: the header phi node.
    :ivar loop: the loop the phi governs.
    :ivar init: the incoming value from outside the loop.
    :ivar step: the constant step added each iteration (may be negative).
    :ivar update: the add/sub instruction producing the next value.
    :ivar bound: the derived extreme value, or ``None`` when the loop exit
        does not have the single-condition shape required by §4.2.
    """

    phi: Phi
    loop: Loop
    init: Value
    step: int
    update: BinOp
    bound: IVBound | None = None

    @property
    def is_increasing(self) -> bool:
        """True when the IV grows each iteration."""
        return self.step > 0

    @property
    def is_canonical(self) -> bool:
        """True for the canonical form: starts at 0 and steps by +1."""
        return (self.step == 1 and isinstance(self.init, Constant)
                and self.init.value == 0)


class InductionAnalysis:
    """Finds every basic induction variable in a function.

    :param func: the function to analyse.
    :param loop_info: a precomputed :class:`LoopInfo` (computed on demand
        if omitted).
    """

    def __init__(self, func: Function, loop_info: LoopInfo | None = None):
        self.function = func
        self.loop_info = loop_info or LoopInfo(func)
        self._ivs: dict[int, InductionVariable] = {}
        for loop in self.loop_info.loops:
            for phi in loop.header.phis:
                iv = _match_basic_iv(phi, loop)
                if iv is not None:
                    iv.bound = _derive_bound(iv)
                    self._ivs[id(phi)] = iv

    def iv_for(self, value: Value) -> InductionVariable | None:
        """The induction variable whose phi is ``value``, if any."""
        return self._ivs.get(id(value))

    def is_induction_phi(self, value: Value) -> bool:
        """Whether ``value`` is the phi of a detected induction variable."""
        return id(value) in self._ivs

    def ivs_in_loop(self, loop: Loop) -> list[InductionVariable]:
        """All IVs whose governing loop is exactly ``loop``."""
        return [iv for iv in self._ivs.values() if iv.loop is loop]

    @property
    def all(self) -> list[InductionVariable]:
        """Every detected induction variable."""
        return list(self._ivs.values())


def _is_loop_invariant(value: Value, loop: Loop) -> bool:
    if isinstance(value, (Constant, Argument)):
        return True
    if isinstance(value, Instruction):
        return value.parent is not None and value.parent not in loop.blocks
    return False


def _match_basic_iv(phi: Phi, loop: Loop) -> InductionVariable | None:
    if len(phi.incoming) != 2:
        return None
    init = None
    update_value = None
    for value, pred in phi.incoming:
        if pred in loop.blocks:
            update_value = value
        else:
            init = value
    if init is None or update_value is None:
        return None
    if not _is_loop_invariant(init, loop):
        return None
    if not isinstance(update_value, BinOp):
        return None
    if update_value.opcode not in ("add", "sub"):
        return None
    # Match i +/- C where one operand is the phi and the other a constant.
    step: int | None = None
    if update_value.opcode == "add":
        if update_value.lhs is phi and isinstance(update_value.rhs, Constant):
            step = update_value.rhs.value
        elif update_value.rhs is phi and isinstance(update_value.lhs,
                                                    Constant):
            step = update_value.lhs.value
    else:  # sub
        if update_value.lhs is phi and isinstance(update_value.rhs, Constant):
            step = -update_value.rhs.value
    if step is None or step == 0:
        return None
    return InductionVariable(phi=phi, loop=loop, init=init, step=step,
                             update=update_value)


#: Comparison predicates keyed by (predicate, exits_on_false) describing
#: whether the bound is inclusive for an increasing IV.
_INCREASING_CONTINUE = {"slt": False, "sle": True, "ult": False, "ule": True,
                        "ne": False}
_DECREASING_CONTINUE = {"sgt": False, "sge": True, "ugt": False, "uge": True,
                        "ne": False}


def _derive_bound(iv: InductionVariable) -> IVBound | None:
    branch = iv.loop.single_exit_condition
    if not isinstance(branch, Branch):
        return None
    cond = branch.condition
    if not isinstance(cond, Cmp):
        return None
    # Determine which side mentions the IV (either the phi or its update).
    lhs, rhs, predicate = cond.lhs, cond.rhs, cond.predicate
    iv_values = (iv.phi, iv.update)
    if lhs in iv_values:
        other = rhs
    elif rhs in iv_values:
        other = lhs
        predicate = _swap_predicate(predicate)
    else:
        return None
    if not _is_loop_invariant(other, iv.loop):
        return None
    # Normalise so that the predicate describes the *continue* condition.
    continues_in_loop = branch.then_block in iv.loop.blocks
    if not continues_in_loop:
        predicate = _negate_predicate(predicate)
    table = _INCREASING_CONTINUE if iv.is_increasing else _DECREASING_CONTINUE
    if predicate not in table:
        return None
    inclusive = table[predicate]
    if predicate == "ne":
        # i != n continues: the last body value is n - step.
        inclusive = False
    return IVBound(value=other, inclusive=inclusive)


def _swap_predicate(predicate: str) -> str:
    swap = {"slt": "sgt", "sle": "sge", "sgt": "slt", "sge": "sle",
            "ult": "ugt", "ule": "uge", "ugt": "ult", "uge": "ule",
            "eq": "eq", "ne": "ne"}
    return swap.get(predicate, predicate)


def _negate_predicate(predicate: str) -> str:
    neg = {"slt": "sge", "sle": "sgt", "sgt": "sle", "sge": "slt",
           "ult": "uge", "ule": "ugt", "ugt": "ule", "uge": "ult",
           "eq": "ne", "ne": "eq"}
    return neg.get(predicate, predicate)
