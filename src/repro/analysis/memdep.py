"""Loop memory-dependence checks used for fault avoidance (§4.2).

The prefetch pass duplicates loads to compute future addresses.  That is
only safe when the loop contains no stores to the data structures those
loads read: otherwise the value loaded at look-ahead time could differ
from the value the original load will see, producing a wild (potentially
faulting) intermediate address.  This module provides the conservative
may-alias reasoning behind that check.
"""

from __future__ import annotations

from ..ir.instructions import Instruction, Load, Store
from ..ir.values import Value
from .allocsize import underlying_object
from .loops import Loop


def stores_in_loop(loop: Loop) -> list[Store]:
    """Every store instruction inside the loop (including nested blocks)."""
    result = []
    for block in loop.blocks:
        for inst in block:
            if isinstance(inst, Store):
                result.append(inst)
    return result


def may_alias(ptr_a: Value, ptr_b: Value) -> bool:
    """Conservative may-alias test on two pointers.

    Pointers provably derived from distinct allocations do not alias, and
    an allocation never aliases an argument that predates it.  Two
    distinct *arguments* are conservatively assumed to alias — C callers
    may pass overlapping pointers — unless at least one is annotated
    ``noalias`` (the C ``restrict`` idiom).  Anything unresolved is
    assumed to alias.
    """
    from ..ir.instructions import Alloc
    from ..ir.values import Argument

    obj_a = underlying_object(ptr_a)
    obj_b = underlying_object(ptr_b)
    if obj_a is None or obj_b is None:
        return True
    if obj_a is obj_b:
        return True
    # Distinct allocations never alias; an allocation never aliases an
    # argument that existed before it.
    if isinstance(obj_a, Alloc) or isinstance(obj_b, Alloc):
        return False
    if (isinstance(obj_a, Argument) and obj_a.noalias) or \
            (isinstance(obj_b, Argument) and obj_b.noalias):
        return False
    return True  # two different plain arguments might overlap


def loop_may_clobber(loop: Loop, load: Load) -> bool:
    """Whether any store in ``loop`` may write the array ``load`` reads."""
    for store in stores_in_loop(loop):
        if may_alias(store.ptr, load.ptr):
            return True
    return False


def loads_clobbered_in_loop(loop: Loop,
                            loads: list[Load]) -> list[Load]:
    """Subset of ``loads`` whose source arrays may be stored to in the loop."""
    stores = stores_in_loop(loop)
    clobbered = []
    for load in loads:
        if any(may_alias(store.ptr, load.ptr) for store in stores):
            clobbered.append(load)
    return clobbered
