"""Static analyses over the repro IR.

Provides CFG orderings and dominators, natural-loop detection, induction
variable discovery, data-dependence walking, allocation-size discovery,
loop memory-dependence checks, and call-graph purity — everything the
prefetch pass of :mod:`repro.passes.prefetch` consumes.
"""

from .allocsize import (ArrayBound, known_array_bound, static_array_bound,
                        underlying_object)
from .cfg import (dominance_frontiers, dominates, dominators,
                  instruction_dominates, predecessor_map, reverse_postorder,
                  successor_map)
from .ddg import (depends_on, iter_loads, loads_in_closure, operands_of,
                  phis_in_closure, transitive_inputs)
from .induction import (InductionAnalysis, InductionVariable, IVBound)
from .loops import Loop, LoopInfo
from .memdep import (loads_clobbered_in_loop, loop_may_clobber, may_alias,
                     stores_in_loop)
from .sideeffects import SideEffectAnalysis

__all__ = [
    "ArrayBound", "known_array_bound", "static_array_bound",
    "underlying_object",
    "dominance_frontiers", "dominates", "dominators",
    "instruction_dominates", "predecessor_map", "reverse_postorder",
    "successor_map",
    "depends_on", "iter_loads", "loads_in_closure", "operands_of",
    "phis_in_closure", "transitive_inputs",
    "InductionAnalysis", "InductionVariable", "IVBound",
    "Loop", "LoopInfo",
    "loads_clobbered_in_loop", "loop_may_clobber", "may_alias",
    "stores_in_loop",
    "SideEffectAnalysis",
]
