"""Data-dependence utilities over the SSA use-def graph.

SSA already encodes register dataflow directly in operand references; this
module provides the walking helpers used by the prefetch pass's depth-first
search and by tests.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..ir.instructions import Instruction, Load, Phi
from ..ir.values import Value


def operands_of(value: Value) -> list[Value]:
    """The SSA operands of ``value`` (empty for non-instructions)."""
    if isinstance(value, Instruction):
        return value.operands
    return []


def transitive_inputs(root: Value,
                      stop: Callable[[Value], bool] | None = None
                      ) -> list[Instruction]:
    """All instructions in the transitive input closure of ``root``.

    :param stop: optional predicate; when it returns true for a value the
        walk does not continue through that value's operands (the value
        itself is still included if it is an instruction).
    """
    result: list[Instruction] = []
    seen: set[int] = set()
    stack = list(operands_of(root))
    if isinstance(root, Instruction):
        pass  # root itself is not part of its own inputs
    while stack:
        value = stack.pop()
        if id(value) in seen:
            continue
        seen.add(id(value))
        if isinstance(value, Instruction):
            result.append(value)
            if stop is None or not stop(value):
                stack.extend(value.operands)
    return result


def loads_in_closure(root: Value) -> list[Load]:
    """The load instructions within the transitive input closure."""
    return [v for v in transitive_inputs(root) if isinstance(v, Load)]


def depends_on(value: Value, target: Value) -> bool:
    """Whether ``value`` transitively depends on ``target`` through SSA."""
    if value is target:
        return True
    return any(v is target for v in transitive_inputs(value))


def iter_loads(func) -> Iterator[Load]:
    """Yield every load instruction of a function in program order."""
    for inst in func.instructions():
        if isinstance(inst, Load):
            yield inst


def phis_in_closure(root: Value) -> list[Phi]:
    """The phi nodes within the transitive input closure of ``root``."""
    return [v for v in transitive_inputs(root) if isinstance(v, Phi)]
