"""Allocation-size discovery (§4.2 of the paper).

Given a pointer, walk backwards through the address computation to the
underlying object.  If the object is an ``alloc`` instruction, its element
count bounds valid indices; if it is a function argument annotated with an
``array_size`` companion argument (the C idiom of passing a pointer plus a
length), that argument is the bound.  Otherwise the size is unknown and
the prefetch pass must fall back to the loop-trip bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.instructions import Alloc, Cast, GEP, Instruction, Phi, Select
from ..ir.values import Argument, Constant, Value


@dataclass
class ArrayBound:
    """A known element count for the array behind a pointer.

    :ivar count: IR value holding the number of elements.
    :ivar source: ``"alloc"`` when derived from an allocation,
        ``"argument"`` when from an annotated argument.
    """

    count: Value
    source: str


def underlying_object(ptr: Value, _depth: int = 0) -> Value | None:
    """The allocation or argument a pointer value is derived from.

    Walks through ``gep`` bases, pointer selects, and pointer casts.
    Returns ``None`` when the walk is ambiguous (e.g. a pointer phi with
    different underlying objects).
    """
    if _depth > 64:
        return None
    if isinstance(ptr, (Alloc, Argument)):
        return ptr
    if isinstance(ptr, GEP):
        return underlying_object(ptr.base, _depth + 1)
    if isinstance(ptr, Cast):
        return underlying_object(ptr.value, _depth + 1)
    if isinstance(ptr, Select):
        a = underlying_object(ptr.true_value, _depth + 1)
        b = underlying_object(ptr.false_value, _depth + 1)
        return a if a is b else None
    if isinstance(ptr, Phi):
        objects = {id(underlying_object(v, _depth + 1))
                   for v, _ in ptr.incoming}
        if len(objects) == 1:
            return underlying_object(ptr.incoming[0][0], _depth + 1)
        return None
    return None


def known_array_bound(ptr: Value) -> ArrayBound | None:
    """The element count of the array behind ``ptr``, if discoverable."""
    obj = underlying_object(ptr)
    if isinstance(obj, Alloc):
        return ArrayBound(count=obj.count, source="alloc")
    if isinstance(obj, Argument) and obj.array_size is not None:
        return ArrayBound(count=obj.array_size, source="argument")
    return None


def static_array_bound(ptr: Value) -> int | None:
    """The compile-time element count behind ``ptr``, if it is constant."""
    bound = known_array_bound(ptr)
    if bound is not None and isinstance(bound.count, Constant):
        return bound.count.value
    return None
