"""Side-effect (purity) analysis over the call graph.

The paper's pass rejects prefetch candidates whose address computation
contains function calls, noting that "side-effect-free function calls
could be permitted" as an extension.  This analysis implements that
extension: a function is pure when it contains no stores, no allocations,
and only calls to other pure functions.  Functions explicitly created with
``pure=True`` are trusted.
"""

from __future__ import annotations

from ..ir.function import Function
from ..ir.instructions import Alloc, Call, Prefetch, Store
from ..ir.module import Module


class SideEffectAnalysis:
    """Computes purity for every function in a module via a fixed point."""

    def __init__(self, module: Module):
        self.module = module
        self._pure: dict[str, bool] = {}
        self._compute()

    def _compute(self) -> None:
        # Optimistic fixed point: assume pure, then strike out functions
        # with direct effects or calls to impure functions until stable.
        for func in self.module.functions:
            self._pure[func.name] = True
        for func in self.module.functions:
            if func.pure:
                continue  # trusted annotation
            if self._has_direct_effects(func):
                self._pure[func.name] = False
        changed = True
        while changed:
            changed = False
            for func in self.module.functions:
                if not self._pure[func.name] or func.pure:
                    continue
                for inst in func.instructions():
                    if isinstance(inst, Call) and \
                            not self._pure.get(inst.callee.name, False):
                        self._pure[func.name] = False
                        changed = True
                        break

    @staticmethod
    def _has_direct_effects(func: Function) -> bool:
        for inst in func.instructions():
            if isinstance(inst, (Store, Alloc, Prefetch)):
                return True
        return False

    def is_pure(self, func: Function) -> bool:
        """Whether ``func`` is side-effect free."""
        return self._pure.get(func.name, func.pure)

    def call_is_safe_to_duplicate(self, call: Call) -> bool:
        """Whether duplicating ``call`` for prefetch address generation
        cannot introduce side effects."""
        return self.is_pure(call.callee)
