"""Remark serialization: schema-tagged JSON stream, parser, renderer.

The wire form is JSON-lines: a header object tagging the schema,
followed by one compact JSON object per remark, in emission order::

    {"schema": "repro-remarks-v1"}
    {"kind": "passed", "pass": "indirect-prefetch", "name": ...}
    ...

Emission order is deterministic (it follows module/function/candidate
iteration order), so two compilations of the same input produce
byte-identical streams apart from wall-clock args — which
:func:`canonical_stream` zeroes for determinism comparisons.  The
parser preserves key order, making ``dumps_stream(parse_stream(s)) ==
s`` exact (the round-trip contract the tests pin).
"""

from __future__ import annotations

import json

from .remark import (KINDS, KNOWN_REMARKS, Remark, VOLATILE_ARG_KEYS)

#: Schema tag of the remark stream format.
SCHEMA = "repro-remarks-v1"


def remark_to_dict(remark: Remark) -> dict:
    """The JSON object form of one remark (fixed key order)."""
    out: dict = {
        "kind": remark.kind,
        "pass": remark.pass_name,
        "name": remark.name,
    }
    if remark.function:
        out["function"] = remark.function
    if remark.prefetch_id is not None:
        out["prefetch_id"] = remark.prefetch_id
    out["args"] = {k: v for k, v in remark.args}
    return out


def remark_from_dict(data: dict) -> Remark:
    """Rebuild a :class:`Remark` from its JSON object form."""
    validate_remark_dict(data)
    return Remark(kind=data["kind"], pass_name=data["pass"],
                  name=data["name"],
                  function=data.get("function", ""),
                  args=tuple(data.get("args", {}).items()),
                  prefetch_id=data.get("prefetch_id"))


def validate_remark_dict(data: dict) -> None:
    """Raise ``ValueError`` unless ``data`` is a well-formed remark.

    Enforced: required string fields, a known kind, a registered name
    (unknown names mean the producer and this consumer disagree about
    the schema — fail loudly), and a dict of args.
    """
    if not isinstance(data, dict):
        raise ValueError(f"remark must be an object, got {data!r}")
    for field in ("kind", "pass", "name"):
        if not isinstance(data.get(field), str):
            raise ValueError(f"remark missing string field {field!r}: "
                             f"{data!r}")
    if data["kind"] not in KINDS:
        raise ValueError(f"unknown remark kind {data['kind']!r}")
    if data["name"] not in KNOWN_REMARKS:
        raise ValueError(f"unknown remark name {data['name']!r}")
    if not isinstance(data.get("args", {}), dict):
        raise ValueError(f"remark args must be an object: {data!r}")


def _dump_line(obj: dict) -> str:
    return json.dumps(obj, separators=(",", ":"), sort_keys=False)


def dumps_stream(remarks: list[Remark]) -> str:
    """Serialise remarks to the JSON-lines stream (with header)."""
    lines = [_dump_line({"schema": SCHEMA})]
    lines.extend(_dump_line(remark_to_dict(r)) for r in remarks)
    return "\n".join(lines) + "\n"


def parse_stream(text: str) -> list[Remark]:
    """Parse a stream produced by :func:`dumps_stream`.

    Validates the schema header and every remark line; raises
    ``ValueError`` on an unknown schema, kind, or remark name.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty remark stream")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or header.get("schema") != SCHEMA:
        raise ValueError(f"bad remark stream header: {lines[0]!r}")
    return [remark_from_dict(json.loads(line)) for line in lines[1:]]


def canonical_stream(text: str) -> str:
    """The stream with volatile (wall-clock) args zeroed.

    Two compilations of the same input must produce identical canonical
    streams; the CI determinism check compares these bytes.
    """
    out = []
    for line in text.splitlines():
        if not line.strip():
            continue
        obj = json.loads(line)
        args = obj.get("args")
        if isinstance(args, dict):
            for key in VOLATILE_ARG_KEYS:
                if key in args:
                    args[key] = 0
        out.append(_dump_line(obj))
    return "\n".join(out) + "\n"


def render_remarks(remarks: list[Remark], title: str = "") -> str:
    """Human-readable rendering, one line per remark."""
    lines = [title] if title else []
    lines.extend(r.message for r in remarks)
    return "\n".join(lines) if lines else "(no remarks)"
