"""Join compile-time remarks with runtime prefetch outcomes.

The ``repro explain`` pipeline, per workload:

1. build the prefetched variant **with remarks collected** — the passes
   behave identically, so the module is byte-identical to an uncollected
   :meth:`~repro.workloads.base.Workload.build_variant` and the run
   cache and PC assignment line up;
2. predict each prefetch's runtime PC from its stable ``remark_id``
   (:func:`repro.machine.interpreter.static_prefetch_pcs`);
3. run ``plain`` and the variant with telemetry on (same order as the
   effectiveness report, so inputs are identical to those runs);
4. join every ``PrefetchInserted`` / ``PrefetchHoisted`` /
   ``BaselinePrefetchInserted`` remark to the run's per-PC outcome bins.

Imported on demand (not from :mod:`repro.remarks` itself) because it
depends on :mod:`repro.bench`, which imports back into telemetry.
"""

from __future__ import annotations

from ..bench.reporting import format_table
from ..bench.runner import RunSpec, run_specs
from ..machine.configs import ALL_SYSTEMS, MachineConfig
from ..machine.interpreter import static_prefetch_pcs
from ..telemetry.outcomes import OUTCOMES
from ..workloads.base import Workload
from .emitter import RemarkEmitter, collecting
from .serialize import dumps_stream, remark_to_dict

#: Remark names that announce an inserted prefetch (carry a
#: ``prefetch_id``).
INSERTION_REMARKS = ("PrefetchInserted", "PrefetchHoisted",
                     "BaselinePrefetchInserted")

#: Columns of the rendered per-prefetch join table.  "Vec" is the
#: number of the PC's prefetches whose outcome classification happened
#: inside the vectorized batch tier (``REPRO_SIM_VECTOR=1``; "-" when
#: the run never batched that PC).
COLUMNS = ["Prefetch", "PC", "Covered", "Offset", "Timely", "Late",
           "Early", "Redundant", "Dropped", "Unused", "Vec"]


def collect_remarks(workload: Workload, variant: str = "auto",
                    lookahead: int = 64, options=None) -> tuple:
    """Build ``variant`` with remarks on; returns (module, emitter)."""
    emitter = RemarkEmitter()
    with collecting(emitter):
        module = workload.build_variant(variant, lookahead=lookahead,
                                        options=options)
    return module, emitter


def explain_workload(workload: Workload, machine: MachineConfig,
                     plain_result, variant_result,
                     variant: str = "auto", lookahead: int = 64,
                     options=None) -> dict:
    """The compile-time ⋈ runtime join for one already-run workload.

    ``plain_result`` / ``variant_result`` are the telemetry-enabled
    :class:`~repro.bench.runner.VariantResult` rows of the same
    (workload, machine, variant, lookahead) combination.
    """
    module, emitter = collect_remarks(workload, variant,
                                      lookahead=lookahead,
                                      options=options)
    pcs = static_prefetch_pcs(module, workload.entry)
    telemetry = variant_result.telemetry or {}
    per_pc = telemetry.get("prefetch", {}).get("per_pc", {})
    vector_pcs = telemetry.get("vector", {}).get("per_pc", {})
    prefetches = []
    for remark in emitter.remarks:
        if remark.name not in INSERTION_REMARKS:
            continue
        pc = pcs.get(remark.prefetch_id)
        bins = (per_pc.get(str(pc)) if pc is not None else None)
        vbins = (vector_pcs.get(str(pc)) if pc is not None else None)
        prefetches.append({
            "prefetch_id": remark.prefetch_id,
            "function": remark.function,
            "pc": pc,
            "kind": remark.name,
            "remark": remark_to_dict(remark),
            "outcomes": dict(bins) if bins is not None
            else {o: 0 for o in OUTCOMES},
            "observed": bins is not None,
            "vector": dict(vbins) if vbins is not None else None,
        })
    return {
        "workload": workload.name,
        "machine": machine.name,
        "variant": variant,
        "lookahead": lookahead,
        "entry": workload.entry,
        "speedup": (plain_result.cycles / variant_result.cycles
                    if variant_result.cycles else 0.0),
        "issued": telemetry.get("prefetch", {}).get("issued", 0),
        "num_remarks": len(emitter),
        "remarks_stream": dumps_stream(emitter.remarks),
        "prefetches": prefetches,
    }


def explain_rows(workloads: list[Workload],
                 machines: tuple[MachineConfig, ...] = ALL_SYSTEMS,
                 variant: str = "auto", lookahead: int = 64,
                 options=None, jobs: int | None = None,
                 cache=None) -> list[dict]:
    """One join row per (workload, machine).

    Runs ``plain`` and ``variant`` with telemetry on, in the exact spec
    order of :func:`repro.telemetry.report.effectiveness_rows`, so both
    reports see identical inputs (``prepare`` draws from each workload
    instance's RNG in submission order).
    """
    specs = []
    for workload in workloads:
        for machine in machines:
            specs.append(RunSpec(workload, "plain", machine,
                                 lookahead=lookahead, telemetry=True))
            specs.append(RunSpec(workload, variant, machine,
                                 lookahead=lookahead, options=options,
                                 telemetry=True))
    results = iter(run_specs(specs, jobs=jobs, cache=cache))
    rows = []
    for workload in workloads:
        for machine in machines:
            plain, pref = next(results), next(results)
            rows.append(explain_workload(
                workload, machine, plain, pref, variant=variant,
                lookahead=lookahead, options=options))
    return rows


def render_explain(rows: list[dict]) -> str:
    """The join rows as aligned text tables, one per workload."""
    out = []
    for row in rows:
        title = (f"{row['workload']} on {row['machine']} "
                 f"({row['variant']}, c={row['lookahead']}): "
                 f"speedup {row['speedup']:.2f}x, "
                 f"{len(row['prefetches'])} prefetches, "
                 f"{row['num_remarks']} remarks")
        body = []
        for pf in row["prefetches"]:
            remark = pf["remark"]
            args = remark.get("args", {})
            bins = pf["outcomes"]
            body.append([
                pf["prefetch_id"],
                pf["pc"] if pf["pc"] is not None else "?",
                args.get("covered_load", args.get("load", "")),
                args.get("offset", ""),
                bins.get("timely", 0), bins.get("late", 0),
                bins.get("early", 0), bins.get("redundant", 0),
                bins.get("dropped", 0), bins.get("unused", 0),
                (pf["vector"]["prefetches"] if pf.get("vector")
                 else "-"),
            ])
        out.append(format_table(COLUMNS, body, title))
    return "\n\n".join(out)


def report_dict(rows: list[dict]) -> dict:
    """The rows wrapped in a schema-tagged, JSON-serialisable report."""
    return {"schema": "repro-explain-v1", "rows": rows}
