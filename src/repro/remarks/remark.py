"""The remark model: one structured record per optimization decision.

A :class:`Remark` is the repro analogue of LLVM's ``-Rpass`` /
``--save-opt-record`` YAML remarks: a pass states *what* it did (or
declined to do) to *which* IR entity and *why*, in a machine-readable
form.  Remarks are append-only observations — emitting them never
changes what a pass does.

Four kinds, mirroring LLVM's taxonomy plus a warning channel:

* ``passed`` — a transformation was applied;
* ``missed`` — a candidate was considered and rejected;
* ``analysis`` — neutral bookkeeping (pass timing, IR-size deltas);
* ``warning`` — a configuration or environment problem was tolerated.

Every remark ``name`` must be registered in :data:`KNOWN_REMARKS`; the
serializer's validator rejects unknown names so a schema drift between
emitters and consumers fails loudly (the CI contract).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Remark kinds (LLVM's passed/missed/analysis, plus warnings).
PASSED = "passed"
MISSED = "missed"
ANALYSIS = "analysis"
WARNING = "warning"
KINDS = (PASSED, MISSED, ANALYSIS, WARNING)

#: Registry of every remark name any pass may emit, with a one-line
#: meaning.  The serializer validates against this set.
KNOWN_REMARKS: dict[str, str] = {
    # Pass-manager instrumentation.
    "PassExecuted": "one pass ran: wall time and IR-size deltas",
    # The indirect-prefetch pass (Algorithm 1).
    "PrefetchChainAccepted":
        "a load chain passed DFS + legality and will be prefetched",
    "PrefetchInserted":
        "one prefetch instruction emitted, with its eq. (1) inputs",
    "PrefetchRejected":
        "a candidate load was rejected, with the RejectReason",
    "PrefetchSubsumed":
        "a chain was dropped because a longer chain covers its loads",
    "PrefetchHoisted":
        "a rejected load's prefetch was hoisted to the inner-loop "
        "preheader (§4.6)",
    "PrefetchHoistRejected":
        "§4.6 hoisting was attempted for a rejected load and declined",
    # The ICC-like comparator pass.
    "BaselinePrefetchInserted":
        "the stride-indirect baseline matched B[A[i]] and prefetched",
    "BaselineSkipped":
        "the stride-indirect baseline declined a load, with the reason",
    # Cleanup passes.
    "LoopInvariantHoisted": "LICM moved an instruction to a preheader",
    "RedundantExpressionEliminated":
        "CSE replaced an instruction with a dominating equivalent",
    "DeadInstructionRemoved": "DCE deleted an unused instruction",
    "ConstantFolded": "constant folding replaced an instruction",
    "SlotPromoted": "mem2reg promoted a stack slot to SSA registers",
    "BlockMerged": "simplifycfg absorbed a single-predecessor block",
    "ForwardingBlockRemoved": "simplifycfg bypassed an empty jmp block",
    "UnreachableBlockRemoved": "simplifycfg deleted a dead block",
    # The trace-JIT execution tier (repro.machine.tracejit).
    "TraceCompiled":
        "a hot loop path was compiled to a specialized trace closure",
    "TraceDeopt":
        "a trace recording was abandoned or a compiled trace was "
        "invalidated, with the reason",
    # The vectorized batch tier (repro.machine.vectorsim).
    "VectorBatchCompiled":
        "a hot trace's address stream was proven dependence-free and "
        "compiled to a vectorized batch driver",
    "VectorDeopt":
        "a trace was rejected for vectorization (plan) or a batch "
        "guard failed at run time, with the reason",
    # Runtime configuration warnings.
    "TelemetryRingClamped":
        "REPRO_SIM_TELEMETRY_RING was invalid and a fallback was used",
    "TimelineWindowClamped":
        "REPRO_SIM_TIMELINE_WINDOW was invalid and a fallback was used",
    "TraceJitThresholdClamped":
        "REPRO_SIM_TRACEJIT_THRESHOLD was invalid and a fallback was "
        "used",
    "EnvVarClamped":
        "an integer REPRO_* environment variable was invalid and a "
        "fallback was used (see repro.envcfg.env_int)",
}

#: Arg keys whose values are wall-clock measurements and therefore vary
#: run to run; determinism checks canonicalise them to 0.
VOLATILE_ARG_KEYS = ("wall_us",)

#: JSON scalar types allowed as remark argument values.
_SCALARS = (str, int, float, bool, type(None))


def _norm_value(value):
    """Normalise an arg value to the JSON-stable subset.

    Scalars pass through; tuples/lists become lists of scalars; enums
    and IR values must be stringified by the caller (remarks never hold
    live IR references — they outlive the module they describe).
    """
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_norm_value(v) for v in value]
    raise TypeError(
        f"remark arg values must be JSON scalars or lists, got "
        f"{type(value).__name__}: {value!r}")


@dataclass(frozen=True)
class Remark:
    """One optimization remark.

    :ivar kind: one of :data:`KINDS`.
    :ivar pass_name: the emitting pass's ``name`` attribute.
    :ivar name: registered remark name (see :data:`KNOWN_REMARKS`).
    :ivar function: enclosing IR function name ("" for module scope).
    :ivar args: ordered (key, value) pairs of JSON scalars/lists; the
        order is part of the serialised form.
    :ivar prefetch_id: stable ID of the prefetch instruction this remark
        describes (``pf:<function>:<n>``), when it describes one.  The
        join layer maps these to runtime PCs.
    """

    kind: str
    pass_name: str
    name: str
    function: str = ""
    args: tuple[tuple[str, object], ...] = field(default_factory=tuple)
    prefetch_id: str | None = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown remark kind {self.kind!r}")
        if self.name not in KNOWN_REMARKS:
            raise ValueError(f"unregistered remark name {self.name!r}")
        object.__setattr__(
            self, "args",
            tuple((str(k), _norm_value(v)) for k, v in self.args))

    def arg(self, key: str, default=None):
        """The value of the first arg named ``key``."""
        for k, v in self.args:
            if k == key:
                return v
        return default

    @property
    def message(self) -> str:
        """Compact human-readable one-liner."""
        where = f" @{self.function}" if self.function else ""
        pid = f" [{self.prefetch_id}]" if self.prefetch_id else ""
        rendered = ", ".join(f"{k}={v!r}" for k, v in self.args)
        body = f" {{{rendered}}}" if rendered else ""
        return (f"{self.kind}: {self.pass_name}: {self.name}"
                f"{where}{pid}{body}")
