"""Remark collection: the emitter object and the active-emitter scope.

Passes do not take an emitter parameter — they call the module-level
:func:`emit`, which is a no-op unless an emitter has been installed
with :func:`collecting` (or by an instrumented
:class:`~repro.passes.pass_manager.PassManager`).  This keeps every
pass's hot path free of remark plumbing when remarks are off: the only
cost is one global read per candidate event.

Usage::

    from repro.remarks import RemarkEmitter, collecting

    emitter = RemarkEmitter()
    with collecting(emitter):
        IndirectPrefetchPass(options).run(module)
    for remark in emitter:
        print(remark.message)
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from .remark import Remark

#: Stack of installed emitters; the innermost scope receives remarks.
_ACTIVE: list["RemarkEmitter"] = []


class RemarkEmitter:
    """An append-only sink of :class:`Remark` records."""

    def __init__(self):
        self.remarks: list[Remark] = []

    def add(self, remark: Remark) -> Remark:
        """Record one remark."""
        self.remarks.append(remark)
        return remark

    def __len__(self) -> int:
        return len(self.remarks)

    def __iter__(self) -> Iterator[Remark]:
        return iter(self.remarks)

    # -- filtering helpers ---------------------------------------------

    def by_name(self, name: str) -> list[Remark]:
        """All remarks with the given registered name."""
        return [r for r in self.remarks if r.name == name]

    def by_pass(self, pass_name: str) -> list[Remark]:
        """All remarks emitted by one pass."""
        return [r for r in self.remarks if r.pass_name == pass_name]

    def by_kind(self, kind: str) -> list[Remark]:
        """All remarks of one kind (passed/missed/analysis/warning)."""
        return [r for r in self.remarks if r.kind == kind]

    def for_prefetch(self, prefetch_id: str) -> list[Remark]:
        """All remarks attached to one stable prefetch ID."""
        return [r for r in self.remarks if r.prefetch_id == prefetch_id]


def active_emitter() -> RemarkEmitter | None:
    """The innermost installed emitter, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def collecting(emitter: RemarkEmitter):
    """Install ``emitter`` as the remark sink for the dynamic extent."""
    _ACTIVE.append(emitter)
    try:
        yield emitter
    finally:
        _ACTIVE.pop()


def emit(kind: str, pass_name: str, name: str, *, function: str = "",
         prefetch_id: str | None = None, **args) -> Remark | None:
    """Emit one remark to the active emitter, if any.

    Keyword-argument order becomes the serialised arg order.  Returns
    the :class:`Remark` when one was recorded, else ``None`` (remarks
    disabled) — callers must not branch on the return value for
    anything but tests, so behaviour is identical either way.
    """
    sink = active_emitter()
    if sink is None:
        return None
    return sink.add(Remark(kind=kind, pass_name=pass_name, name=name,
                           function=function, args=tuple(args.items()),
                           prefetch_id=prefetch_id))
