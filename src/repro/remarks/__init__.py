"""Optimization remarks: the compile-time decision log.

In the spirit of LLVM's ``-Rpass`` / YAML opt-remarks, every pass under
:mod:`repro.passes` emits structured :class:`Remark` records — accepted
prefetch chains with their eq. (1) scheduling inputs, every
``RejectReason`` with the offending instruction and DFS path, clamp
provenance, hoisting decisions, cleanup-pass transformations, and
per-pass wall-time / IR-size instrumentation from the pass manager.

Remarks are purely observational: passes behave identically whether or
not an emitter is installed, and no emitter is installed by default.

Layout:

* :mod:`repro.remarks.remark` — the :class:`Remark` model and the
  registry of known remark names;
* :mod:`repro.remarks.emitter` — :class:`RemarkEmitter` and the
  :func:`collecting` scope that routes :func:`emit` calls to it;
* :mod:`repro.remarks.serialize` — the ``repro-remarks-v1`` JSON-lines
  stream (byte-identical round-trip), validator, human renderer;
* :mod:`repro.remarks.join` — the compile-time ⋈ runtime join behind
  ``repro explain`` (imported on demand; it pulls in the bench
  harness).
"""

from .emitter import RemarkEmitter, active_emitter, collecting, emit
from .remark import (ANALYSIS, KINDS, KNOWN_REMARKS, MISSED, PASSED,
                     Remark, WARNING)
from .serialize import (SCHEMA, canonical_stream, dumps_stream,
                        parse_stream, remark_from_dict, remark_to_dict,
                        render_remarks, validate_remark_dict)

__all__ = [
    "Remark", "RemarkEmitter", "active_emitter", "collecting", "emit",
    "PASSED", "MISSED", "ANALYSIS", "WARNING", "KINDS", "KNOWN_REMARKS",
    "SCHEMA", "canonical_stream", "dumps_stream", "parse_stream",
    "remark_from_dict", "remark_to_dict", "render_remarks",
    "validate_remark_dict",
]
