"""Experiment harness regenerating every table and figure of §6.

See :mod:`repro.bench.experiments` for one entry point per figure and
``benchmarks/`` for the pytest-benchmark drivers that archive results.
"""

from .experiments import (ablation_guard_cost, ablation_scheduling,
                          fig2_prefetch_schemes, fig4_geomeans,
                          fig4_system, fig5_stride_contribution,
                          fig6_lookahead_sweep, fig7_stagger_depth,
                          fig8_instruction_overhead, fig9_bandwidth,
                          fig10_huge_pages, manual_knobs_for, table1_rows,
                          LOOKAHEAD_SWEEP)
from .reporting import format_series, format_table
from .runner import (SpeedupRow, VariantResult, geometric_mean,
                     run_variant, speedup_row)

__all__ = [
    "ablation_guard_cost", "ablation_scheduling",
    "fig2_prefetch_schemes", "fig4_geomeans", "fig4_system",
    "fig5_stride_contribution", "fig6_lookahead_sweep",
    "fig7_stagger_depth", "fig8_instruction_overhead", "fig9_bandwidth",
    "fig10_huge_pages", "manual_knobs_for", "table1_rows",
    "LOOKAHEAD_SWEEP",
    "format_series", "format_table",
    "SpeedupRow", "VariantResult", "geometric_mean", "run_variant",
    "speedup_row",
]
