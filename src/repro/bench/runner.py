"""Experiment runner: workload × variant × machine → cycles and stats.

Every figure's harness funnels through :func:`run_variant` /
:func:`speedup_table`, so results are produced identically everywhere:
fresh memory, fresh module, functional validation of the architectural
results, and cycle counts from the timed interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.configs import MachineConfig
from ..machine.interpreter import Interpreter
from ..machine.memory import Memory
from ..passes.prefetch import PrefetchOptions
from ..workloads.base import Workload


@dataclass
class VariantResult:
    """Measured outcome of one (workload, variant, machine) run."""

    workload: str
    variant: str
    machine: str
    cycles: float
    instructions: int
    loads: int
    prefetches: int
    iterations: int
    l1_hit_rate: float = 0.0
    dram_accesses: int = 0
    tlb_walks: int = 0

    @property
    def cycles_per_iteration(self) -> float:
        """Cycles per loop iteration (workload-defined iteration)."""
        return self.cycles / self.iterations if self.iterations else 0.0


def run_variant(workload: Workload, variant: str, machine: MachineConfig,
                lookahead: int = 64,
                options: PrefetchOptions | None = None,
                validate: bool = True, **manual_knobs) -> VariantResult:
    """Build, execute, and validate one variant on one machine."""
    module = workload.build_variant(variant, lookahead=lookahead,
                                    options=options, **manual_knobs)
    memory = Memory(machine.line_size)
    prepared = workload.prepare(memory)
    interp = Interpreter(module, memory, machine=machine)
    result = interp.run(workload.entry, prepared.args)
    if validate:
        prepared.validate()
    ms = result.memory_system
    return VariantResult(
        workload=workload.name,
        variant=variant,
        machine=machine.name,
        cycles=result.cycles,
        instructions=result.stats.instructions,
        loads=result.stats.loads,
        prefetches=result.stats.prefetches,
        iterations=prepared.iterations,
        l1_hit_rate=ms.l1.stats.hit_rate if ms else 0.0,
        dram_accesses=ms.dram.stats.accesses if ms else 0,
        tlb_walks=ms.tlb.stats.misses if ms else 0)


@dataclass
class SpeedupRow:
    """Speedups of the prefetched variants over plain, for one
    (workload, machine) pair."""

    workload: str
    machine: str
    baseline_cycles: float
    speedups: dict[str, float] = field(default_factory=dict)
    results: dict[str, VariantResult] = field(default_factory=dict)


def speedup_row(workload: Workload, machine: MachineConfig,
                variants: tuple[str, ...] = ("auto", "manual"),
                lookahead: int = 64, **kwargs) -> SpeedupRow:
    """Run plain + the requested variants; returns speedups over plain."""
    plain = run_variant(workload, "plain", machine, lookahead, **kwargs)
    row = SpeedupRow(workload=workload.name, machine=machine.name,
                     baseline_cycles=plain.cycles)
    row.results["plain"] = plain
    for variant in variants:
        result = run_variant(workload, variant, machine, lookahead,
                             **kwargs)
        row.results[variant] = result
        row.speedups[variant] = (plain.cycles / result.cycles
                                 if result.cycles else 0.0)
    return row


def geometric_mean(values: list[float]) -> float:
    """Geometric mean, as the paper uses for its summary speedups."""
    if not values:
        raise ValueError("geometric mean of no values")
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError("geometric mean needs positive values")
        product *= v
    return product ** (1.0 / len(values))
