"""Experiment runner: workload × variant × machine → cycles and stats.

Every figure's harness funnels through :func:`run_variant` /
:func:`speedup_table`, so results are produced identically everywhere:
fresh memory, fresh module, functional validation of the architectural
results, and cycle counts from the timed interpreter.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
from dataclasses import dataclass, field

from ..envcfg import env_int
from ..ir import print_module
from ..machine.configs import MachineConfig
from ..machine.interpreter import Interpreter
from ..machine.memory import Memory
from ..machine.vectorsim import vector_enabled
from ..passes.prefetch import PrefetchOptions
from ..telemetry import telemetry_enabled
from ..telemetry.spans import span
from ..telemetry.timeline import resolve_timeline
from ..workloads.base import Workload
from .cache import RunCache, resolve_run_cache, run_key

#: In-process telemetry: actual simulations vs. cache hits, and total
#: simulated instructions — read by ``tools/bench_perf.py``.
TELEMETRY = {"simulated_runs": 0, "cached_runs": 0,
             "simulated_instructions": 0}


def _make_metrics():
    from ..obs.metrics import SECONDS_BUCKETS, Registry
    registry = Registry()
    runs = registry.counter(
        "repro_bench_runs_total",
        "Bench variant runs by workload, variant, machine, and "
        "whether the disk cache answered.",
        labels=("workload", "variant", "machine", "cached"))
    stages = registry.histogram(
        "repro_bench_stage_seconds",
        "Wall time per bench pipeline stage "
        "(build, prepare, simulate, validate).",
        labels=("stage",), unit="seconds", buckets=SECONDS_BUCKETS)
    return registry, runs, stages


#: In-process labeled metrics over the same registry machinery the
#: serve path exposes (see docs/OBSERVABILITY.md).  ``repro bench
#: --obs-out FILE`` writes the Prometheus text exposition after a run.
METRICS, RUNS_COUNTER, STAGE_SECONDS = _make_metrics()

#: Per-trace rows from trace-JIT runs (``REPRO_SIM_TRACEJIT=1``), each
#: tagged with the run's workload/variant/machine — the raw material of
#: ``repro bench --hot-report``.  In-process only: pooled workers do
#: not propagate their rows back.
TRACE_REPORT: list[dict] = []


def reset_telemetry() -> None:
    """Zero the run telemetry counters and the trace report."""
    for key in TELEMETRY:
        TELEMETRY[key] = 0
    TRACE_REPORT.clear()


@dataclass
class VariantResult:
    """Measured outcome of one (workload, variant, machine) run."""

    workload: str
    variant: str
    machine: str
    cycles: float
    instructions: int
    loads: int
    prefetches: int
    iterations: int
    l1_hit_rate: float = 0.0
    dram_accesses: int = 0
    tlb_walks: int = 0
    #: Telemetry snapshot dict (see docs/TELEMETRY.md) when the run was
    #: made with telemetry enabled; ``None`` otherwise.  JSON-safe, so
    #: it round-trips through the disk cache with the rest of the row.
    telemetry: dict | None = None
    #: Windowed timeline snapshot (``repro-timeline-v1``) when the run
    #: was made with timeline sampling enabled; ``None`` otherwise.
    #: JSON-safe and cached alongside the row, like ``telemetry``.
    timeline: dict | None = None

    @property
    def cycles_per_iteration(self) -> float:
        """Cycles per loop iteration (workload-defined iteration)."""
        return self.cycles / self.iterations if self.iterations else 0.0


def run_variant(workload: Workload, variant: str, machine: MachineConfig,
                lookahead: int = 64,
                options: PrefetchOptions | None = None,
                validate: bool = True,
                cache: RunCache | bool | None = None,
                telemetry: bool | None = None,
                timeline=None,
                **manual_knobs) -> VariantResult:
    """Build, execute, and validate one variant on one machine.

    :param cache: a :class:`RunCache`, ``True``/``False`` to force the
        disk cache on/off, or ``None`` to follow ``REPRO_SIM_CACHE``.
        On a hit, ``prepare`` still runs (it advances the workload's
        RNG, keeping later runs' inputs — and cache keys — identical to
        an uncached sequence) but simulation and validation are skipped.
    :param telemetry: force prefetch/cycle telemetry on or off for this
        run (``None`` = follow ``REPRO_SIM_TELEMETRY``).  Telemetry
        never changes the measured cycles; it adds the snapshot dict to
        the result (and to the run's cache key, so telemetry-on and
        telemetry-off entries never alias).
    :param timeline: a :class:`~repro.telemetry.TimelineRecorder`,
        ``True``/``False``, or ``None`` to follow
        ``REPRO_SIM_TIMELINE``.  Like telemetry, sampling never changes
        the measured cycles; the ``repro-timeline-v1`` snapshot rides
        the result (and the cache key) the same way.
    """
    import time as _time

    def _staged(stage, start):
        STAGE_SECONDS.labels(stage=stage).observe(
            _time.perf_counter() - start)

    def _finished(cached: bool):
        RUNS_COUNTER.labels(workload=workload.name, variant=variant,
                            machine=machine.name,
                            cached="true" if cached else "false").inc()

    with span("bench", "run_variant", workload=workload.name,
              variant=variant, machine=machine.name) as job:
        t0 = _time.perf_counter()
        with span("bench", "build", workload=workload.name,
                  variant=variant):
            module = workload.build_variant(
                variant, lookahead=lookahead, options=options,
                **manual_knobs)
        _staged("build", t0)
        run_cache = resolve_run_cache(cache)
        with_telemetry = telemetry_enabled(telemetry)
        recorder = resolve_timeline(timeline)
        hit = key = None
        if run_cache is not None:
            # Keyed before prepare(): the RNG state at this point, plus
            # the built IR, pin down the run's inputs exactly.
            key = run_key(print_module(module), machine, workload,
                          validate, telemetry=with_telemetry,
                          timeline=recorder is not None,
                          vector=vector_enabled(None))
            hit = run_cache.get(key)
        memory = Memory(machine.line_size)
        t0 = _time.perf_counter()
        with span("bench", "prepare", workload=workload.name):
            prepared = workload.prepare(memory)
        _staged("prepare", t0)
        if hit is not None:
            try:
                out = VariantResult(**hit)
            except TypeError:
                # A row written by an incompatible schema (stale entry
                # surviving a code-hash collision, or a hand-edited
                # file) is a miss, not a crash.
                hit = None
            else:
                job["cached"] = True
                TELEMETRY["cached_runs"] += 1
                _finished(cached=True)
                return out
        job["cached"] = False
        interp = Interpreter(module, memory, machine=machine,
                             telemetry=with_telemetry,
                             timeline=recorder)
        t0 = _time.perf_counter()
        with span("bench", "simulate", workload=workload.name,
                  variant=variant, machine=machine.name):
            result = interp.run(workload.entry, prepared.args)
        _staged("simulate", t0)
        if validate:
            t0 = _time.perf_counter()
            with span("bench", "validate", workload=workload.name):
                prepared.validate()
            _staged("validate", t0)
        _finished(cached=False)
        ms = result.memory_system
        out = VariantResult(
            workload=workload.name,
            variant=variant,
            machine=machine.name,
            cycles=result.cycles,
            instructions=result.stats.instructions,
            loads=result.stats.loads,
            prefetches=result.stats.prefetches,
            iterations=prepared.iterations,
            l1_hit_rate=ms.l1.stats.hit_rate if ms else 0.0,
            dram_accesses=ms.dram.stats.accesses if ms else 0,
            tlb_walks=ms.tlb.stats.misses if ms else 0,
            telemetry=result.telemetry,
            timeline=result.timeline)
        TELEMETRY["simulated_runs"] += 1
        TELEMETRY["simulated_instructions"] += out.instructions
        if interp.tracejit:
            for row in interp.trace_report():
                row.update(workload=workload.name, variant=variant,
                           machine=machine.name)
                TRACE_REPORT.append(row)
        if run_cache is not None:
            run_cache.put(key, dataclasses.asdict(out))
        return out


@dataclass
class RunSpec:
    """One deferred :func:`run_variant` call, for :func:`run_specs`."""

    workload: Workload
    variant: str
    machine: MachineConfig
    lookahead: int = 64
    options: PrefetchOptions | None = None
    validate: bool = True
    telemetry: bool | None = None
    timeline: bool | None = None
    manual_knobs: dict = field(default_factory=dict)

    def run(self, cache=None) -> VariantResult:
        """Execute this spec."""
        return run_variant(self.workload, self.variant, self.machine,
                           self.lookahead, self.options, self.validate,
                           cache=cache, telemetry=self.telemetry,
                           timeline=self.timeline,
                           **self.manual_knobs)


#: Upper bound on ``REPRO_SIM_JOBS`` — more processes than this is
#: certainly a typo, not a machine.
MAX_JOBS = 4096


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit > ``REPRO_SIM_JOBS`` > available CPUs.

    ``REPRO_SIM_JOBS`` is validated like the other runtime knobs
    (:func:`repro.envcfg.env_int`): a non-integer or negative value
    warns and falls back to autodetection, an absurd one clamps to
    :data:`MAX_JOBS` — never a crash.
    """
    if jobs is None:
        jobs = env_int("REPRO_SIM_JOBS", 0, minimum=0,
                       maximum=MAX_JOBS) or None
    if jobs is None:
        try:
            jobs = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            jobs = os.cpu_count() or 1
    return max(1, jobs)


def _run_group(payload) -> list:
    """Pool worker: run one workload's specs serially, in order."""
    specs, cache = payload
    return [spec.run(cache=cache) for spec in specs]


def run_specs(specs: list[RunSpec], jobs: int | None = None,
              cache: RunCache | bool | None = None) -> list[VariantResult]:
    """Run many specs, fanning out over processes where safe.

    Specs sharing a workload *instance* form a group executed serially
    in submission order (``prepare`` draws from the instance's shared
    RNG, so order determines each run's inputs); distinct instances are
    independent and run in parallel.  Results come back in submission
    order and are bit-identical to a serial :func:`run_variant` loop.
    """
    specs = list(specs)
    jobs = resolve_jobs(jobs)
    groups: dict[int, list[int]] = {}
    for i, spec in enumerate(specs):
        groups.setdefault(id(spec.workload), []).append(i)
    run_cache = resolve_run_cache(cache)
    if jobs <= 1 or len(groups) <= 1 or len(specs) <= 1:
        return [spec.run(cache=run_cache) for spec in specs]
    payloads = [([specs[i] for i in idxs], run_cache)
                for idxs in groups.values()]
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return [spec.run(cache=run_cache) for spec in specs]
    results: list = [None] * len(specs)
    with ctx.Pool(min(jobs, len(payloads))) as pool:
        for idxs, group in zip(groups.values(),
                               pool.map(_run_group, payloads)):
            for i, result in zip(idxs, group):
                results[i] = result
    # Child-side telemetry and in-memory cache entries do not propagate
    # back; disk entries do.
    return results


@dataclass
class SpeedupRow:
    """Speedups of the prefetched variants over plain, for one
    (workload, machine) pair."""

    workload: str
    machine: str
    baseline_cycles: float
    speedups: dict[str, float] = field(default_factory=dict)
    results: dict[str, VariantResult] = field(default_factory=dict)


def speedup_row(workload: Workload, machine: MachineConfig,
                variants: tuple[str, ...] = ("auto", "manual"),
                lookahead: int = 64, **kwargs) -> SpeedupRow:
    """Run plain + the requested variants; returns speedups over plain."""
    plain = run_variant(workload, "plain", machine, lookahead, **kwargs)
    row = SpeedupRow(workload=workload.name, machine=machine.name,
                     baseline_cycles=plain.cycles)
    row.results["plain"] = plain
    for variant in variants:
        result = run_variant(workload, variant, machine, lookahead,
                             **kwargs)
        row.results[variant] = result
        row.speedups[variant] = (plain.cycles / result.cycles
                                 if result.cycles else 0.0)
    return row


def geometric_mean(values: list[float]) -> float:
    """Geometric mean, as the paper uses for its summary speedups."""
    if not values:
        raise ValueError("geometric mean of no values")
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError("geometric mean needs positive values")
        product *= v
    return product ** (1.0 / len(values))
