"""Disk cache of simulation results keyed by run content.

A run is identified by everything that determines its outcome: the
built IR text (which already folds in the variant, look-ahead and pass
options), the machine configuration, the *workload state* at build time
(constructor parameters, input arrays, and the RNG state — ``prepare``
draws from the shared generator, so the same parameters at a different
point in a figure's run sequence hash differently, preserving the
figures' data-generation sequencing), and a hash of the simulator's own
source code so any engine change invalidates everything.

Cache layout: ``<root>/<key[:2]>/<key>.json``, one JSON-serialised
:class:`~repro.bench.runner.VariantResult` per file.  The disk layer is
:class:`repro.serve.cas.ContentStore` — the content-addressed store
shared with ``repro serve`` — so writes are atomic (same-directory temp
file + rename), corrupt or truncated entries read as misses, and
concurrent runner/server processes can share a root; ``repro cache gc``
garbage-collects it.  :class:`RunCache` adds a per-process in-memory
layer on top.

Environment:

* ``REPRO_SIM_CACHE=1`` enables the cache by default for
  :func:`~repro.bench.runner.run_variant` (default: disabled);
* ``REPRO_SIM_CACHE_DIR`` overrides the cache root (default
  ``.sim-cache`` in the working directory).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import numpy as np

from ..serve.cas import ContentStore
from ..telemetry.spans import span

#: Bump when cached-result semantics change without a source change.
ENGINE_VERSION = "1"

_CODE_HASH: str | None = None

#: Package subtrees whose source determines simulation results.
#: ``telemetry`` is included because telemetry snapshots ride inside
#: cached results: a classification change must invalidate them.
_SIM_SOURCES = ("ir", "frontend", "passes", "machine", "workloads",
                "telemetry")


def simulator_code_hash() -> str:
    """Hash of every source file that can affect a run's numbers."""
    global _CODE_HASH
    if _CODE_HASH is None:
        root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256(ENGINE_VERSION.encode())
        for sub in _SIM_SOURCES:
            for path in sorted((root / sub).rglob("*.py")):
                digest.update(path.name.encode())
                digest.update(path.read_bytes())
        _CODE_HASH = digest.hexdigest()
    return _CODE_HASH


def canonical_token(value) -> str:
    """Stable textual form of a (possibly nested) run parameter.

    Arrays hash by content, RNGs by bit-generator state, and arbitrary
    objects (workloads, CSR graphs) by class name + canonicalised
    ``__dict__`` — so two workload instances with equal parameters and
    equal RNG state produce equal tokens.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return repr(value)
    if isinstance(value, np.ndarray):
        body = hashlib.sha256(
            np.ascontiguousarray(value).tobytes()).hexdigest()
        return f"ndarray({value.dtype},{value.shape},{body})"
    if isinstance(value, np.generic):
        return repr(value.item())
    if isinstance(value, np.random.Generator):
        state = json.dumps(value.bit_generator.state, sort_keys=True,
                           default=repr)
        return f"rng({state})"
    if isinstance(value, dict):
        items = sorted(value.items(), key=lambda kv: repr(kv[0]))
        return "{" + ",".join(
            f"{canonical_token(k)}:{canonical_token(v)}"
            for k, v in items) + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(canonical_token(v) for v in value) + "]"
    if hasattr(value, "__dict__"):
        return (f"{type(value).__qualname__}"
                f"({canonical_token(vars(value))})")
    return repr(value)


def run_key(ir_text: str, machine, workload, validate: bool,
            telemetry: bool = False, timeline: bool = False,
            vector: bool = False) -> str:
    """Content hash identifying one simulation run.

    ``ir_text`` is the printed module *after* variant construction, so
    variant / lookahead / pass options / manual knobs are all folded in
    already; ``workload`` is tokenised at its pre-``prepare`` state.
    ``telemetry`` participates because a telemetry-on run carries its
    snapshot inside the cached result — a telemetry-off entry must not
    satisfy a telemetry-on request (it would be silently snapshot-free),
    nor vice versa.  ``timeline`` participates for the same reason (the
    windowed snapshot rides the cached row).  ``vector`` participates
    even though the vectorized tier is bit-identical by contract: a
    tier bug must surface as a diff against reference-tier rows, not be
    silently masked by a cache hit on them (and telemetry snapshots in
    vector-tier rows carry the per-PC vector-attribution section).
    """
    token = "\n".join((
        simulator_code_hash(),
        canonical_token(machine),
        canonical_token(workload),
        repr(validate),
        f"telemetry={telemetry}",
        f"timeline={timeline}",
        f"vector={vector}",
        ir_text,
    ))
    return hashlib.sha256(token.encode()).hexdigest()


class RunCache(ContentStore):
    """Content-addressed store of run results with an in-memory layer.

    The disk behaviour — atomic writes, corrupt-entry tolerance under
    concurrent writers — is inherited from :class:`ContentStore`; this
    class adds the per-process memo and span instrumentation.
    """

    def __init__(self, root: str | os.PathLike):
        super().__init__(root)
        self._mem: dict[str, dict] = {}

    def get(self, key: str) -> dict | None:
        """Cached result dict for ``key``, or ``None`` (corrupt = miss)."""
        with span("cache", "probe", key=key[:12]) as s:
            data = self._mem.get(key)
            if data is None:
                data = super().get(key)  # counts the hit or miss
                if data is None:
                    s["hit"] = False
                    return None
                self._mem[key] = data
            else:
                self.hits += 1
            s["hit"] = True
            return data

    def put(self, key: str, data: dict) -> None:
        """Store a result, atomically (safe under concurrent writers)."""
        with span("cache", "store", key=key[:12]):
            self._mem[key] = data
            super().put(key, data)


def default_cache_dir() -> str:
    """Cache root honouring ``REPRO_SIM_CACHE_DIR``."""
    return os.environ.get("REPRO_SIM_CACHE_DIR") or ".sim-cache"


_SHARED: dict[str, RunCache] = {}


def resolve_run_cache(cache) -> RunCache | None:
    """Normalise a caller's ``cache`` argument.

    ``RunCache`` → itself; ``False`` → disabled; ``None`` → enabled iff
    ``REPRO_SIM_CACHE=1``, rooted at :func:`default_cache_dir` (one
    shared instance per root, so the in-memory layer persists across
    calls); ``True`` → enabled regardless of the environment.
    """
    if isinstance(cache, RunCache):
        return cache
    if cache is False or cache is None and \
            os.environ.get("REPRO_SIM_CACHE") != "1":
        return None
    root = default_cache_dir()
    shared = _SHARED.get(root)
    if shared is None:
        shared = _SHARED[root] = RunCache(root)
    return shared
