"""Text rendering for experiment results.

Every figure's harness produces an aligned text table (the closest
deterministic analogue of the paper's bar charts) that is archived under
``benchmarks/results/`` and summarised in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable


def format_table(headers: list[str], rows: list[list],
                 title: str = "") -> str:
    """Render an aligned, pipe-separated text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: list[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out) + "\n"


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_series(title: str, x_label: str, xs: Iterable,
                  series: dict[str, dict]) -> str:
    """Render several named series over shared x values as a table."""
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        rows.append([x] + [series[name].get(x, "") for name in series])
    return format_table(headers, rows, title)


def telemetry_summary(snapshot: dict | None) -> dict:
    """Compact telemetry columns for figure tables.

    Maps a run's telemetry snapshot (see docs/TELEMETRY.md) to the
    header → value pairs the figure harnesses append when telemetry is
    on; an empty dict when the run carried no snapshot, so callers can
    extend their headers only when there is data.
    """
    if not snapshot:
        return {}
    prefetch = snapshot.get("prefetch", {})
    outcomes = prefetch.get("outcomes", {})
    return {
        "Pf issued": prefetch.get("issued", 0),
        "Pf timely": outcomes.get("timely", 0),
        "Pf late": outcomes.get("late", 0),
        "Pf accuracy": prefetch.get("accuracy", 0.0),
    }
