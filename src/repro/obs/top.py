"""``repro top`` — a live terminal dashboard over ``GET /metrics``.

Polls the JSON snapshot (``repro-serve-metrics-v1``) on an interval
and renders one frame per poll: request rate (from the delta between
consecutive snapshots), queue depth, coalesce/CAS hit rates, worker
restarts, p50/p99 per pipeline stage, and the busiest
{workload, tier, status} request labels.  Pure renderer + polling
loop — all the numbers come from the server's metrics registry, so
anything ``repro top`` shows is also in Prometheus.

``--once`` prints a single frame and exits (scripts, CI smoke);
otherwise the screen is redrawn in place until Ctrl-C.
"""

from __future__ import annotations

import sys
import time

CLEAR = "\x1b[2J\x1b[H"


def _rate(now: dict, prev: dict | None, interval_s: float | None) -> str:
    if prev is None or not interval_s:
        return "    -- req/s"
    delta = (now["requests"]["total"] - prev["requests"]["total"])
    return f"{delta / interval_s:8.1f} req/s"


def _pct(part: float, whole: float) -> str:
    return f"{100.0 * part / whole:5.1f}%" if whole else "    -%"


def render(snapshot: dict, prev: dict | None = None,
           interval_s: float | None = None,
           address: str = "", top_labels: int = 8) -> str:
    """Render one dashboard frame from a metrics snapshot."""
    requests = snapshot["requests"]
    total = requests["total"]
    jobs = snapshot["jobs"]
    cas = snapshot["cas"]
    queue = snapshot["queue"]
    workers = snapshot["workers"]
    latency = snapshot["latency_ms"]
    lines = [
        f"repro top — {address}   up {snapshot['uptime_s']:.0f}s   "
        f"workers {workers['count']} "
        f"(restarts {workers['restarts']})   "
        f"queue {queue['depth']}/{queue['limit']}",
        f"requests  {total} total   "
        f"{_rate(snapshot, prev, interval_s)}   "
        f"shed {jobs['shed']}   errors {jobs['errors']}   "
        f"timeouts {jobs['timeouts']}",
        f"sharing   coalesce {_pct(snapshot['coalesce_hits'], total)}"
        f"   cas {_pct(cas['hits'], total)}   "
        f"executed {jobs['executed']}   stores {cas['stores']}",
        f"latency   p50 {latency['p50']:.1f} ms   "
        f"p99 {latency['p99']:.1f} ms   max {latency['max']:.1f} ms"
        f"   ({latency['count']} samples)",
        "",
    ]
    stages = snapshot.get("stages", {})
    if stages:
        lines.append(f"{'stage':<12}{'count':>8}{'p50 ms':>12}"
                     f"{'p99 ms':>12}{'max ms':>12}")
        for stage, row in stages.items():
            lines.append(f"{stage:<12}{row['count']:>8}"
                         f"{row['p50']:>12.2f}{row['p99']:>12.2f}"
                         f"{row['max']:>12.2f}")
        lines.append("")
    by_label = sorted(requests.get("by_label", []),
                      key=lambda r: (-r["count"], r["workload"],
                                     r["tier"], r["status"]))
    if by_label:
        lines.append(f"{'workload':<12}{'tier':<10}{'status':>7}"
                     f"{'count':>8}")
        for row in by_label[:top_labels]:
            lines.append(f"{row['workload']:<12}{row['tier']:<10}"
                         f"{row['status']:>7}{row['count']:>8}")
        if len(by_label) > top_labels:
            lines.append(f"… {len(by_label) - top_labels} more label "
                         f"combinations")
    status = dict(sorted(requests.get("by_status", {}).items()))
    if status:
        lines.append("by status  " + "  ".join(
            f"{code}:{count}" for code, count in status.items()))
    return "\n".join(lines) + "\n"


def run_top(host: str, port: int, interval_s: float = 2.0,
            once: bool = False, iterations: int | None = None,
            out=None, clear: bool = True) -> int:
    """The polling loop behind ``repro top``; returns an exit code."""
    from ..serve.client import get_metrics

    out = out if out is not None else sys.stdout
    address = f"{host}:{port}"
    prev = None
    ticks = 0
    while True:
        try:
            snapshot = get_metrics(host, port)
        except OSError as exc:
            print(f"repro top: cannot reach {address}: {exc}",
                  file=sys.stderr)
            return 1
        frame = render(snapshot, prev,
                       interval_s if prev is not None else None,
                       address=address)
        if once or not clear:
            out.write(frame)
        else:
            out.write(CLEAR + frame)
        out.flush()
        prev = snapshot
        ticks += 1
        if once or (iterations is not None and ticks >= iterations):
            return 0
        try:
            time.sleep(interval_s)
        except KeyboardInterrupt:
            return 0
