"""Labeled metrics: counters, gauges, fixed-bucket histograms.

A :class:`Registry` holds metric *families*; a family with label names
hands out one *child* per label-value combination (``family.labels(
workload="is", tier="auto")``).  Children are cheap (a few ints under
a lock — safe to touch from the worker pool's I/O threads as well as
the event loop), and observation never allocates per sample: a
histogram is a fixed vector of bucket counts plus ``sum``/``count``
and an explicit **running max** — unlike the bounded reservoir it
replaced, the max is all-time, not whatever happens to still be in a
deque, and nothing is sorted at scrape time.

Exposition is dual:

* :meth:`Registry.render_prometheus` — the Prometheus text format
  (``# HELP`` / ``# TYPE`` headers, ``_bucket``/``_sum``/``_count``
  histogram series, escaped label values, **sorted label names and
  sorted children** so the output is byte-stable for goldens);
* callers assemble their own JSON snapshots from the child values
  (``repro serve`` keeps its ``repro-serve-metrics-v1`` shape).

Percentiles come in two flavours, both here so every consumer agrees:

* :func:`nearest_rank` — the standard ceil-based nearest-rank
  percentile of an exact sorted sample (``tools/load_test.py``).  This
  replaces the old ``round()``-based form whose banker's rounding
  under-reported (e.g. p50 of 5 samples picked the 2nd, not the 3rd).
* :meth:`Histogram.quantile` on a child — an estimate from the bucket
  counts (linear interpolation inside the winning bucket; the +Inf
  bucket answers the running max).
"""

from __future__ import annotations

import math
import threading

#: Default latency buckets, milliseconds.  Upper bounds are inclusive
#: (Prometheus ``le`` semantics); the overflow bucket is +Inf.  The top
#: finite bound comfortably exceeds the default 300 s serve deadline.
LATENCY_BUCKETS_MS = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0, 30000.0, 60000.0, 120000.0,
    300000.0, 600000.0)

#: Buckets for second-scale stage timings (bench runner).
SECONDS_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
                   120.0, 300.0)


def nearest_rank(ordered, pct: float) -> float:
    """Ceil-based nearest-rank percentile of a **sorted** sample.

    The standard definition: the smallest value such that at least
    ``pct`` percent of the sample is ≤ it, i.e. element number
    ``ceil(pct/100 * n)`` (1-based).  Boundary behaviour the old
    ``round()`` form got wrong: n=1 answers the only sample for every
    pct; p50 of n=2 answers the first element; p100 always answers the
    max.  An empty sample answers 0.0.
    """
    n = len(ordered)
    if n == 0:
        return 0.0
    rank = max(1, min(n, math.ceil(pct / 100.0 * n)))
    return ordered[rank - 1]


def format_number(value) -> str:
    """Prometheus sample value formatting: integral floats lose the
    trailing ``.0`` so counters read as integers."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value == int(value) \
            and abs(value) < 1e15 and not math.isinf(value):
        return str(int(value))
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def escape_label_value(value: str) -> str:
    """Escape a label value for the text format: backslash, double
    quote, and newline."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def escape_help(text: str) -> str:
    """Escape a HELP line: backslash and newline."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(labelnames, labelvalues, extra=()) -> str:
    """``{a="x",b="y"}`` with label names sorted for byte-stable
    output; empty string when there are no labels."""
    pairs = sorted(zip(labelnames, labelvalues))
    pairs += list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{name}="{escape_label_value(value)}"'
                    for name, value in pairs)
    return "{" + body + "}"


class _Child:
    """Shared child plumbing: one label-value combination's samples."""

    def __init__(self, labelvalues: tuple):
        self.labelvalues = labelvalues
        self._lock = threading.Lock()


class _CounterChild(_Child):
    def __init__(self, labelvalues):
        super().__init__(labelvalues)
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount

    def set_from(self, value) -> None:
        """Sync from an externally-tracked monotonic source (e.g. the
        pool's restart count) at scrape time."""
        with self._lock:
            self.value = max(self.value, value)


class _GaugeChild(_Child):
    def __init__(self, labelvalues):
        super().__init__(labelvalues)
        self.value = 0.0

    def set(self, value) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount=1) -> None:
        with self._lock:
            self.value += amount


class _HistogramChild(_Child):
    def __init__(self, labelvalues, bounds: tuple):
        super().__init__(labelvalues)
        self.bounds = bounds
        #: Per-bucket (non-cumulative) counts; index len(bounds) is the
        #: +Inf overflow bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        #: All-time running max — explicitly tracked, never inferred
        #: from whatever a bounded reservoir still holds.
        self.max = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        i = 0
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                break
        else:
            i = len(self.bounds)
        with self._lock:
            self.counts[i] += 1
            self.sum += value
            self.count += 1
            if value > self.max:
                self.max = value

    def cumulative(self) -> list[int]:
        """Cumulative bucket counts (``le`` semantics), +Inf last."""
        out, running = [], 0
        with self._lock:
            for c in self.counts:
                running += c
                out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (q in [0, 1]) from the bucket counts.

        Nearest-rank over buckets, linearly interpolated inside the
        winning bucket; a rank landing in the +Inf bucket answers the
        running max (the only honest bound we have there).
        """
        with self._lock:
            total = self.count
            counts = list(self.counts)
            observed_max = self.max
        if total == 0:
            return 0.0
        rank = max(1, math.ceil(q * total))
        cum = 0
        lower = 0.0
        for bound, c in zip(self.bounds, counts):
            if cum + c >= rank:
                if c == 0:
                    return min(bound, observed_max)
                frac = (rank - cum) / c
                return min(lower + (bound - lower) * frac, observed_max)
            cum += c
            lower = bound
        return observed_max


class MetricFamily:
    """Base family: a name, help text, and labeled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: tuple = (),
                 unit: str = ""):
        self.name = name
        self.help = help
        self.labelnames = tuple(labels)
        self.unit = unit
        self._children: dict[tuple, _Child] = {}
        self._lock = threading.Lock()

    def _make_child(self, labelvalues: tuple):
        raise NotImplementedError

    def labels(self, **labelvalues):
        """The child for one label-value combination (created lazily).

        Every declared label must be supplied, and nothing else — a
        typo'd label name is a bug, not a new series.
        """
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: labels {sorted(labelvalues)} != "
                f"declared {sorted(self.labelnames)}")
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child(key)
                self._children[key] = child
        return child

    def children(self) -> list:
        """Children sorted by label values (stable exposition order)."""
        with self._lock:
            return [child for _, child in sorted(self._children.items())]

    def describe(self) -> dict:
        """Catalogue row for this family (``tools/check_metrics.py``)."""
        row = {"name": self.name, "type": self.kind, "help": self.help,
               "labels": list(self.labelnames), "unit": self.unit}
        if isinstance(self, Histogram):
            row["buckets"] = list(self.buckets)
        return row

    def _header(self) -> list[str]:
        return [f"# HELP {self.name} {escape_help(self.help)}",
                f"# TYPE {self.name} {self.kind}"]

    def render(self) -> list[str]:
        raise NotImplementedError


class Counter(MetricFamily):
    """Monotonically-increasing count."""

    kind = "counter"

    def _make_child(self, labelvalues):
        return _CounterChild(labelvalues)

    def inc(self, amount=1):
        """Unlabeled convenience: ``labels()`` then ``inc``."""
        self.labels().inc(amount)

    @property
    def value(self):
        """Sum across children (unlabeled families: the value)."""
        return sum(c.value for c in self.children())

    def render(self) -> list[str]:
        lines = self._header()
        for child in self.children():
            lines.append(
                f"{self.name}"
                f"{_render_labels(self.labelnames, child.labelvalues)}"
                f" {format_number(child.value)}")
        return lines


class Gauge(MetricFamily):
    """A value that can go up and down (set at scrape time is fine)."""

    kind = "gauge"

    def _make_child(self, labelvalues):
        return _GaugeChild(labelvalues)

    def set(self, value):
        self.labels().set(value)

    @property
    def value(self):
        return sum(c.value for c in self.children())

    def render(self) -> list[str]:
        lines = self._header()
        for child in self.children():
            lines.append(
                f"{self.name}"
                f"{_render_labels(self.labelnames, child.labelvalues)}"
                f" {format_number(child.value)}")
        return lines


class Histogram(MetricFamily):
    """Fixed-bucket histogram (bounds shared by every child)."""

    kind = "histogram"

    def __init__(self, name, help, labels=(), unit="",
                 buckets=LATENCY_BUCKETS_MS):
        super().__init__(name, help, labels, unit)
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"{name}: bucket bounds must be strictly "
                             f"increasing")
        self.buckets = bounds

    def _make_child(self, labelvalues):
        return _HistogramChild(labelvalues, self.buckets)

    def observe(self, value):
        self.labels().observe(value)

    def render(self) -> list[str]:
        lines = self._header()
        for child in self.children():
            cumulative = child.cumulative()
            for bound, count in zip(self.buckets, cumulative):
                labels = _render_labels(
                    self.labelnames, child.labelvalues,
                    extra=[("le", format_number(bound))])
                lines.append(f"{self.name}_bucket{labels} {count}")
            labels = _render_labels(self.labelnames, child.labelvalues,
                                    extra=[("le", "+Inf")])
            lines.append(f"{self.name}_bucket{labels} "
                         f"{cumulative[-1]}")
            plain = _render_labels(self.labelnames, child.labelvalues)
            lines.append(f"{self.name}_sum{plain} "
                         f"{format_number(child.sum)}")
            lines.append(f"{self.name}_count{plain} {child.count}")
        return lines


class Registry:
    """An ordered collection of metric families.

    Families are exposed in registration order; every registered
    family appears in the exposition (HELP/TYPE headers) even before
    its first sample, so the catalogue check can assert presence.
    """

    def __init__(self):
        self._families: dict[str, MetricFamily] = {}

    def register(self, family: MetricFamily) -> MetricFamily:
        if family.name in self._families:
            raise ValueError(f"duplicate metric {family.name}")
        self._families[family.name] = family
        return family

    def counter(self, name, help, labels=(), unit="") -> Counter:
        return self.register(Counter(name, help, labels, unit))

    def gauge(self, name, help, labels=(), unit="") -> Gauge:
        return self.register(Gauge(name, help, labels, unit))

    def histogram(self, name, help, labels=(), unit="",
                  buckets=LATENCY_BUCKETS_MS) -> Histogram:
        return self.register(Histogram(name, help, labels, unit,
                                       buckets))

    def family(self, name: str) -> MetricFamily:
        return self._families[name]

    def families(self) -> list[MetricFamily]:
        return list(self._families.values())

    def describe(self) -> list[dict]:
        """The metrics catalogue: one row per family."""
        return [family.describe() for family in self.families()]

    def render_prometheus(self) -> str:
        """The Prometheus text exposition (trailing newline included)."""
        lines: list[str] = []
        for family in self.families():
            lines.extend(family.render())
        return "\n".join(lines) + "\n"
