"""Request IDs and cross-process request traces.

Every HTTP exchange gets a **request ID** minted at admission
(:func:`new_request_id`, 16 hex chars from the OS entropy pool).  For
job submissions the ID keys a bounded :class:`TraceBuffer` entry — a
``repro-request-trace-v1`` record merging:

* the *waiter's* server-side stage spans (admission, CAS probe, the
  wait for the shared job, respond), recorded per request by a
  :class:`RequestSpans`; and
* the *job's* spans, shared by every coalesced waiter: queue wait,
  worker round-trip, CAS store on the server side, plus the
  worker-process :class:`~repro.telemetry.spans.SpanRecorder` records
  (frontend compile, per-pass, fuse/trace-JIT compiles, bench
  build/simulate/validate) carried back across the pool pipe.

Coalesced waiters therefore **share one job span tree but keep
distinct request ids** — N trace records can point at the same job
section, whose ``request_id`` names the admitting owner.

``GET /v1/trace/<request_id>`` serves the record rendered as a Chrome
trace-event document (:func:`repro.telemetry.perfetto.
build_request_trace`); ``repro submit --trace-out FILE`` fetches and
writes it in one step.

Timebase note: server spans count microseconds from the waiter's
request start; worker spans count from the worker's execution start.
The Perfetto export anchors the worker track at the job's queue-exit
offset, which is accurate to within one pipe send — good enough to see
where a request spent its time, which is the point.
"""

from __future__ import annotations

import binascii
import os
import time
from collections import OrderedDict

TRACE_SCHEMA = "repro-request-trace-v1"

#: Default trace-buffer capacity (overridable via ``repro serve
#: --trace-buffer``).
DEFAULT_CAPACITY = 256


def new_request_id() -> str:
    """A fresh 16-hex-char request ID (64 bits of OS entropy)."""
    return binascii.hexlify(os.urandom(8)).decode()


class RequestSpans:
    """Explicit per-request span list (server side).

    The context-global :func:`repro.telemetry.spans.span` helper keys
    off an ambient recorder *stack*, which concurrent coroutines would
    corrupt — so the server records spans explicitly, one instance per
    request, sharing the record shape with :class:`SpanRecorder` so
    the Perfetto export can render both.
    """

    def __init__(self):
        #: ``time.perf_counter()`` at request start — the zero of this
        #: request's timeline (the server also uses it to place the
        #: shared job section relative to each coalesced waiter).
        self.epoch = time.perf_counter()
        self.records: list[dict] = []

    def now_us(self) -> int:
        return int((time.perf_counter() - self.epoch) * 1e6)

    def span(self, name: str, start_us: int, args: dict | None = None,
             end_us: int | None = None) -> None:
        """Record one completed span; ``end_us`` defaults to now."""
        end = self.now_us() if end_us is None else end_us
        self.records.append({
            "type": "span", "category": "serve", "name": name,
            "start_us": int(start_us),
            "dur_us": max(0, int(end - start_us)),
            "args": dict(args or {})})

    def stage_ms(self) -> dict[str, float]:
        """Span durations in milliseconds, keyed by span name (the
        per-stage latency histograms read this)."""
        out: dict[str, float] = {}
        for record in self.records:
            out[record["name"]] = (out.get(record["name"], 0.0)
                                   + record["dur_us"] / 1e3)
        return out


def worker_stage_ms(worker_spans: list[dict]) -> dict[str, float]:
    """Compile/simulate stage durations from worker-side span records.

    ``compile`` aggregates the frontend parse/lower span and the bench
    build span (IR construction + passes); ``simulate`` is the timed
    interpreter run.  Everything else on the worker (prepare,
    validate, fuse/trace-JIT compiles) stays visible in the trace but
    does not get its own stage histogram.
    """
    stages = {"compile": 0.0, "simulate": 0.0}
    for record in worker_spans:
        if record.get("type") != "span":
            continue
        name = record.get("name")
        if name in ("build", "compile_source"):
            stages["compile"] += record["dur_us"] / 1e3
        elif name == "simulate":
            stages["simulate"] += record["dur_us"] / 1e3
    return {k: v for k, v in stages.items() if v > 0.0}


def make_record(request_id: str, *, key: str | None, kind: str,
                workload: str, tier: str, status: int, outcome: str,
                server_spans: list[dict],
                job: dict | None) -> dict:
    """Assemble one ``repro-request-trace-v1`` record."""
    return {"schema": TRACE_SCHEMA, "request_id": request_id,
            "key": key, "kind": kind, "workload": workload,
            "tier": tier, "status": int(status), "outcome": outcome,
            "server_spans": list(server_spans),
            "job": job}


class TraceBuffer:
    """Bounded request-id → trace-record map (LRU by insertion).

    Event-loop only; capacity bounds memory no matter the traffic —
    old requests age out, exactly like a flight recorder.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = max(1, int(capacity))
        self._records: OrderedDict[str, dict] = OrderedDict()

    def put(self, record: dict) -> None:
        request_id = record["request_id"]
        self._records[request_id] = record
        self._records.move_to_end(request_id)
        while len(self._records) > self.capacity:
            self._records.popitem(last=False)

    def get(self, request_id: str) -> dict | None:
        return self._records.get(request_id)

    def __len__(self) -> int:
        return len(self._records)
