"""Structured access and event logging for the serving path.

One line per HTTP exchange plus worker-lifecycle events, in either of
two formats selected by ``repro serve --log-format``:

* ``json`` — one JSON object per line, schema ``repro-serve-log-v1``
  (machine-ingestible; :func:`parse_json_line` validates and decodes,
  and the schema round-trips byte-for-byte through it);
* ``text`` — the same record rendered human-first on one line;
* ``off`` — no access logging.

Records always carry ``schema``, ``event``, and ``ts`` (unix seconds);
``request`` events add ``request_id``, ``method``, ``path``,
``status``, ``latency_ms`` and optionally ``outcome`` (fresh |
coalesced | cached | shed | timeout | error), ``key``, ``workload``,
``tier``, and per-stage timings.  Worker events (``worker_start``,
``worker_restart``, ``pool_close``, …) carry whatever identifies the
worker (index, pid).  Lines go to stderr so the stdout banner that
``tools/load_test.py --spawn`` parses stays clean.
"""

from __future__ import annotations

import json
import sys
import time

LOG_SCHEMA = "repro-serve-log-v1"

#: Known event kinds.  ``request`` is the access log; the rest are
#: lifecycle events.
EVENTS = ("request", "server_start", "server_stop", "worker_start",
          "worker_restart", "pool_close", "cas_gc")

#: Fields every record carries.
REQUIRED_FIELDS = ("schema", "event", "ts")

#: Additional fields required on ``request`` records.
REQUEST_FIELDS = ("request_id", "method", "path", "status",
                  "latency_ms")

FORMATS = ("text", "json", "off")


class LogFormatError(ValueError):
    """A log line failed schema validation."""


def make_record(event: str, clock=time.time, **fields) -> dict:
    """Assemble one validated log record."""
    if event not in EVENTS:
        raise LogFormatError(f"unknown log event {event!r}")
    record = {"schema": LOG_SCHEMA, "event": event,
              "ts": round(clock(), 6)}
    record.update({k: v for k, v in fields.items() if v is not None})
    if event == "request":
        missing = [f for f in REQUEST_FIELDS if f not in record]
        if missing:
            raise LogFormatError(
                f"request record missing field(s) {missing}")
    return record


def format_json(record: dict) -> str:
    """One-line JSON form (sorted keys: byte-stable round-trips)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def format_text(record: dict) -> str:
    """Human-first one-line form of the same record."""
    ts = time.strftime("%Y-%m-%dT%H:%M:%S",
                       time.gmtime(record["ts"]))
    frac = int(round((record["ts"] % 1) * 1e3))
    head = f"{ts}.{frac:03d}Z"
    if record["event"] == "request":
        parts = [head, f"rid={record['request_id']}",
                 f"\"{record['method']} {record['path']}\"",
                 str(record["status"]),
                 f"{record['latency_ms']:.1f}ms"]
        for name in ("outcome", "workload", "tier"):
            if name in record:
                parts.append(f"{name}={record[name]}")
        if "key" in record and record["key"]:
            parts.append(f"key={record['key'][:12]}…")
        return " ".join(parts)
    parts = [head, record["event"]]
    for name, value in sorted(record.items()):
        if name in ("schema", "event", "ts"):
            continue
        parts.append(f"{name}={value}")
    return " ".join(parts)


def parse_json_line(line: str) -> dict:
    """Decode and validate one JSON log line.

    Raises :class:`LogFormatError` on anything that is not a
    well-formed ``repro-serve-log-v1`` record; the access-log schema
    round-trip test is ``parse_json_line(format_json(r)) == r``.
    """
    try:
        record = json.loads(line)
    except ValueError as exc:
        raise LogFormatError(f"not JSON: {exc}") from None
    if not isinstance(record, dict):
        raise LogFormatError("log line is not an object")
    if record.get("schema") != LOG_SCHEMA:
        raise LogFormatError(
            f"schema {record.get('schema')!r} != {LOG_SCHEMA}")
    missing = [f for f in REQUIRED_FIELDS if f not in record]
    if missing:
        raise LogFormatError(f"missing field(s) {missing}")
    if record["event"] not in EVENTS:
        raise LogFormatError(f"unknown event {record['event']!r}")
    if record["event"] == "request":
        missing = [f for f in REQUEST_FIELDS if f not in record]
        if missing:
            raise LogFormatError(
                f"request record missing field(s) {missing}")
        if not isinstance(record["status"], int) or \
                isinstance(record["status"], bool):
            raise LogFormatError("field 'status' must be int")
        if not isinstance(record["latency_ms"], (int, float)) or \
                isinstance(record["latency_ms"], bool):
            raise LogFormatError("field 'latency_ms' must be a number")
    return record


class AccessLogger:
    """Emit structured log records to a stream.

    ``fmt`` is one of :data:`FORMATS`; ``off`` swallows everything.
    Safe to call from the pool's I/O threads — each record is a single
    ``write`` of one line.
    """

    def __init__(self, fmt: str = "text", stream=None, clock=time.time):
        if fmt not in FORMATS:
            raise ValueError(f"log format must be one of {FORMATS}, "
                             f"got {fmt!r}")
        self.fmt = fmt
        self.stream = stream if stream is not None else sys.stderr
        self.clock = clock

    def emit(self, event: str, **fields) -> dict:
        """Build, render, and write one record; returns the record."""
        record = make_record(event, clock=self.clock, **fields)
        if self.fmt == "off":
            return record
        line = (format_json(record) if self.fmt == "json"
                else format_text(record))
        try:
            self.stream.write(line + "\n")
            self.stream.flush()
        except (OSError, ValueError):
            pass  # a dead log stream must never take the server down
        return record

    def request(self, **fields) -> dict:
        return self.emit("request", **fields)
