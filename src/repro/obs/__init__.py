"""Unified request observability (obs): metrics, traces, logs.

The obs package is the shared observability substrate of the serving
path (and, more lightly, the bench runner):

* :mod:`repro.obs.metrics` — a labeled metrics registry (counters,
  gauges, fixed-bucket histograms) with dual exposition: the JSON
  snapshot ``repro serve`` has always answered on ``GET /metrics``,
  plus the Prometheus text format on ``/metrics?format=prometheus``.
  Also home of the shared ceil-based nearest-rank percentile.
* :mod:`repro.obs.trace` — request IDs minted at admission, the
  bounded per-request trace buffer, and the merge of server-side
  stage spans with worker-side :class:`~repro.telemetry.spans.
  SpanRecorder` spans into one cross-process span tree.
* :mod:`repro.obs.logs` — structured access/event logging
  (``repro-serve-log-v1``), one line per request, ``json`` or
  ``text``.
* :mod:`repro.obs.top` — the live terminal dashboard behind
  ``repro top``, rendered from ``/metrics`` JSON snapshots.

Everything here is observational: attaching metrics, traces, or logs
never changes a simulation result byte (``tests/test_obs.py`` and the
serve identity tests enforce it).  See docs/OBSERVABILITY.md for the
metric catalogue, trace semantics, and log schema.
"""

from .metrics import (Counter, Gauge, Histogram, Registry,  # noqa: F401
                      nearest_rank)
from .trace import TraceBuffer, new_request_id  # noqa: F401
