"""The telemetry collector: event ring, outcome bins, cycle accounts.

One :class:`TelemetryCollector` observes one :class:`~repro.machine.
system.MemorySystem` for the duration of a run.  The memory system's
reference walks call the ``prefetch_*`` / ``demand_*`` hooks; the
interpreter calls :meth:`finalize` when the run completes.  All hooks
are pure observation — they never feed a number back into the timing
model, so a run with a collector attached is cycle-for-cycle identical
to one without.

Gating: :func:`telemetry_enabled` reads ``REPRO_SIM_TELEMETRY`` (default
off).  ``REPRO_SIM_TELEMETRY_RING`` bounds the event ring (default 4096
events); aggregate tables are unbounded but small (one row per
prefetch PC / outcome / level).
"""

from __future__ import annotations

import json
import os
import warnings
from collections import deque

from ..remarks import emit
from .outcomes import (DROPPED, EARLY, LATE, OUTCOMES, REDUNDANT, TIMELY,
                       UNUSED)

#: Default event ring capacity (events beyond this evict the oldest).
DEFAULT_RING_CAPACITY = 4096

#: Upper bound on the event ring; larger requests are clamped (each
#: event is a dict — millions of them would dwarf the simulation).
MAX_RING_CAPACITY = 1 << 20


def telemetry_enabled(explicit: bool | None = None) -> bool:
    """Resolve a telemetry flag: explicit setting, else the
    ``REPRO_SIM_TELEMETRY`` environment variable (default off)."""
    if explicit is not None:
        return bool(explicit)
    return os.environ.get("REPRO_SIM_TELEMETRY", "0") == "1"


def _ring_fallback(raw: str, used: int, reason: str) -> int:
    """Report an out-of-range ``REPRO_SIM_TELEMETRY_RING`` and carry on.

    A bad value must never abort a run: it produces a Python warning
    plus (when remarks are being collected) a ``TelemetryRingClamped``
    warning remark, and the clamped/default capacity is used.
    """
    warnings.warn(
        f"REPRO_SIM_TELEMETRY_RING={raw!r} is {reason}; "
        f"using {used}", RuntimeWarning, stacklevel=3)
    emit("warning", "telemetry", "TelemetryRingClamped",
         value=raw, used=used, reason=reason)
    return used


def ring_capacity() -> int:
    """Event-ring capacity honouring ``REPRO_SIM_TELEMETRY_RING``.

    Invalid values fall back to :data:`DEFAULT_RING_CAPACITY` and
    oversized ones clamp to :data:`MAX_RING_CAPACITY`, in both cases
    with a warning (and a remark when collecting) instead of a crash.
    """
    raw = os.environ.get("REPRO_SIM_TELEMETRY_RING")
    if not raw:
        return DEFAULT_RING_CAPACITY
    try:
        cap = int(raw)
    except ValueError:
        return _ring_fallback(raw, DEFAULT_RING_CAPACITY,
                              "not an integer")
    if cap <= 0:
        return _ring_fallback(raw, DEFAULT_RING_CAPACITY,
                              "not positive")
    if cap > MAX_RING_CAPACITY:
        return _ring_fallback(raw, MAX_RING_CAPACITY,
                              "above the maximum")
    return cap


def resolve_collector(telemetry) -> "TelemetryCollector | None":
    """Normalise a caller's ``telemetry`` argument.

    A :class:`TelemetryCollector` passes through; ``True`` builds a
    fresh one; ``False`` disables; ``None`` follows
    ``REPRO_SIM_TELEMETRY``.
    """
    if isinstance(telemetry, TelemetryCollector):
        return telemetry
    if telemetry is None:
        telemetry = telemetry_enabled(None)
    return TelemetryCollector() if telemetry else None


class TelemetryCollector:
    """Per-run observability state.

    :param capacity: event-ring size (``None`` = environment default).

    The collector tracks three things:

    * **prefetch outcomes** — every accepted software prefetch is
      either classified immediately (``redundant``, ``dropped``) or
      parked in ``_pending`` keyed by line address until the first
      demand access to that line (``timely`` / ``late`` / ``early``)
      or the end of the run (``unused`` / ``early``) resolves it;
    * **cycle accounts** — demand latency attributed to the serving
      level (L1/L2/L3/DRAM), translation wait to the TLB, and
      MSHR-full prefetch backpressure to its own bucket;
    * **events** — a bounded ring of per-prefetch classification
      records for post-mortem inspection and JSON export.
    """

    def __init__(self, capacity: int | None = None):
        self.events: deque = deque(
            maxlen=capacity if capacity else ring_capacity())
        self.outcome_counts: dict[str, int] = {o: 0 for o in OUTCOMES}
        self.per_pc: dict[int, dict[str, int]] = {}
        self.per_level: dict[str, int] = {}
        self.cycles: dict[str, float] = {"TLB": 0.0, "DRAM": 0.0,
                                         "prefetch_backpressure": 0.0}
        #: Residual fill wait demand loads still paid on late prefetches
        #: (the paper's "offset too small" loss).
        self.late_wait_cycles = 0.0
        #: Latency a full DRAM miss would have cost the demanded loads
        #: that instead hit on a prefetched (timely/late) line.
        self.demand_hits_on_prefetch = 0
        self._pending: dict[int, tuple[int, float, float]] = {}
        #: prefetch PC -> {"batches", "prefetches"}: how many of a
        #: PC's prefetches were classified while running inside the
        #: vectorized batch tier (repro.machine.vectorsim).  Purely an
        #: annotation — outcome bins above are tier-independent.
        self.vector_pcs: dict[int, dict[str, int]] = {}
        self._core: dict | None = None
        self._memory: dict | None = None

    # -- prefetch-side hooks (called by MemorySystem.prefetch) ----------

    def prefetch_redundant(self, pc: int, line: int, time: float,
                           level: str) -> None:
        """Prefetch to a line already resident (or in flight) at
        ``level``."""
        self._classify(REDUNDANT, pc, line, time, time, level)

    def prefetch_dropped(self, pc: int, line: int, time: float) -> None:
        """Prefetch that found the MSHR file full and stalled issue."""
        self._resolve_stale(line, time)
        self._classify(DROPPED, pc, line, time, time, None)

    def prefetch_issued(self, pc: int, line: int, time: float,
                        fill_time: float) -> None:
        """Prefetch accepted and filling from DRAM; park it pending its
        first demand touch."""
        self._resolve_stale(line, time)
        self._pending[line] = (pc, time, fill_time)

    def _resolve_stale(self, line: int, time: float) -> None:
        """A pending line re-prefetched on the *miss* path must have
        been evicted untouched since its fill: bin the old record as
        early before the new prefetch takes the slot."""
        record = self._pending.pop(line, None)
        if record is not None:
            pc, issue, _fill = record
            self._classify(EARLY, pc, line, issue, time, None)

    def account_backpressure(self, wait: float) -> None:
        """Cycles the core lost waiting for an MSHR on a prefetch."""
        if wait > 0:
            self.cycles["prefetch_backpressure"] += wait

    def note_vector_batch(self, pcs, iterations: int) -> None:
        """One vectorized batch executed ``iterations`` iterations of a
        loop containing prefetches at ``pcs`` (called by the batch
        driver so reports can attribute outcome classification to the
        vector tier)."""
        for pc in pcs:
            bins = self.vector_pcs.get(pc)
            if bins is None:
                bins = self.vector_pcs[pc] = {"batches": 0,
                                              "prefetches": 0}
            bins["batches"] += 1
            bins["prefetches"] += iterations

    # -- demand-side hooks (called by the reference hierarchy walk) -----

    def account_translation(self, wait: float) -> None:
        """Translation wait (L2-TLB latency or page-walk residue)."""
        if wait > 0:
            self.cycles["TLB"] += wait

    def demand_hit(self, line: int, level: str, t: float, fill: float,
                   ready: float) -> None:
        """Demand access served at ``level``; resolves a pending
        prefetch to ``timely`` (fill complete) or ``late`` (in
        flight)."""
        self.cycles[level] = self.cycles.get(level, 0.0) + (ready - t)
        record = self._pending.pop(line, None)
        if record is None:
            return
        pc, issue, fill_time = record
        self.demand_hits_on_prefetch += 1
        if fill <= t:
            self._classify(TIMELY, pc, line, issue, t, level)
        else:
            self.late_wait_cycles += fill - t
            self._classify(LATE, pc, line, issue, t, level)

    def demand_miss(self, line: int, t: float, done: float) -> None:
        """Demand access that missed every level; a pending prefetch to
        this line was therefore evicted before use."""
        self.cycles["DRAM"] += done - t
        record = self._pending.pop(line, None)
        if record is None:
            return
        pc, issue, _fill = record
        self._classify(EARLY, pc, line, issue, t, None)

    # -- lifecycle ------------------------------------------------------

    def finalize(self, memory_system=None, core=None) -> None:
        """Resolve still-pending prefetches and snapshot run context.

        Pending lines still resident somewhere in the hierarchy are
        ``unused`` (the run ended before a demand touch); absent lines
        were evicted unnoticed and count as ``early``.  Idempotent.
        """
        if memory_system is not None:
            caches = memory_system.caches
            for line, (pc, issue, _fill) in sorted(self._pending.items()):
                resident = any(c.contains(line) for c in caches)
                self._classify(UNUSED if resident else EARLY,
                               pc, line, issue, None, None)
            self._pending.clear()
            self._memory = memory_system.snapshot()
        if core is not None:
            issue_cycles = core.instructions * core.issue_cost
            self._core = {
                "cycles": core.cycles,
                "instructions": core.instructions,
                "issue_cycles": issue_cycles,
                "stall_cycles": max(0.0, core.cycles - issue_cycles),
            }

    # -- aggregation ----------------------------------------------------

    def _classify(self, outcome: str, pc: int, line: int, issue: float,
                  resolve: float | None, level: str | None) -> None:
        self.outcome_counts[outcome] += 1
        pc_bins = self.per_pc.get(pc)
        if pc_bins is None:
            pc_bins = self.per_pc[pc] = {o: 0 for o in OUTCOMES}
        pc_bins[outcome] += 1
        if level is not None and outcome in (TIMELY, LATE, REDUNDANT):
            key = f"{level}:{outcome}"
            self.per_level[key] = self.per_level.get(key, 0) + 1
        self.events.append({"outcome": outcome, "pc": pc, "line": line,
                            "issue": issue, "resolve": resolve,
                            "level": level})

    @property
    def issued(self) -> int:
        """Total classified prefetches (pending ones not yet counted)."""
        return sum(self.outcome_counts.values())

    @property
    def accuracy(self) -> float:
        """Fraction of prefetches whose line served a demand access."""
        total = self.issued
        useful = (self.outcome_counts[TIMELY]
                  + self.outcome_counts[LATE])
        return useful / total if total else 0.0

    @property
    def timeliness(self) -> float:
        """Of the useful prefetches, the fraction that fully hid the
        miss latency."""
        useful = (self.outcome_counts[TIMELY]
                  + self.outcome_counts[LATE])
        return self.outcome_counts[TIMELY] / useful if useful else 0.0

    def snapshot(self) -> dict:
        """JSON-serialisable summary of everything observed."""
        return {
            "schema": "repro-telemetry-v1",
            "prefetch": {
                "issued": self.issued,
                "pending": len(self._pending),
                "outcomes": dict(self.outcome_counts),
                "accuracy": self.accuracy,
                "timeliness": self.timeliness,
                "late_wait_cycles": self.late_wait_cycles,
                "per_pc": {str(pc): dict(bins) for pc, bins in
                           sorted(self.per_pc.items())},
                "per_level": dict(sorted(self.per_level.items())),
            },
            "cycles": {
                "by_source": {k: v for k, v in
                              sorted(self.cycles.items())},
                "core": self._core,
            },
            "vector": {
                "per_pc": {str(pc): dict(bins) for pc, bins in
                           sorted(self.vector_pcs.items())},
            },
            "memory": self._memory,
            "events": list(self.events),
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The :meth:`snapshot` as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent)
