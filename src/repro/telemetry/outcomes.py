"""Outcome taxonomy for software prefetches.

Every software prefetch the simulator accepts is eventually binned into
exactly one outcome, mirroring the accuracy/timeliness/coverage
breakdowns prefetching papers evaluate against (AMC, Pickle, and the
source paper's own look-ahead sweeps):

* ``timely`` — the first demand access to the line found it resident
  with its fill complete: the full miss latency was hidden.
* ``late`` — the demand access arrived while the fill was still in
  flight; only part of the latency was hidden (the residual wait is
  accumulated as ``late_wait_cycles``).
* ``early`` — the line was evicted (from every level) before any demand
  access touched it; the prefetch consumed bandwidth for nothing.
* ``redundant`` — the line was already resident (or already in flight)
  somewhere in the hierarchy at issue time.
* ``dropped`` — the MSHR file was full at issue; the request was only
  accepted after stalling the core (the closest analogue of a hardware
  drop in a model that applies backpressure instead of discarding).
* ``unused`` — still resident but never demanded when the run ended
  (distinguished from ``early`` so end-of-run truncation does not
  masquerade as cache pollution).
"""

from __future__ import annotations

TIMELY = "timely"
LATE = "late"
EARLY = "early"
REDUNDANT = "redundant"
DROPPED = "dropped"
UNUSED = "unused"

#: All outcomes, in reporting order.
OUTCOMES = (TIMELY, LATE, EARLY, REDUNDANT, DROPPED, UNUSED)

#: Outcomes that represent a *useful* prefetch (some latency hidden).
USEFUL = frozenset((TIMELY, LATE))
