"""Windowed time-series sampling of the simulation counters.

A :class:`TimelineRecorder` turns a run's cumulative counters into a
sequence of fixed-width *windows* along the simulated-cycle axis: every
``window_cycles`` cycles it snapshots the delta of core issue/stall
cycles, per-level cache hits/misses (with MPKI), TLB misses, DRAM
accesses, the MSHR high-water mark, and — when a telemetry collector is
attached — the per-window prefetch outcome bins.  This is the
phase-resolved signal the aggregate ``repro stats`` report blends away:
a prefetch that is timely during warm-up and late in the pointer-chase
phase shows up here as two different windows.

Sampling is **observational only** and happens exclusively at the
interpreter's reference *yield boundaries* (the points where
``run_stepped`` hands back the core time, and where the trace-JIT's
instruction budget exits compiled traces).  All three execution tiers
share those boundaries bit-for-bit, so a run with a recorder attached
is cycle-identical to one without, under every tier — the equivalence
suite proves it.

Gating: ``REPRO_SIM_TIMELINE`` (default off) enables recording for runs
that do not pass an explicit recorder; ``REPRO_SIM_TIMELINE_WINDOW``
sets the window width in simulated cycles (default
:data:`DEFAULT_WINDOW_CYCLES`; invalid values warn and fall back, they
never abort a run).
"""

from __future__ import annotations

import os
import warnings

from ..remarks import emit

#: Schema tag of :meth:`TimelineRecorder.snapshot`.
SCHEMA = "repro-timeline-v1"

#: Default window width in simulated cycles.
DEFAULT_WINDOW_CYCLES = 100_000

#: Smallest accepted window; below this the per-window dicts would
#: dwarf the simulation itself, so smaller requests clamp up.
MIN_WINDOW_CYCLES = 1_000

#: Dynamic instructions between sampling opportunities when the
#: recorder itself drives the run (``Interpreter.run`` with a recorder
#: attached).  Matches ``run_stepped``'s default yield interval; the
#: boundary placement is what keeps the tiers bit-identical, not the
#: value.
DEFAULT_SAMPLE_EVERY = 10_000


def timeline_enabled(explicit: bool | None = None) -> bool:
    """Resolve a timeline flag: explicit setting, else the
    ``REPRO_SIM_TIMELINE`` environment variable (default off)."""
    if explicit is not None:
        return bool(explicit)
    return os.environ.get("REPRO_SIM_TIMELINE", "0") == "1"


def _window_fallback(raw: str, used: int, reason: str) -> int:
    """Report a bad ``REPRO_SIM_TIMELINE_WINDOW`` and carry on.

    Mirrors the telemetry ring's clamp contract: a Python warning plus
    (when remarks are being collected) a ``TimelineWindowClamped``
    warning remark, never a crash.
    """
    warnings.warn(
        f"REPRO_SIM_TIMELINE_WINDOW={raw!r} is {reason}; "
        f"using {used}", RuntimeWarning, stacklevel=3)
    emit("warning", "telemetry", "TimelineWindowClamped",
         value=raw, used=used, reason=reason)
    return used


def timeline_window() -> int:
    """Window width honouring ``REPRO_SIM_TIMELINE_WINDOW``.

    Invalid values fall back to :data:`DEFAULT_WINDOW_CYCLES` and
    undersized ones clamp to :data:`MIN_WINDOW_CYCLES`, in both cases
    with a warning (and a remark when collecting) instead of a crash.
    """
    raw = os.environ.get("REPRO_SIM_TIMELINE_WINDOW")
    if not raw:
        return DEFAULT_WINDOW_CYCLES
    try:
        window = int(raw)
    except ValueError:
        return _window_fallback(raw, DEFAULT_WINDOW_CYCLES,
                                "not an integer")
    if window <= 0:
        return _window_fallback(raw, DEFAULT_WINDOW_CYCLES,
                                "not positive")
    if window < MIN_WINDOW_CYCLES:
        return _window_fallback(raw, MIN_WINDOW_CYCLES,
                                "below the minimum")
    return window


def resolve_timeline(timeline) -> "TimelineRecorder | None":
    """Normalise a caller's ``timeline`` argument.

    A :class:`TimelineRecorder` passes through; ``True`` builds a fresh
    one; ``False`` disables; ``None`` follows ``REPRO_SIM_TIMELINE``.
    """
    if isinstance(timeline, TimelineRecorder):
        return timeline
    if timeline is None:
        timeline = timeline_enabled(None)
    return TimelineRecorder() if timeline else None


class TimelineRecorder:
    """Per-run window accumulator (one recorder per run).

    :param window: window width in simulated cycles (``None`` =
        environment default via :func:`timeline_window`).
    :param sample_every: dynamic instructions between sampling
        opportunities when the recorder drives the run itself.

    The interpreter calls :meth:`sample` at every yield boundary and
    :meth:`finalize` when the run completes; a window record is closed
    at the first boundary at or past each ``window``-cycle edge (so a
    long stall can make one record span several edges — ``end_cycle``
    tells the truth).  All reads are pure: the recorder never mutates
    the core, the hierarchy, or the collector it observes.
    """

    def __init__(self, window: int | None = None,
                 sample_every: int | None = None):
        self.window = int(window) if window else timeline_window()
        if self.window <= 0:
            raise ValueError("timeline window must be positive")
        self.sample_every = (int(sample_every) if sample_every
                             else DEFAULT_SAMPLE_EVERY)
        self.windows: list[dict] = []
        self._prev: dict | None = None
        self._next_edge = float(self.window)
        self._mshr_high = 0
        self._finalized = False

    # -- counter capture ------------------------------------------------

    @staticmethod
    def _counters(core, memory_system, telemetry) -> dict:
        """Cumulative counters at one instant (pure reads only)."""
        cur = {
            "cycles": core.cycles,
            "instructions": core.instructions,
            "tlb_misses": memory_system.tlb.stats.misses,
            "dram_accesses": memory_system.dram.stats.accesses,
            "sw_prefetches": memory_system.stats.sw_prefetches,
            "levels": {c.name: (c.stats.hits, c.stats.misses)
                       for c in memory_system.caches},
            "outcomes": (dict(telemetry.outcome_counts)
                         if telemetry is not None else None),
        }
        return cur

    def sample(self, core, memory_system, telemetry=None) -> None:
        """Observe the counters at a yield boundary; close windows as
        cycle edges are crossed."""
        occupancy = memory_system.mshr_occupancy(core.time)
        if occupancy > self._mshr_high:
            self._mshr_high = occupancy
        if core.time >= self._next_edge:
            self._close(core, memory_system, telemetry)

    def finalize(self, core, memory_system, telemetry=None) -> None:
        """Close the trailing partial window (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        cur = self._counters(core, memory_system, telemetry)
        prev = self._prev
        base_instr = prev["instructions"] if prev else 0
        base_cycles = prev["cycles"] if prev else 0.0
        if cur["instructions"] > base_instr \
                or cur["cycles"] > base_cycles:
            self._close(core, memory_system, telemetry)

    def _close(self, core, memory_system, telemetry) -> None:
        cur = self._counters(core, memory_system, telemetry)
        prev = self._prev
        start = prev["cycles"] if prev else 0.0
        d_cycles = cur["cycles"] - start
        d_instr = cur["instructions"] - (prev["instructions"]
                                         if prev else 0)
        issue = d_instr * core.issue_cost
        levels = {}
        for name, (hits, misses) in cur["levels"].items():
            p_hits, p_misses = (prev["levels"][name] if prev
                                else (0, 0))
            d_hits = hits - p_hits
            d_misses = misses - p_misses
            levels[name] = {
                "hits": d_hits,
                "misses": d_misses,
                "mpki": (1000.0 * d_misses / d_instr
                         if d_instr else 0.0),
            }
        outcomes = None
        if cur["outcomes"] is not None:
            prev_out = prev["outcomes"] if prev and prev["outcomes"] \
                else {}
            outcomes = {o: n - prev_out.get(o, 0)
                        for o, n in cur["outcomes"].items()}
        self.windows.append({
            "index": len(self.windows),
            "start_cycle": start,
            "end_cycle": cur["cycles"],
            "cycles": d_cycles,
            "instructions": d_instr,
            "ipc": d_instr / d_cycles if d_cycles else 0.0,
            "issue_cycles": issue,
            "stall_cycles": max(0.0, d_cycles - issue),
            "levels": levels,
            "tlb_misses": cur["tlb_misses"] - (prev["tlb_misses"]
                                               if prev else 0),
            "dram_accesses": cur["dram_accesses"]
            - (prev["dram_accesses"] if prev else 0),
            "sw_prefetches": cur["sw_prefetches"]
            - (prev["sw_prefetches"] if prev else 0),
            "mshr_high_water": self._mshr_high,
            "outcomes": outcomes,
        })
        self._prev = cur
        self._mshr_high = 0
        # Next edge strictly ahead of the close point, on the grid.
        edges_passed = int(cur["cycles"] // self.window) + 1
        self._next_edge = float(edges_passed * self.window)

    # -- export ---------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serialisable timeline (schema :data:`SCHEMA`)."""
        last = self._prev or {}
        return {
            "schema": SCHEMA,
            "window_cycles": self.window,
            "sample_every": self.sample_every,
            "windows": [dict(w) for w in self.windows],
            "totals": {
                "windows": len(self.windows),
                "cycles": last.get("cycles", 0.0),
                "instructions": last.get("instructions", 0),
            },
        }
