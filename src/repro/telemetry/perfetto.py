"""Chrome trace-event (Perfetto) export of timelines and spans.

Serialises flight-recorder data as the Trace Event Format JSON that
``chrome://tracing`` and https://ui.perfetto.dev load directly:

* **pid 1 — "simulation"**: one counter track (``ph: "C"``) per metric
  per workload, sampled at each timeline window's closing edge, with
  simulated cycles standing in for microseconds; plus one span track
  per workload whose ``X`` events are the windows themselves, so the
  phase structure is visible at a glance.
* **pid 2 — "pipeline"**: wall-clock ``X`` spans from the
  :class:`~repro.telemetry.spans.SpanRecorder` (frontend, passes,
  fuse/trace compiles, cache probes, bench jobs) on one thread per
  span category, and trace-JIT ``TraceCompiled``/``TraceDeopt``
  events as instants (``ph: "i"``).

The two pids keep the two timebases (simulated cycles vs wall
microseconds) from sharing an axis.

:func:`build_request_trace` renders a second document kind — the
per-request cross-process span tree ``repro serve`` records (see
:mod:`repro.obs.trace`): server-side stage spans on pid 1, the
executing pool worker's spans on pid 2, one request id in
``otherData``.

Determinism: simulated-time events are exactly reproducible; wall-clock
events are not.  :func:`canonical_json` therefore zeroes ``ts``/``dur``
on every pipeline-pid event and serialises with sorted keys, giving a
byte-comparable form — two runs of the same workloads must produce
identical canonical traces (``tools/check_timeline.py`` gates this).
"""

from __future__ import annotations

import copy
import json

#: Trace schema tag, recorded in ``otherData``.
TRACE_SCHEMA = "repro-timeline-trace-v1"

#: Schema tag of per-request serve traces (``GET /v1/trace/<id>``).
REQUEST_TRACE_SCHEMA = "repro-request-trace-v1"

#: Synthetic process IDs: simulated-time tracks vs wall-clock tracks.
SIM_PID = 1
PIPELINE_PID = 2

#: Request-trace documents use their own pid pair: the serving process
#: vs the pool worker that executed the job.
REQUEST_SERVER_PID = 1
REQUEST_WORKER_PID = 2

#: Span categories get stable thread IDs so Perfetto groups them.
_CATEGORY_TIDS = {"bench": 1, "frontend": 2, "pass": 3, "compile": 4,
                  "tracejit": 5, "cache": 6}
_OTHER_TID = 7


def _meta(pid: int, name: str, tid: int | None = None,
          thread_name: str | None = None) -> list[dict]:
    events = [{"ph": "M", "pid": pid, "tid": 0, "name": "process_name",
               "args": {"name": name}}]
    if tid is not None:
        events.append({"ph": "M", "pid": pid, "tid": tid,
                       "name": "thread_name",
                       "args": {"name": thread_name or name}})
    return events


def timeline_events(label: str, timeline: dict, tid: int) -> list[dict]:
    """Counter + window-span events for one run's timeline snapshot."""
    events: list[dict] = [
        {"ph": "M", "pid": SIM_PID, "tid": tid, "name": "thread_name",
         "args": {"name": f"{label} windows"}}]
    for w in timeline.get("windows", []):
        ts = w["end_cycle"]
        events.append({
            "ph": "X", "pid": SIM_PID, "tid": tid, "cat": "window",
            "name": f"w{w['index']}", "ts": w["start_cycle"],
            "dur": w["cycles"],
            "args": {"instructions": w["instructions"],
                     "ipc": w["ipc"],
                     "mshr_high_water": w["mshr_high_water"]}})
        events.append({
            "ph": "C", "pid": SIM_PID, "tid": 0,
            "name": f"{label}: IPC", "ts": ts,
            "args": {"ipc": w["ipc"]}})
        events.append({
            "ph": "C", "pid": SIM_PID, "tid": 0,
            "name": f"{label}: stall cycles", "ts": ts,
            "args": {"issue": w["issue_cycles"],
                     "stall": w["stall_cycles"]}})
        for level, stats in w["levels"].items():
            events.append({
                "ph": "C", "pid": SIM_PID, "tid": 0,
                "name": f"{label}: {level} MPKI", "ts": ts,
                "args": {"mpki": stats["mpki"]}})
        events.append({
            "ph": "C", "pid": SIM_PID, "tid": 0,
            "name": f"{label}: TLB misses", "ts": ts,
            "args": {"misses": w["tlb_misses"]}})
        events.append({
            "ph": "C", "pid": SIM_PID, "tid": 0,
            "name": f"{label}: MSHR high-water", "ts": ts,
            "args": {"entries": w["mshr_high_water"]}})
        if w.get("outcomes"):
            events.append({
                "ph": "C", "pid": SIM_PID, "tid": 0,
                "name": f"{label}: prefetch outcomes", "ts": ts,
                "args": dict(sorted(w["outcomes"].items()))})
    return events


def span_events(recorder) -> list[dict]:
    """Wall-clock span/instant events from a
    :class:`~repro.telemetry.spans.SpanRecorder`."""
    events: list[dict] = []
    seen_tids: set[int] = set()
    for record in recorder.records:
        tid = _CATEGORY_TIDS.get(record["category"], _OTHER_TID)
        if tid not in seen_tids:
            seen_tids.add(tid)
            events.append({
                "ph": "M", "pid": PIPELINE_PID, "tid": tid,
                "name": "thread_name",
                "args": {"name": record["category"]}})
        if record["type"] == "span":
            events.append({
                "ph": "X", "pid": PIPELINE_PID, "tid": tid,
                "cat": record["category"], "name": record["name"],
                "ts": record["start_us"], "dur": record["dur_us"],
                "args": dict(record["args"])})
        else:
            events.append({
                "ph": "i", "s": "t", "pid": PIPELINE_PID, "tid": tid,
                "cat": record["category"], "name": record["name"],
                "ts": record["ts_us"], "args": dict(record["args"])})
    return events


def build_trace(rows: list[dict], recorder=None,
                meta: dict | None = None) -> dict:
    """Assemble one loadable trace document.

    :param rows: ``timeline_rows`` output — dicts with ``workload`` and
        ``timeline`` (a ``repro-timeline-v1`` snapshot or ``None``).
    :param recorder: optional span recorder for the pipeline tracks.
    :param meta: extra key/values for ``otherData`` (machine, variant).
    """
    events = _meta(SIM_PID, "simulation (ts = simulated cycles)")
    for i, row in enumerate(rows):
        if row.get("timeline"):
            events.extend(timeline_events(row["workload"],
                                          row["timeline"], tid=i + 1))
    if recorder is not None and recorder.records:
        events.extend(_meta(PIPELINE_PID, "pipeline (ts = wall µs)"))
        events.extend(span_events(recorder))
    other = {"schema": TRACE_SCHEMA, "generator": "repro timeline"}
    other.update(meta or {})
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": other}


def _record_events(records: list[dict], pid: int, tid: int,
                   offset_us: int = 0) -> list[dict]:
    """Render span/instant records (the shared
    :class:`~repro.telemetry.spans.SpanRecorder` record shape) as
    trace events on one thread, shifted by ``offset_us``."""
    events: list[dict] = []
    for record in records:
        if record.get("type") == "span":
            events.append({
                "ph": "X", "pid": pid, "tid": tid,
                "cat": record.get("category", "span"),
                "name": record["name"],
                "ts": record["start_us"] + offset_us,
                "dur": record["dur_us"],
                "args": dict(record.get("args", {}))})
        elif record.get("type") == "instant":
            events.append({
                "ph": "i", "s": "t", "pid": pid, "tid": tid,
                "cat": record.get("category", "span"),
                "name": record["name"],
                "ts": record["ts_us"] + offset_us,
                "args": dict(record.get("args", {}))})
    return events


def build_request_trace(record: dict) -> dict:
    """One serve request as a loadable Chrome trace-event document.

    ``record`` is a ``repro-request-trace-v1`` entry from the server's
    trace buffer (see :mod:`repro.obs.trace`).  The document crosses
    the process boundary under one request id:

    * **pid 1 — "server"**: tid 1 carries the waiter's stage spans
      (admission, CAS probe, job wait, respond); tid 2 carries the
      shared job's spans (queue, worker round-trip, CAS store),
      anchored at the job's start offset within the waiter's timeline
      (coalesced waiters that joined after the job started anchor at
      0).
    * **pid 2 — "worker"**: the worker-process SpanRecorder records —
      frontend compile, per-pass spans, fuse/trace-JIT compile spans
      and instants, bench build/prepare/simulate/validate — anchored
      where the job's queue span ends (accurate to one pipe send).

    All timestamps are wall microseconds from the waiter's admission.
    """
    events = _meta(REQUEST_SERVER_PID, "server (repro serve)",
                   tid=1, thread_name="request")
    events.extend(_record_events(record.get("server_spans", []),
                                 REQUEST_SERVER_PID, tid=1))
    job = record.get("job")
    if job:
        job_offset = int(job.get("start_offset_us", 0))
        events.extend(_meta(REQUEST_SERVER_PID, "server (repro serve)",
                            tid=2, thread_name="job")[1:])
        events.extend(_record_events(job.get("spans", []),
                                     REQUEST_SERVER_PID, tid=2,
                                     offset_us=job_offset))
        worker_spans = job.get("worker_spans") or []
        if worker_spans:
            worker_name = (f"worker {job.get('worker', '?')} "
                           f"(pid {job.get('pid', '?')})")
            events.extend(_meta(REQUEST_WORKER_PID, worker_name,
                                tid=1, thread_name="execute"))
            anchor = job_offset + int(job.get("worker_anchor_us", 0))
            events.extend(_record_events(worker_spans,
                                         REQUEST_WORKER_PID, tid=1,
                                         offset_us=anchor))
    other = {"schema": REQUEST_TRACE_SCHEMA,
             "generator": "repro serve",
             "request_id": record.get("request_id"),
             "outcome": record.get("outcome"),
             "status": record.get("status"),
             "workload": record.get("workload"),
             "tier": record.get("tier")}
    if record.get("key"):
        other["key"] = record["key"]
    if job:
        other["job_request_id"] = job.get("request_id")
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": other}


def canonical_json(trace: dict) -> str:
    """Byte-comparable form of a trace: wall-clock timestamps zeroed
    (pipeline pid only — simulated-time events must already be
    deterministic), keys sorted, compact separators."""
    trace = copy.deepcopy(trace)
    for event in trace.get("traceEvents", []):
        if event.get("pid") == PIPELINE_PID:
            if "ts" in event:
                event["ts"] = 0
            if "dur" in event:
                event["dur"] = 0
    return json.dumps(trace, sort_keys=True, separators=(",", ":"))
