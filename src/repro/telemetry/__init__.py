"""Simulation observability: prefetch outcomes and cycle accounting.

The telemetry subsystem classifies every software prefetch the compiler
pass emits — from the cycle it is issued to the first demand access that
touches (or fails to touch) the prefetched line — and attributes demand
latency to the hierarchy level that served it, so experiments can report
*why* a prefetching scheme won or lost (accuracy, timeliness, coverage;
the paper's §6 analysis and Fig. 8 overhead discussion).

Telemetry is **observational only**: attaching a collector never changes
a single simulated cycle.  It is gated by ``REPRO_SIM_TELEMETRY`` (off
by default) because classification needs the reference hierarchy walks;
enabling it disables the memory system's hot-line memo for that run and
routes every access through the instrumented slow path, which the
equivalence suite proves bit-identical.

Layout:

* :mod:`repro.telemetry.outcomes` — the outcome taxonomy;
* :mod:`repro.telemetry.collector` — :class:`TelemetryCollector`, the
  bounded event ring and aggregation tables;
* :mod:`repro.telemetry.report` — prefetch-effectiveness reports over
  the benchmark suite (imported on demand; it pulls in the bench
  harness).
"""

from .collector import (DEFAULT_RING_CAPACITY, MAX_RING_CAPACITY,
                        TelemetryCollector, resolve_collector,
                        ring_capacity, telemetry_enabled)
from .outcomes import (DROPPED, EARLY, LATE, OUTCOMES, REDUNDANT, TIMELY,
                       UNUSED)

__all__ = [
    "TelemetryCollector", "resolve_collector", "telemetry_enabled",
    "ring_capacity", "DEFAULT_RING_CAPACITY", "MAX_RING_CAPACITY",
    "OUTCOMES", "TIMELY", "LATE", "EARLY", "REDUNDANT", "DROPPED",
    "UNUSED",
]
