"""Simulation observability: prefetch outcomes and cycle accounting.

The telemetry subsystem classifies every software prefetch the compiler
pass emits — from the cycle it is issued to the first demand access that
touches (or fails to touch) the prefetched line — and attributes demand
latency to the hierarchy level that served it, so experiments can report
*why* a prefetching scheme won or lost (accuracy, timeliness, coverage;
the paper's §6 analysis and Fig. 8 overhead discussion).

Telemetry is **observational only**: attaching a collector never changes
a single simulated cycle.  It is gated by ``REPRO_SIM_TELEMETRY`` (off
by default) because classification needs the reference hierarchy walks;
enabling it disables the memory system's hot-line memo for that run and
routes every access through the instrumented slow path, which the
equivalence suite proves bit-identical.

Layout:

* :mod:`repro.telemetry.outcomes` — the outcome taxonomy;
* :mod:`repro.telemetry.collector` — :class:`TelemetryCollector`, the
  bounded event ring and aggregation tables;
* :mod:`repro.telemetry.timeline` — the flight recorder's windowed
  time-series sampler (``REPRO_SIM_TIMELINE``);
* :mod:`repro.telemetry.spans` — wall-clock pipeline spans (frontend,
  passes, JIT compiles, cache probes, bench jobs);
* :mod:`repro.telemetry.perfetto` — Chrome trace-event export of both;
* :mod:`repro.telemetry.report` — prefetch-effectiveness and timeline
  reports over the benchmark suite (imported on demand; it pulls in
  the bench harness).
"""

from .collector import (DEFAULT_RING_CAPACITY, MAX_RING_CAPACITY,
                        TelemetryCollector, resolve_collector,
                        ring_capacity, telemetry_enabled)
from .outcomes import (DROPPED, EARLY, LATE, OUTCOMES, REDUNDANT, TIMELY,
                       UNUSED)
from .spans import (SpanRecorder, active_recorder, instant, recording,
                    span)
from .timeline import (DEFAULT_SAMPLE_EVERY, DEFAULT_WINDOW_CYCLES,
                       MIN_WINDOW_CYCLES, TimelineRecorder,
                       resolve_timeline, timeline_enabled,
                       timeline_window)

__all__ = [
    "TelemetryCollector", "resolve_collector", "telemetry_enabled",
    "ring_capacity", "DEFAULT_RING_CAPACITY", "MAX_RING_CAPACITY",
    "OUTCOMES", "TIMELY", "LATE", "EARLY", "REDUNDANT", "DROPPED",
    "UNUSED",
    "TimelineRecorder", "resolve_timeline", "timeline_enabled",
    "timeline_window", "DEFAULT_WINDOW_CYCLES", "MIN_WINDOW_CYCLES",
    "DEFAULT_SAMPLE_EVERY",
    "SpanRecorder", "recording", "span", "instant", "active_recorder",
]
