"""Prefetch-effectiveness and timeline reports from telemetry snapshots.

Runs plain + prefetched variants with telemetry enabled and tabulates,
per (workload, machine): the speedup, the outcome of every software
prefetch (timely / late / early / redundant / dropped / unused), the
derived accuracy and timeliness ratios, and the change in memory-stall
cycles — the observability companion to the paper's Fig. 4 speedups.

:func:`timeline_rows` / :func:`render_timeline` are the flight
recorder's phase view: the same runs with windowed sampling on, shown
as one table per run with per-window IPC, MPKI, and timely/late splits.

Imported on demand by the CLI and ``tools/telemetry_report.py`` (not
from :mod:`repro.telemetry` itself) because it depends on
:mod:`repro.bench`, which depends back on the telemetry gate.
"""

from __future__ import annotations

from ..bench.reporting import format_table
from ..bench.runner import RunSpec, run_specs, run_variant
from ..machine.configs import ALL_SYSTEMS, MachineConfig
from ..workloads.base import Workload
from .timeline import TimelineRecorder

#: Columns of the rendered effectiveness table, in order.
COLUMNS = ["Benchmark", "Machine", "Speedup", "Issued", "Timely",
           "Late", "Early", "Redundant", "Dropped", "Unused",
           "Accuracy", "Timeliness", "Stall Δ%"]


def effectiveness_rows(workloads: list[Workload],
                       machines: tuple[MachineConfig, ...] = ALL_SYSTEMS,
                       variant: str = "auto",
                       lookahead: int = 64,
                       jobs: int | None = None,
                       cache=None) -> list[dict]:
    """Run ``plain`` and ``variant`` with telemetry on and summarise.

    One row per (workload, machine).  ``stall_delta_pct`` is the change
    in the core's memory-stall cycles (``cycles - instructions ×
    issue_cost``) from plain to the prefetched variant — negative means
    the prefetches removed stall time.
    """
    specs = []
    for workload in workloads:
        for machine in machines:
            specs.append(RunSpec(workload, "plain", machine,
                                 lookahead=lookahead, telemetry=True))
            specs.append(RunSpec(workload, variant, machine,
                                 lookahead=lookahead, telemetry=True))
    results = iter(run_specs(specs, jobs=jobs, cache=cache))
    rows = []
    for workload in workloads:
        for machine in machines:
            plain, pref = next(results), next(results)
            tel = pref.telemetry or {}
            prefetch = tel.get("prefetch", {})
            outcomes = prefetch.get("outcomes", {})
            plain_core = ((plain.telemetry or {}).get("cycles", {})
                          .get("core") or {})
            pref_core = (tel.get("cycles", {}).get("core") or {})
            plain_stall = plain_core.get("stall_cycles", 0.0)
            pref_stall = pref_core.get("stall_cycles", 0.0)
            rows.append({
                "workload": workload.name,
                "machine": machine.name,
                "variant": variant,
                "speedup": (plain.cycles / pref.cycles
                            if pref.cycles else 0.0),
                "issued": prefetch.get("issued", 0),
                "outcomes": dict(outcomes),
                "accuracy": prefetch.get("accuracy", 0.0),
                "timeliness": prefetch.get("timeliness", 0.0),
                "late_wait_cycles": prefetch.get("late_wait_cycles",
                                                 0.0),
                "cycles_by_source": dict(tel.get("cycles", {})
                                         .get("by_source", {})),
                "stall_cycles_plain": plain_stall,
                "stall_cycles_prefetched": pref_stall,
                "stall_delta_pct": (100.0 * (pref_stall / plain_stall
                                             - 1.0)
                                    if plain_stall else 0.0),
                "vector_per_pc": dict(tel.get("vector", {})
                                      .get("per_pc", {})),
            })
    return rows


def render_effectiveness(rows: list[dict],
                         title: str = "Prefetch effectiveness "
                                      "(telemetry)") -> str:
    """The effectiveness rows as an aligned text table."""
    body = []
    for row in rows:
        outcomes = row["outcomes"]
        body.append([
            row["workload"], row["machine"], row["speedup"],
            row["issued"],
            outcomes.get("timely", 0), outcomes.get("late", 0),
            outcomes.get("early", 0), outcomes.get("redundant", 0),
            outcomes.get("dropped", 0), outcomes.get("unused", 0),
            row["accuracy"], row["timeliness"],
            row["stall_delta_pct"],
        ])
    table = format_table(COLUMNS, body, title)
    # Per-PC vector-tier attribution (only populated when the run was
    # made under REPRO_SIM_VECTOR=1 and a prefetch loop batched).
    notes = []
    for row in rows:
        per_pc = row.get("vector_per_pc") or {}
        if not per_pc:
            continue
        classified = sum(b["prefetches"] for b in per_pc.values())
        notes.append(
            f"note: {row['workload']}/{row['machine']}: {classified} "
            f"prefetches at {len(per_pc)} PC(s) classified in the "
            f"vectorized batch tier (PCs "
            + ", ".join(sorted(per_pc, key=int)) + ")")
    if notes:
        table += "\n" + "\n".join(notes)
    return table


def report_dict(rows: list[dict]) -> dict:
    """The rows wrapped in a schema-tagged, JSON-serialisable report."""
    return {"schema": "repro-telemetry-report-v1", "rows": rows}


def timeline_rows(workloads: list[Workload],
                  machine: MachineConfig,
                  variant: str = "auto",
                  lookahead: int = 64,
                  window: int | None = None,
                  cache=None) -> list[dict]:
    """Run each workload with telemetry + timeline sampling enabled.

    Runs are **serial** (no worker pool): the flight recorder's span
    records live in-process, and forked workers would drop them.  Each
    run gets a fresh :class:`TimelineRecorder`; the resulting
    ``repro-timeline-v1`` snapshot rides the row (from the live run or
    from the disk cache — the snapshot is cached with the result).
    """
    rows = []
    for workload in workloads:
        recorder = TimelineRecorder(window=window)
        result = run_variant(workload, variant, machine,
                             lookahead=lookahead, telemetry=True,
                             timeline=recorder, cache=cache)
        rows.append({
            "workload": workload.name,
            "machine": machine.name,
            "variant": variant,
            "cycles": result.cycles,
            "instructions": result.instructions,
            "timeline": result.timeline,
        })
    return rows


def render_timeline(rows: list[dict]) -> str:
    """The timeline rows as per-run phase tables.

    One table per (workload, machine) run; one line per window with the
    window's IPC, per-level MPKI, TLB misses, MSHR high-water, and the
    timely/late prefetch split for that window.
    """
    out = []
    for row in rows:
        timeline = row.get("timeline")
        title = (f"{row['workload']} on {row['machine']} "
                 f"({row['variant']}) — "
                 f"window {timeline['window_cycles']} cycles"
                 if timeline else
                 f"{row['workload']} on {row['machine']} "
                 f"({row['variant']})")
        if not timeline or not timeline.get("windows"):
            out.append(title + "\n(no timeline windows recorded)\n")
            continue
        levels = list(timeline["windows"][0]["levels"])
        headers = (["Win", "End cycle", "Instr", "IPC"]
                   + [f"{lv} MPKI" for lv in levels]
                   + ["TLB", "MSHR", "Timely", "Late", "Timely%"])
        body = []
        for w in timeline["windows"]:
            outcomes = w.get("outcomes") or {}
            timely = outcomes.get("timely", 0)
            late = outcomes.get("late", 0)
            split = timely + late
            body.append(
                [w["index"], int(w["end_cycle"]), w["instructions"],
                 w["ipc"]]
                + [w["levels"][lv]["mpki"] for lv in levels]
                + [w["tlb_misses"], w["mshr_high_water"], timely, late,
                   100.0 * timely / split if split else 0.0])
        out.append(format_table(headers, body, title))
    return "\n".join(out)


def timeline_report_dict(rows: list[dict]) -> dict:
    """Timeline rows wrapped in a schema-tagged report."""
    return {"schema": "repro-timeline-report-v1", "rows": rows}
