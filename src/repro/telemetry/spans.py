"""Span-based tracing of the compile→simulate pipeline.

Where :mod:`repro.telemetry.timeline` watches *simulated* time, the
span recorder watches *wall-clock* time across the pipeline itself:
frontend compiles, each optimization pass (the same measurement the
``PassExecuted`` remark reports), fused-segment and trace-JIT compiles,
run-cache probes, and bench-runner jobs.  The records feed the Chrome
trace-event export (:mod:`repro.telemetry.perfetto`) as one span track
per pipeline stage, with trace-JIT compile/deopt events as instants.

The design mirrors :mod:`repro.remarks.emitter`: a context-scoped
recorder stack, so instrumentation sites call :func:`span` /
:func:`instant` unconditionally and pay nothing unless a recorder is
installed via :func:`recording`.  Spans are recorded in completion
order (a parent closes after its children), which is deterministic for
a deterministic pipeline; only the wall-clock timestamps vary run to
run, and the export's canonical form zeroes them.

Process scope: the recorder is in-process only.  Forked bench workers
(``run_specs`` with ``jobs > 1``) do not propagate their spans back,
like the trace report — drive runs serially when tracing.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

_ACTIVE: list["SpanRecorder"] = []


class SpanRecorder:
    """Append-only list of span/instant records with a private epoch.

    Timestamps are integer microseconds since the recorder was
    created, so a single recorder's records share one timebase.
    """

    def __init__(self):
        self._epoch = time.perf_counter()
        self.records: list[dict] = []

    def now_us(self) -> int:
        """Microseconds since this recorder's epoch."""
        return int((time.perf_counter() - self._epoch) * 1e6)

    def add_span(self, category: str, name: str, start_us: int,
                 dur_us: int, args: dict | None = None) -> None:
        """Record a completed span (used directly when the caller
        already measured the duration, e.g. the pass manager reusing
        the ``PassExecuted`` wall time)."""
        self.records.append({
            "type": "span", "category": category, "name": name,
            "start_us": int(start_us), "dur_us": max(0, int(dur_us)),
            "args": dict(args or {})})

    def add_instant(self, category: str, name: str,
                    args: dict | None = None) -> None:
        """Record a zero-duration event at the current time."""
        self.records.append({
            "type": "instant", "category": category, "name": name,
            "ts_us": self.now_us(), "args": dict(args or {})})

    def spans(self, category: str | None = None) -> list[dict]:
        """The recorded spans, optionally filtered by category."""
        return [r for r in self.records if r["type"] == "span"
                and (category is None or r["category"] == category)]

    def snapshot(self) -> dict:
        """JSON-safe export of the recorded pipeline (wire format).

        ``repro serve`` returns this on ``include=spans``; args are
        stringified where needed so the snapshot always serialises.
        """
        def safe(value):
            if isinstance(value, (bool, int, float, str)) or value is None:
                return value
            return repr(value)

        records = [dict(r, args={k: safe(v) for k, v in r["args"].items()})
                   for r in self.records]
        return {"schema": "repro-spans-v1", "records": records}


def active_recorder() -> SpanRecorder | None:
    """The innermost active recorder, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def recording(recorder: SpanRecorder):
    """Install ``recorder`` as the active span sink for the block."""
    _ACTIVE.append(recorder)
    try:
        yield recorder
    finally:
        _ACTIVE.pop()


@contextmanager
def span(category: str, name: str, **args):
    """Record a wall-clock span around the block (no-op when no
    recorder is active).

    Yields a dict the block may fill with result arguments (e.g. a
    cache probe setting ``hit``); they merge into ``args`` at close.
    """
    extra: dict = {}
    recorder = _ACTIVE[-1] if _ACTIVE else None
    if recorder is None:
        yield extra
        return
    start = recorder.now_us()
    try:
        yield extra
    finally:
        args.update(extra)
        recorder.add_span(category, name, start,
                          recorder.now_us() - start, args)


def instant(category: str, name: str, **args) -> None:
    """Record an instant event (no-op when no recorder is active)."""
    recorder = _ACTIVE[-1] if _ACTIVE else None
    if recorder is not None:
        recorder.add_instant(category, name, args)
