"""Core timing models.

Two dependency-driven models cover the paper's four systems:

* :class:`InOrderCore` (A53, Xeon Phi) — a scoreboarded in-order pipeline.
  Loads that miss beyond the last cache level *block* the pipeline ("it
  stalls on load misses", §6.1), so demand misses cannot overlap across
  iterations; software prefetches issue without blocking, which is where
  the large in-order speedups come from.

* :class:`OutOfOrderCore` (Haswell, A57) — an analytical out-of-order
  model: instructions fetch in program order at ``issue_width`` per
  cycle, bounded by a reorder buffer; they execute when operands are
  ready and retire in order.  Independent loads from different loop
  iterations overlap naturally up to the ROB/MSHR limits, which is why
  software prefetching gains less on these machines.

Both models charge every instruction an issue slot, so prefetch
instruction overhead (Fig. 8) costs real time.
"""

from __future__ import annotations

from .configs import MachineConfig
from .system import MemorySystem

#: Default ALU-op latency in cycles.
_ALU_LATENCY = 1.0
#: Multiply/divide latencies.
_LATENCIES = {"mul": 3.0, "sdiv": 12.0, "udiv": 12.0, "srem": 12.0,
              "urem": 12.0, "fadd": 3.0, "fsub": 3.0, "fmul": 4.0,
              "fdiv": 12.0}


class InOrderCore:
    """Scoreboarded in-order core with blocking demand misses."""

    def __init__(self, config: MachineConfig, memory: MemorySystem):
        if not config.in_order:
            raise ValueError(f"{config.name} is not an in-order core")
        self.config = config
        self.memory = memory
        self.issue_cost = 1.0 / config.issue_width
        self.time = 0.0
        # A demand load blocks the pipe if its latency exceeds the level
        # reachable without leaving the cache hierarchy.
        self._block_threshold = max(c.latency for c in config.caches) + 1.0
        self.instructions = 0

    def op(self, dep_ready: float, opcode: str = "") -> float:
        """Issue an ALU op; returns result-ready time."""
        self.instructions += 1
        issue = max(self.time + self.issue_cost, dep_ready)
        self.time = issue
        return issue + _LATENCIES.get(opcode, _ALU_LATENCY)

    def load(self, pc: int, addr: int, dep_ready: float) -> float:
        """Issue a demand load; returns data-ready time."""
        self.instructions += 1
        issue = max(self.time + self.issue_cost, dep_ready)
        ready = self.memory.load(pc, addr, issue)
        if ready - issue > self._block_threshold:
            self.time = ready  # pipeline stalls on the miss
        else:
            self.time = issue
        return ready

    def store(self, pc: int, addr: int, dep_ready: float) -> None:
        """Issue a store (fire-and-forget through the store buffer)."""
        self.instructions += 1
        issue = max(self.time + self.issue_cost, dep_ready)
        self.memory.store(pc, addr, issue)
        self.time = issue

    def prefetch(self, pc: int, addr: int, dep_ready: float) -> None:
        """Issue a software prefetch (never blocks on the data)."""
        self.instructions += 1
        issue = max(self.time + self.issue_cost, dep_ready)
        accepted = self.memory.prefetch(pc, addr, issue)
        self.time = accepted  # backpressure when MSHRs are exhausted

    def branch(self, dep_ready: float) -> None:
        """Issue a (perfectly predicted) branch."""
        self.instructions += 1
        self.time = max(self.time + self.issue_cost, dep_ready)

    @property
    def cycles(self) -> float:
        """Cycles elapsed so far."""
        return self.time


class OutOfOrderCore:
    """Analytical out-of-order core (ROB + in-order retire)."""

    def __init__(self, config: MachineConfig, memory: MemorySystem):
        if config.in_order:
            raise ValueError(f"{config.name} is not an out-of-order core")
        self.config = config
        self.memory = memory
        self.issue_cost = 1.0 / config.issue_width
        self.fetch_time = 0.0
        self.completion_max = 0.0
        # Ring buffer of retire times for ROB occupancy.
        self._rob = [0.0] * config.rob_size
        self._rob_head = 0
        self._last_retire = 0.0
        self.instructions = 0

    def _fetch(self) -> float:
        """Advance the in-order fetch/rename stage by one instruction."""
        slot = self._rob_head
        fetch = max(self.fetch_time + self.issue_cost, self._rob[slot])
        self.fetch_time = fetch
        return fetch

    def _retire(self, completion: float) -> None:
        retire = max(completion, self._last_retire)
        self._last_retire = retire
        self._rob[self._rob_head] = retire
        self._rob_head = (self._rob_head + 1) % len(self._rob)
        if completion > self.completion_max:
            self.completion_max = completion

    def op(self, dep_ready: float, opcode: str = "") -> float:
        """Issue an ALU op; returns result-ready time."""
        self.instructions += 1
        fetch = self._fetch()
        issue = max(fetch, dep_ready)
        done = issue + _LATENCIES.get(opcode, _ALU_LATENCY)
        self._retire(done)
        return done

    def load(self, pc: int, addr: int, dep_ready: float) -> float:
        """Issue a demand load; returns data-ready time."""
        self.instructions += 1
        fetch = self._fetch()
        issue = max(fetch, dep_ready)
        ready = self.memory.load(pc, addr, issue)
        self._retire(ready)
        return ready

    def store(self, pc: int, addr: int, dep_ready: float) -> None:
        """Issue a store; retires via the store buffer."""
        self.instructions += 1
        fetch = self._fetch()
        issue = max(fetch, dep_ready)
        self.memory.store(pc, addr, issue)
        self._retire(issue + _ALU_LATENCY)

    def prefetch(self, pc: int, addr: int, dep_ready: float) -> None:
        """Issue a software prefetch; the core never waits for the data."""
        self.instructions += 1
        fetch = self._fetch()
        issue = max(fetch, dep_ready)
        accepted = self.memory.prefetch(pc, addr, issue)
        self._retire(accepted + _ALU_LATENCY)

    def branch(self, dep_ready: float) -> None:
        """Issue a (perfectly predicted) branch."""
        self.instructions += 1
        fetch = self._fetch()
        issue = max(fetch, dep_ready)
        self._retire(issue + _ALU_LATENCY)

    @property
    def cycles(self) -> float:
        """Cycles elapsed so far (time of the last retirement)."""
        return max(self._last_retire, self.fetch_time)

    @property
    def time(self) -> float:
        """Alias for :attr:`cycles` (parity with :class:`InOrderCore`)."""
        return self.cycles


def make_core(config: MachineConfig, memory: MemorySystem):
    """Instantiate the right core model for ``config``."""
    if config.in_order:
        return InOrderCore(config, memory)
    return OutOfOrderCore(config, memory)
