"""Machine configurations for the paper's four systems (Table 1).

The numbers are first-order public microarchitecture parameters (cache
geometries from Table 1; latencies, widths and queue sizes from vendor
documentation), expressed in *core cycles*.  Absolute simulated cycle
counts are not meant to match the real machines — the reproduction
targets the performance *shapes* of §6 — but the qualitative factors the
paper identifies are all represented:

* out-of-order (Haswell, A57) vs. in-order (A53, Xeon Phi) latency
  tolerance, via ``in_order`` + ``rob_size``/``mshrs``;
* the A57's single concurrent page-table walk (``tlb_max_walks=1``);
* the Xeon Phi's high-latency GDDR5 (``dram_latency``);
* DRAM bandwidth ceilings (``dram_cycles_per_line``) for Fig. 9;
* transparent huge pages on Haswell (``page_bits`` override, Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    ways: int
    latency: int


@dataclass(frozen=True)
class MachineConfig:
    """Full description of one simulated system.

    :ivar issue_width: instructions issued per cycle.
    :ivar rob_size: effective out-of-order window in instructions.
        This is closer to the scheduler/issue-queue capacity than the
        architectural ROB: it bounds how far ahead the core discovers
        independent misses, which is what limits no-prefetch MLP.
    :ivar mshrs: maximum outstanding line fills (bounds memory-level
        parallelism, including that created by software prefetches).
    :ivar dram_cycles_per_line: channel occupancy per 64-byte line; the
        reciprocal of bandwidth in lines/cycle.
    :ivar tlb_max_walks: concurrent page-table walks supported.
    :ivar page_bits: log2 of the page size (12 = 4KiB; 21 = 2MiB huge
        pages).
    """

    name: str
    freq_ghz: float
    in_order: bool
    issue_width: int
    rob_size: int
    mshrs: int
    caches: tuple[CacheConfig, ...]
    dram_latency: int
    dram_cycles_per_line: float
    dram_contention_penalty: float = 0.0
    tlb_entries: int = 64
    tlb_walk_latency: int = 35
    tlb_max_walks: int = 2
    tlb_l2_entries: int = 512
    tlb_l2_latency: int = 10
    page_bits: int = 12
    hw_prefetch_distance: int = 4
    hw_prefetch_degree: int = 2
    line_size: int = 64

    def with_huge_pages(self) -> "MachineConfig":
        """This machine with 2 MiB transparent huge pages (Fig. 10)."""
        return replace(self, page_bits=21)

    def with_small_pages(self) -> "MachineConfig":
        """This machine with 4 KiB pages."""
        return replace(self, page_bits=12)


#: Intel Core i5-4570 (Haswell), 3.2 GHz, out-of-order.  32KiB L1D,
#: 256KiB L2, 8MiB L3, DDR3-1600 (~25.6 GB/s => 8 cycles/line at 3.2GHz).
#: Transparent huge pages are enabled in the paper's Haswell kernel.
HASWELL = MachineConfig(
    name="Haswell",
    freq_ghz=3.2,
    in_order=False,
    issue_width=4,
    rob_size=60,
    mshrs=9,
    caches=(
        CacheConfig(32 * 1024, 8, 4),
        CacheConfig(256 * 1024, 8, 12),
        CacheConfig(8 * 1024 * 1024, 16, 36),
    ),
    dram_latency=220,
    dram_cycles_per_line=8.0,
    dram_contention_penalty=40.0,
    tlb_entries=64,
    tlb_walk_latency=30,
    tlb_max_walks=2,
    tlb_l2_entries=1024,
    tlb_l2_latency=9,
    page_bits=21,  # transparent huge pages (Fig. 10 compares against 12)
)

#: Intel Xeon Phi 3120P (Knights Corner), 1.1 GHz, in-order.  32KiB L1D,
#: 512KiB L2, GDDR5 — high bandwidth but very high latency in core cycles.
XEON_PHI = MachineConfig(
    name="Xeon Phi",
    freq_ghz=1.1,
    in_order=True,
    issue_width=2,
    rob_size=0,
    mshrs=6,
    caches=(
        CacheConfig(32 * 1024, 8, 3),
        CacheConfig(512 * 1024, 8, 24),
    ),
    dram_latency=340,
    dram_cycles_per_line=6.0,
    dram_contention_penalty=30.0,
    tlb_entries=64,
    tlb_walk_latency=45,
    tlb_max_walks=2,
    tlb_l2_entries=128,
    tlb_l2_latency=12,
    page_bits=12,
)

#: ARM Cortex-A57 (Nvidia TX1), 1.9 GHz, out-of-order.  32KiB L1D,
#: 2MiB L2, LPDDR4.  Only one page-table walk at a time (§6.1).
A57 = MachineConfig(
    name="A57",
    freq_ghz=1.9,
    in_order=False,
    issue_width=3,
    rob_size=40,
    mshrs=5,
    caches=(
        CacheConfig(32 * 1024, 2, 4),
        CacheConfig(2 * 1024 * 1024, 16, 21),
    ),
    dram_latency=180,
    dram_cycles_per_line=9.0,
    dram_contention_penalty=30.0,
    tlb_entries=48,
    tlb_walk_latency=45,
    tlb_max_walks=1,
    tlb_l2_entries=1024,
    tlb_l2_latency=10,
    page_bits=12,
)

#: ARM Cortex-A53 (Odroid C2), 2.0 GHz, in-order.  32KiB L1D, 1MiB L2,
#: DDR3.
A53 = MachineConfig(
    name="A53",
    freq_ghz=2.0,
    in_order=True,
    issue_width=2,
    rob_size=0,
    mshrs=2,
    caches=(
        CacheConfig(32 * 1024, 4, 3),
        CacheConfig(1 * 1024 * 1024, 16, 15),
    ),
    dram_latency=190,
    dram_cycles_per_line=10.0,
    dram_contention_penalty=30.0,
    tlb_entries=48,
    tlb_walk_latency=35,
    tlb_max_walks=1,
    tlb_l2_entries=512,
    tlb_l2_latency=10,
    page_bits=12,
)

#: The four systems of Table 1, in the paper's presentation order.
ALL_SYSTEMS = (HASWELL, A57, A53, XEON_PHI)


def system_by_name(name: str) -> MachineConfig:
    """Look up one of the Table 1 systems by (case-insensitive) name."""
    for config in ALL_SYSTEMS:
        if config.name.lower() == name.lower():
            return config
    raise KeyError(f"unknown system {name!r}; "
                   f"choose from {[c.name for c in ALL_SYSTEMS]}")
