"""Set-associative cache model with fill-time tracking.

Each cached line remembers when its fill completes, so a demand access to
a line that is *in flight* (e.g. just software-prefetched) waits only for
the remaining fill latency — the mechanism behind the paper's "offset too
small" behaviour, where a late prefetch hides only part of the miss.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Hit/miss counters for one cache level."""

    hits: int = 0
    misses: int = 0
    prefetch_hits: int = 0
    prefetch_fills: int = 0
    evictions: int = 0
    dirty_evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total demand accesses."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Demand hit rate in [0, 1]."""
        return self.hits / self.accesses if self.accesses else 0.0

    def snapshot(self) -> dict:
        """All counters plus derived rates as a plain dict."""
        snap = dataclasses.asdict(self)
        snap["accesses"] = self.accesses
        snap["hit_rate"] = self.hit_rate
        return snap


class Cache:
    """One level of set-associative, LRU, write-allocate cache.

    :param size_bytes: total capacity.
    :param ways: associativity.
    :param line_size: line size in bytes (64 throughout the paper).
    :param latency: access latency in cycles when the line is resident.
    """

    def __init__(self, name: str, size_bytes: int, ways: int,
                 line_size: int = 64, latency: int = 4):
        lines = size_bytes // line_size
        if lines % ways:
            raise ValueError("capacity must divide evenly into ways")
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_size = line_size
        self.latency = latency
        self.num_sets = lines // ways
        # Per set: {tag: [fill_time, dirty]}; dict preserves insertion
        # order and we re-insert on touch, giving LRU.
        self._sets: list[dict[int, list]] = [
            {} for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def _set_and_tag(self, line_addr: int) -> tuple[dict, int]:
        return self._sets[line_addr % self.num_sets], line_addr

    def sets_of(self, lines):
        """Vectorized set indices for an int64 line-address array.

        Batch entry point for the vectorized tier: numpy's int64 ``%``
        and ``&`` match Python's floor-modulo for every line address,
        so the indices are bit-identical to ``line % num_sets``.
        """
        n = self.num_sets
        if n & (n - 1) == 0:
            return lines & (n - 1)
        return lines % n

    def lookup(self, line_addr: int, *, touch: bool = True) -> float | None:
        """Return the line's fill time if resident (marking it MRU)."""
        lines, tag = self._set_and_tag(line_addr)
        entry = lines.get(tag)
        if entry is None:
            return None
        if touch:
            del lines[tag]
            lines[tag] = entry
        return entry[0]

    def insert(self, line_addr: int, fill_time: float,
               dirty: bool = False) -> bool:
        """Install a line (evicting LRU if the set is full).

        :returns: True when a *dirty* line was evicted (the caller
            charges the writeback at the memory-side level).
        """
        lines, tag = self._set_and_tag(line_addr)
        dirty_evicted = False
        if tag in lines:
            dirty = dirty or lines[tag][1]
            del lines[tag]
        elif len(lines) >= self.ways:
            oldest = next(iter(lines))
            dirty_evicted = lines[oldest][1]
            del lines[oldest]
            self.stats.evictions += 1
            if dirty_evicted:
                self.stats.dirty_evictions += 1
        lines[tag] = [fill_time, dirty]
        return dirty_evicted

    def mark_dirty(self, line_addr: int) -> None:
        """Flag a resident line as modified (no-op when absent)."""
        lines, tag = self._set_and_tag(line_addr)
        entry = lines.get(tag)
        if entry is not None:
            entry[1] = True

    def contains(self, line_addr: int) -> bool:
        """Residence test without LRU side effects."""
        lines, tag = self._set_and_tag(line_addr)
        return tag in lines

    def invalidate_all(self) -> None:
        """Drop every line (used between benchmark repetitions)."""
        for s in self._sets:
            s.clear()

    def snapshot(self) -> dict:
        """Geometry and statistics as a plain dict (JSON-ready)."""
        return {
            "name": self.name,
            "size_bytes": self.size_bytes,
            "ways": self.ways,
            "latency": self.latency,
            "stats": self.stats.snapshot(),
        }

    def __repr__(self) -> str:
        return (f"<Cache {self.name} {self.size_bytes // 1024}KiB "
                f"{self.ways}-way {self.latency}cy>")
