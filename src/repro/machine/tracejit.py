"""Trace-JIT execution tier: compile hot loop paths to closures.

The third (and fastest) execution tier, above the reference dispatch
loop and the fused-segment fast path:

1. **Profile** — the interpreter's dispatch loop counts visits to every
   basic block of a function (a superset of back-edge counting: a loop
   header crosses the threshold after ``threshold`` iterations).
2. **Record** — once a block is hot, the dispatcher records the dynamic
   block path of one full loop iteration: the sequence of blocks
   executed until control returns to the hot block.  Recording aborts
   (and blacklists the header) when the path leaves the loop (``ret``),
   revisits a non-header block (an inner loop — which gets its own
   trace instead), grows past :data:`_MAX_BLOCKS`/:data:`_MAX_OPS`, or
   contains an unfusable instruction (calls, allocations).
3. **Compile** — the recorded path is compiled to one generated-Python
   closure via the shared :class:`~repro.machine.fastexec._Emitter`,
   with register slots lowered to function locals, the core's
   architectural state hoisted into locals across the whole loop, the
   memory system's hot-line/TLB fast path inlined per site, and phi
   moves emitted as parallel local copies.  The loop then runs as a
   native ``while`` with *no* per-block dispatch until a guard fires.

Guards and deoptimization
-------------------------

* **Side exit** (in-trace): each conditional branch is guarded on its
  recorded direction; a mismatch applies the other edge's phi moves and
  returns control (with the correct successor block) to the fused tier.
* **Cold line / TLB miss / MSHR pressure** (in-trace): the inlined
  memory fast path falls back to the full reference walk
  (``_demand_fast`` / ``_prefetch_miss_fast``) exactly as fused
  segments do — a *local* deoptimization that stays in the trace.
* **Yield budget** (in-trace): traces take the remaining instruction
  budget to the next ``yield_every`` boundary and exit at exactly the
  block boundary the reference engine would yield at, so multicore
  interleaving is schedule-identical.
* **Memory-system mode change** (at entry): a trace records the
  ``ms.fastpath`` flag it was compiled under; attaching a telemetry
  collector mid-run flips the flag, the entry guard fails, the trace is
  discarded (``TraceDeopt``) and the loop falls back to the fused tier
  (and may re-trace under the new mode, now emitting instrumented
  reference walks).
* **Low yield** (at exit): a trace that keeps side-exiting without
  completing iterations is discarded and its header blacklisted.

Equivalence: compiled traces execute the same arithmetic in the same
order as the fused tier (which replays the reference engine bit-for-
bit); instruction/branch/memory-op counters are charged in bulk at
trace exit with identical totals.  The equivalence matrix in
``tests/test_tracejit.py`` drives all tiers against each other.

The tier is gated by ``REPRO_SIM_TRACEJIT`` (default off) and requires
the fast path; ``REPRO_SIM_TRACEJIT_THRESHOLD`` tunes the hotness
threshold (default 16 visits).
"""

from __future__ import annotations

import os
import warnings

from ..remarks import emit as remark_emit
from ..telemetry.spans import instant, span
from .fastexec import _Emitter, _FUSABLE, compile_source

#: Budget passed to traces when the run never yields.
NO_BUDGET = 1 << 62

#: Recording limits: a path longer than this is not a profitable loop
#: body (and would specialize an outer loop to one inner trip count).
_MAX_BLOCKS = 64
#: Cap on total ops in a trace (bounds generated-source size).
_MAX_OPS = 2000

_COUNT_LOCALS = (("loads", "_nl"), ("stores", "_nst"),
                 ("prefetches", "_npf"))


def tracejit_enabled(explicit: bool | None = None) -> bool:
    """Resolve the trace-JIT gate: explicit setting, else the
    ``REPRO_SIM_TRACEJIT`` environment variable (default off)."""
    if explicit is not None:
        return bool(explicit)
    return os.environ.get("REPRO_SIM_TRACEJIT", "0") == "1"


#: Default hotness threshold (block visits before recording).
DEFAULT_THRESHOLD = 16
#: Bounds on the env-tunable threshold.  Below 2 a block would record
#: on its first visit; above the max the tier would simply never fire.
MIN_THRESHOLD = 2
MAX_THRESHOLD = 1 << 20


def _threshold_fallback(raw: str, used: int, reason: str) -> int:
    """Report a bad ``REPRO_SIM_TRACEJIT_THRESHOLD`` and carry on.

    Mirrors telemetry's ``_ring_fallback``: an invalid value must never
    abort a run — it produces a Python warning plus (when remarks are
    being collected) a ``TraceJitThresholdClamped`` warning remark, and
    the clamped/default threshold is used.
    """
    warnings.warn(
        f"REPRO_SIM_TRACEJIT_THRESHOLD={raw!r} is {reason}; "
        f"using {used}", RuntimeWarning, stacklevel=3)
    remark_emit("warning", "trace-jit", "TraceJitThresholdClamped",
                value=raw, used=used, reason=reason)
    return used


def trace_threshold() -> int:
    """Block-visit count that triggers recording (env-tunable).

    Invalid values fall back to :data:`DEFAULT_THRESHOLD` and
    out-of-range ones clamp to :data:`MIN_THRESHOLD` /
    :data:`MAX_THRESHOLD`, in both cases with a warning (and a remark
    when collecting) instead of a crash.
    """
    raw = os.environ.get("REPRO_SIM_TRACEJIT_THRESHOLD")
    if not raw:
        return DEFAULT_THRESHOLD
    try:
        n = int(raw)
    except ValueError:
        return _threshold_fallback(raw, DEFAULT_THRESHOLD,
                                   "not an integer")
    if n < MIN_THRESHOLD:
        return _threshold_fallback(raw, MIN_THRESHOLD,
                                   "below the minimum")
    if n > MAX_THRESHOLD:
        return _threshold_fallback(raw, MAX_THRESHOLD,
                                   "above the maximum")
    return n


class Trace:
    """One compiled trace plus its execution statistics."""

    __slots__ = ("fn", "func", "header", "header_name", "fp", "blocks",
                 "ops", "entries", "iters", "insts", "vector",
                 "vbatches", "viters")

    def __init__(self, func: str, header: int, header_name: str,
                 blocks: int, ops: int):
        self.fn = None
        self.func = func
        self.header = header
        self.header_name = header_name
        self.fp = False
        self.blocks = blocks
        self.ops = ops
        self.entries = 0
        self.iters = 0
        self.insts = 0
        #: Vectorized batch driver (repro.machine.vectorsim), or None.
        #: A runtime batch-guard failure clears it; the batch counters
        #: below survive so reports stay honest after a deopt.
        self.vector = None
        self.vbatches = 0
        self.viters = 0

    def report(self) -> dict:
        """Hot-report row (JSON-ready)."""
        return {"function": self.func, "header": self.header_name,
                "blocks": self.blocks, "ops": self.ops,
                "entries": self.entries, "iterations": self.iters,
                "instructions": self.insts,
                "vector_batches": self.vbatches,
                "vector_iterations": self.viters}


class FunctionState:
    """Per-compiled-function trace state."""

    __slots__ = ("traces", "counts", "blacklist")

    def __init__(self):
        #: header block index -> compiled :class:`Trace`.
        self.traces: dict[int, Trace] = {}
        #: block index -> visit count (dispatch-tier visits only).
        self.counts: dict[int, int] = {}
        #: headers that must not be (re-)recorded.
        self.blacklist: set[int] = set()


class TraceJIT:
    """The per-interpreter trace-JIT controller.

    :param mode: ``"inorder"`` or ``"ooo"`` (matches the fused tier).
    :param bind: the fuse bindings (``memory``/``stats``/``core``/``ms``).
    :param threshold: override the recording threshold (tests).
    :param vector: additionally plan vectorized batch drivers for
        single-block traces (:mod:`repro.machine.vectorsim`).
    """

    def __init__(self, mode: str, bind: dict,
                 threshold: int | None = None, vector: bool = False):
        self.mode = mode
        self.bind = bind
        self.threshold = (trace_threshold() if threshold is None
                          else max(2, threshold))
        self.max_blocks = _MAX_BLOCKS
        self.max_ops = _MAX_OPS
        self.vector = vector
        self._states: dict[str, FunctionState] = {}
        #: every trace ever compiled (for the hot report).
        self.traces: list[Trace] = []
        self.compiles = 0
        self.deopts = 0
        self.aborts = 0
        self.vector_compiles = 0
        self.vector_deopts = 0

    def state_for(self, compiled) -> FunctionState:
        """The (lazily created) trace state for one compiled function."""
        name = compiled.function.name
        state = self._states.get(name)
        if state is None:
            state = self._states[name] = FunctionState()
        return state

    # -- recording outcomes --------------------------------------------

    def finish(self, compiled, state: FunctionState, path: list[int],
               selfloops: set[int] | None = None) -> Trace | None:
        """Validate a recorded path and compile it; returns the trace.

        ``selfloops`` holds blocks the recorder saw branch straight back
        to themselves (single-block inner loops); they compile to a
        nested ``while`` with both branch directions resolved in-trace.
        """
        header = path[0]
        selfloops = selfloops or set()
        raw = compiled.raw_blocks
        nops = 0
        for pos, bi in enumerate(path):
            insts, term, _charge = raw[bi]
            nxt = path[pos + 1] if pos + 1 < len(path) else header
            kind = term[0]
            if bi in selfloops:
                # A nested while needs a real two-way branch with one
                # self edge and the recorded successor on the other.
                ok = (kind == "br" and not term[1] and bi != nxt
                      and ((term[3] == bi and term[5] == nxt)
                           or (term[5] == bi and term[3] == nxt)))
            elif kind == "jmp":
                ok = term[1] == nxt
            elif kind == "br":
                ok = nxt in (term[3], term[5])
            else:  # ret cannot re-reach the header
                ok = False
            if not ok:
                return self.abort(state, header, "bad-path")
            for inst in insts:
                if inst[0] not in _FUSABLE:
                    return self.abort(state, header, "unfusable")
            nops += len(insts)
        if nops > self.max_ops:
            return self.abort(state, header, "too-many-ops")
        if self.vector:
            # An outer trace would run a nested inner loop inside its
            # own while, bypassing dispatch — and with it any vector
            # driver already compiled for the inner header.  Keep the
            # dispatcher in charge of vector-planned inner loops.
            for bi in selfloops:
                inner = state.traces.get(bi)
                if inner is not None and inner.vector is not None:
                    return self.abort(state, header, "vector-inner-loop")
        with span("tracejit", "compile", function=compiled.function.name,
                 blocks=len(path), ops=nops):
            trace = self._compile(compiled, path, nops, selfloops)
        state.traces[header] = trace
        self.traces.append(trace)
        self.compiles += 1
        remark_emit("analysis", "trace-jit", "TraceCompiled",
                    function=trace.func, header=trace.header_name,
                    blocks=len(path), ops=nops, nested=len(selfloops),
                    mode=self.mode, fastpath=trace.fp)
        instant("tracejit", "TraceCompiled", function=trace.func,
                header=trace.header_name, blocks=len(path), ops=nops)
        if self.vector and len(path) == 1 and not selfloops:
            from .vectorsim import plan_vector
            plan_vector(compiled, trace, self)
        return trace

    def abort(self, state: FunctionState, header: int, reason: str
              ) -> None:
        """Abandon a recording and blacklist its header."""
        state.blacklist.add(header)
        self.aborts += 1
        remark_emit("analysis", "trace-jit", "TraceDeopt",
                    header=str(header), reason=reason, stage="record")
        instant("tracejit", "TraceDeopt", header=str(header),
                reason=reason, stage="record")
        return None

    def deopt(self, state: FunctionState, trace: Trace, reason: str
              ) -> None:
        """Discard a compiled trace after an entry/exit guard failure."""
        state.traces.pop(trace.header, None)
        if reason == "low-yield":
            state.blacklist.add(trace.header)
        else:
            # Allow re-recording under the new configuration.
            state.counts[trace.header] = 0
        self.deopts += 1
        remark_emit("analysis", "trace-jit", "TraceDeopt",
                    function=trace.func, header=trace.header_name,
                    reason=reason, stage="run",
                    iterations=trace.iters, entries=trace.entries)
        instant("tracejit", "TraceDeopt", function=trace.func,
                header=trace.header_name, reason=reason, stage="run")

    # -- reporting ------------------------------------------------------

    def report(self) -> list[dict]:
        """Per-trace stats, hottest (most instructions) first."""
        rows = [t.report() for t in self.traces]
        rows.sort(key=lambda r: r["instructions"], reverse=True)
        return rows

    # -- the trace compiler --------------------------------------------

    def _compile(self, compiled, path: list[int], nops: int,
                 selfloops: set[int]) -> Trace:
        env: dict = {}
        em = _Emitter(self.mode, self.bind, env, locals_tier=True)
        raw = compiled.raw_blocks
        header = path[0]
        n = len(path)
        have = {field: False for field, _ in _COUNT_LOCALS}
        for pos, bi in enumerate(path):
            insts, term, charge = raw[bi]
            nxt = path[pos + 1] if pos + 1 < n else header
            nested = bi in selfloops
            start = len(em.body)
            before = dict(em.counts)
            for inst in insts:
                em.op(inst)
            em.out(f"_n += {charge}")
            em.out("_nb += 1")
            for field, local in _COUNT_LOCALS:
                delta = em.counts[field] - before[field]
                if delta:
                    have[field] = True
                    em.out(f"{local} += {delta}")
            if nested:
                self._selfloop_tail(em, raw[bi][1], bi)
                body = em.body
                for k in range(start, len(body)):
                    body[k] = "    " + body[k]
                body.insert(start, "while 1:")
                body.insert(start, "_bx = 0")
                em.out("if _bx:")
                em.out(f"    _x = {bi}")
                em.out("    break")
            else:
                self._terminator(em, term, nxt)
            if pos + 1 == n:
                em.out("_it += 1")
            em.out(f"if _n >= budget: _x = {nxt}; break")

        inner = em.body
        em.body = []
        em.core_prologue()
        core_pro = em.body
        em.body = []
        em.core_epilogue()
        core_epi = em.body

        slots = sorted(em.slots)
        lines = ["def _trace(regs, ready, budget):"]
        for s in slots:
            lines.append(f"    r{s} = regs[{s}]")
            lines.append(f"    t{s} = ready[{s}]")
        lines.extend(f"    {line}" for line in core_pro)
        lines.append("    _n = 0")
        lines.append("    _nb = 0")
        lines.append("    _it = 0")
        for field, local in _COUNT_LOCALS:
            if have[field]:
                lines.append(f"    {local} = 0")
        stat_locals = sorted(em.stat_locals)
        for local, _target in stat_locals:
            lines.append(f"    {local} = 0")
        lines.append("    while 1:")
        lines.extend(f"        {line}" for line in inner)
        for s in slots:
            lines.append(f"    regs[{s}] = r{s}")
            lines.append(f"    ready[{s}] = t{s}")
        lines.extend(f"    {line}" for line in core_epi)
        lines.append("    _core.instructions += _n")
        lines.append("    _stats.instructions += _n")
        lines.append("    _stats.branches += _nb")
        for field, local in _COUNT_LOCALS:
            if have[field]:
                lines.append(f"    _stats.{field} += {local}")
        for local, target in stat_locals:
            lines.append(f"    if {local}:")
            lines.append(f"        {target} += {local}")
        lines.append("    _tr.entries += 1")
        lines.append("    _tr.iters += _it")
        lines.append("    _tr.insts += _n")
        lines.append("    return _x, _n")
        src = "\n".join(lines) + "\n"

        trace = Trace(compiled.function.name, header,
                      compiled.block_names[header], n, nops)
        trace.fp = self.bind["ms"].fastpath
        env["_tr"] = trace
        trace.fn = compile_source(src, env, "_trace", "<compiled-trace>")
        return trace

    def _selfloop_tail(self, em: _Emitter, term: tuple, bi: int) -> None:
        """Terminator of a nested single-block loop: no guard exits.

        The loop edge re-enters the nested ``while`` (checking the
        yield budget at the iteration boundary, exactly where the
        reference engine checks it); the other edge breaks out to the
        rest of the trace.  ``_bx`` signals a budget exit to the
        enclosing trace loop (Python has no labelled break).
        """
        _, cc, c, tgt, tmoves, e, emoves = term
        em.branch(em.rdy(c))
        em.out(f"if {em.reg(c)}:")
        if tgt == bi:
            self._moves(em, tmoves, "    ")
            em.out("    if _n >= budget:")
            em.out("        _bx = 1")
            em.out("        break")
            em.out("else:")
            self._moves(em, emoves, "    ")
            em.out("    break")
        else:
            self._moves(em, tmoves, "    ")
            em.out("    break")
            em.out("else:")
            self._moves(em, emoves, "    ")
            em.out("    if _n >= budget:")
            em.out("        _bx = 1")
            em.out("        break")

    def _terminator(self, em: _Emitter, term: tuple, nxt: int) -> None:
        """Branch timing + recorded-direction guard + phi moves."""
        kind = term[0]
        if kind == "jmp":
            _, _tgt, moves = term
            em.branch(None)
            self._moves(em, moves, "")
            return
        _, cc, c, tgt, tmoves, e, emoves = term
        em.branch(None if cc else em.rdy(c))
        cond = repr(c) if cc else em.reg(c)
        if tgt == e:
            # Degenerate branch: both edges reach the same block; only
            # the phi moves depend on the condition, so no guard exit.
            em.out(f"if {cond}:")
            if not self._moves(em, tmoves, "    "):
                em.out("    pass")
            em.out("else:")
            if not self._moves(em, emoves, "    "):
                em.out("    pass")
        elif nxt == tgt:
            em.out(f"if {cond}:")
            if not self._moves(em, tmoves, "    "):
                em.out("    pass")
            em.out("else:")
            self._moves(em, emoves, "    ")
            em.out(f"    _x = {e}")
            em.out("    break")
        else:
            em.out(f"if {cond}:")
            self._moves(em, tmoves, "    ")
            em.out(f"    _x = {tgt}")
            em.out("    break")
            em.out("else:")
            if not self._moves(em, emoves, "    "):
                em.out("    pass")

    @staticmethod
    def _moves(em: _Emitter, moves: tuple, indent: str) -> bool:
        """Parallel-copy phi moves on locals (read all, then write)."""
        if not moves:
            return False
        for k, (dst, c, v) in enumerate(moves):
            em.out(f"{indent}_p{k} = {repr(v) if c else em.reg(v)}")
            em.out(f"{indent}_q{k} = {'0.0' if c else em.rdy(v)}")
        for k, (dst, _c, _v) in enumerate(moves):
            em.out(f"{indent}{em.reg(dst)} = _p{k}")
            em.out(f"{indent}{em.rdy(dst)} = _q{k}")
        return True
