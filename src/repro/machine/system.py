"""The memory system: cache hierarchy + TLB + DRAM + hardware prefetcher.

:class:`MemorySystem` services every memory operation of a core and
returns data-ready times; it owns the state that software prefetching
manipulates.  Several memory systems may share one
:class:`~repro.machine.dram.DRAMChannel` to model multicore bandwidth
contention (Fig. 9).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from .cache import Cache
from .configs import MachineConfig
from .dram import DRAMChannel
from .hwprefetch import StridePrefetcher
from .tlb import TLB


@dataclass
class MemoryStats:
    """Aggregate counters across the hierarchy."""

    demand_accesses: int = 0
    demand_misses_to_dram: int = 0
    sw_prefetches: int = 0
    sw_prefetch_dram_fills: int = 0
    hw_prefetch_fills: int = 0


class _MSHRFile:
    """Bounded set of outstanding line fills (miss-status registers)."""

    def __init__(self, entries: int):
        self.entries = entries
        self._completions: list[float] = []

    def acquire(self, time: float) -> float:
        """Reserve an MSHR at ``time``; returns when one is available."""
        heap = self._completions
        while heap and heap[0] <= time:
            heapq.heappop(heap)
        if len(heap) >= self.entries:
            return heapq.heappop(heap)
        return time

    def occupy(self, completion: float) -> None:
        """Mark an MSHR busy until ``completion``."""
        heapq.heappush(self._completions, completion)


class MemorySystem:
    """One core's view of the memory hierarchy.

    :param config: machine description.
    :param dram: optionally a shared channel (multicore); a private one is
        created otherwise.
    """

    def __init__(self, config: MachineConfig,
                 dram: DRAMChannel | None = None):
        self.config = config
        self.line_size = config.line_size
        self.caches = [
            Cache(f"L{i + 1}", c.size_bytes, c.ways, config.line_size,
                  c.latency)
            for i, c in enumerate(config.caches)]
        self.tlb = TLB(config.tlb_entries, config.page_bits,
                       config.tlb_walk_latency, config.tlb_max_walks,
                       l2_entries=config.tlb_l2_entries,
                       l2_latency=config.tlb_l2_latency)
        self.dram = dram if dram is not None else DRAMChannel(
            config.dram_latency, config.dram_cycles_per_line,
            config.dram_contention_penalty)
        self.prefetcher = StridePrefetcher(
            distance=config.hw_prefetch_distance,
            degree=config.hw_prefetch_degree)
        self.mshrs = _MSHRFile(config.mshrs)
        self.stats = MemoryStats()

    # -- public access points ---------------------------------------------

    def load(self, pc: int, addr: int, time: float) -> float:
        """Demand load; returns data-ready time."""
        return self._demand(pc, addr, time, is_write=False)

    def store(self, pc: int, addr: int, time: float) -> float:
        """Store (write-allocate); returns line-owned time.  Cores treat
        stores as fire-and-forget through a store buffer; dirty lines
        cost a DRAM writeback when they eventually leave the hierarchy."""
        return self._demand(pc, addr, time, is_write=True)

    def prefetch(self, pc: int, addr: int, time: float) -> float:
        """Software prefetch; returns the *issue-accept* time (the core
        never waits for the data).  Fills L1 (prefetcht0 semantics).

        Prefetch-triggered TLB walks happen off the critical path (they
        occupy a walker but do not delay the core); the only backpressure
        is a full MSHR file, which stalls issue until a fill retires —
        this is what throttles software-prefetch memory parallelism.
        """
        self.stats.sw_prefetches += 1
        line = addr // self.line_size
        t = self.tlb.translate(addr, time)  # prefetches do fill the TLB
        for level, cache in enumerate(self.caches):
            fill = cache.lookup(line)
            if fill is not None:
                # Promote into the levels above.
                ready = max(t, fill) + cache.latency
                for upper in self.caches[:level]:
                    upper.insert(line, ready)
                    upper.stats.prefetch_fills += 1
                return time
        # Miss everywhere: bring the line from DRAM.
        start = self.mshrs.acquire(t)
        done = self.dram.access(start)
        self.mshrs.occupy(done)
        self.stats.sw_prefetch_dram_fills += 1
        self._fill_all(line, done, request_time=start)
        self.caches[0].stats.prefetch_fills += 1
        # The core resumes once the request is accepted (MSHR acquired);
        # translation latency itself is off the critical path.
        return max(time, start - (t - time))

    # -- internals ----------------------------------------------------------

    def _demand(self, pc: int, addr: int, time: float,
                is_write: bool = False) -> float:
        self.stats.demand_accesses += 1
        line = addr // self.line_size
        t = self.tlb.translate(addr, time)
        ready = self._hierarchy_access(line, t, is_write)
        self._train_hw_prefetcher(pc, line, t)
        return ready

    def _hierarchy_access(self, line: int, t: float,
                          is_write: bool = False) -> float:
        llc = self.caches[-1]
        for level, cache in enumerate(self.caches):
            fill = cache.lookup(line)
            if fill is not None:
                if fill <= t:
                    cache.stats.hits += 1
                else:
                    # In-flight fill (e.g. a software prefetch that was
                    # issued too late): wait out the remainder.
                    cache.stats.prefetch_hits += 1
                ready = max(t, fill) + cache.latency
                for upper in self.caches[:level]:
                    if upper.insert(line, ready) and upper is llc:
                        self.dram.writeback(t)
                if is_write:
                    for c in self.caches:
                        c.mark_dirty(line)
                return ready
            cache.stats.misses += 1
        start = self.mshrs.acquire(t)
        done = self.dram.access(start)
        self.mshrs.occupy(done)
        self.stats.demand_misses_to_dram += 1
        self._fill_all(line, done, dirty=is_write, request_time=start)
        return done

    def _fill_all(self, line: int, fill_time: float,
                  dirty: bool = False,
                  request_time: float | None = None) -> None:
        """Install a line at every level, charging LLC dirty evictions.

        Writebacks are charged at the *request* time: scheduling them at
        the future fill time would block later fills for a whole memory
        latency rather than one line's worth of bandwidth.
        """
        llc = self.caches[-1]
        wb_time = fill_time if request_time is None else request_time
        for cache in self.caches:
            if cache.insert(line, fill_time, dirty) and cache is llc:
                self.dram.writeback(wb_time)

    def _train_hw_prefetcher(self, pc: int, line: int, t: float) -> None:
        fills = self.prefetcher.observe(pc, line)
        if not fills:
            return
        # Hardware prefetches fill into the L2 (not L1) and consume DRAM
        # bandwidth, but bypass the core's MSHRs (dedicated queue).
        llc = self.caches[-1]
        for fill_line in fills:
            if any(c.contains(fill_line) for c in self.caches):
                continue
            done = self.dram.access(t)
            for cache in self.caches[1:] or self.caches:
                if cache.insert(fill_line, done) and cache is llc:
                    self.dram.writeback(t)
            self.stats.hw_prefetch_fills += 1

    # -- bookkeeping ---------------------------------------------------------

    def flush(self) -> None:
        """Reset all cached state (between benchmark variants)."""
        for cache in self.caches:
            cache.invalidate_all()
        self.tlb.flush()
        self.prefetcher.reset()

    @property
    def l1(self) -> Cache:
        """The first-level cache."""
        return self.caches[0]
