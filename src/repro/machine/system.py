"""The memory system: cache hierarchy + TLB + DRAM + hardware prefetcher.

:class:`MemorySystem` services every memory operation of a core and
returns data-ready times; it owns the state that software prefetching
manipulates.  Several memory systems may share one
:class:`~repro.machine.dram.DRAMChannel` to model multicore bandwidth
contention (Fig. 9).
"""

from __future__ import annotations

import heapq
from dataclasses import asdict, dataclass
from heapq import heappop, heappush
from typing import TYPE_CHECKING

from .cache import Cache
from .configs import MachineConfig
from .dram import DRAMChannel
from .fastexec import fastpath_enabled
from .hwprefetch import StridePrefetcher
from .tlb import TLB

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry.collector import TelemetryCollector

#: Hot-line memo entries are dropped wholesale past this size so the
#: memo cannot outgrow the simulated working set it shadows.
_HOT_LIMIT = 1 << 20


@dataclass
class MemoryStats:
    """Aggregate counters across the hierarchy."""

    demand_accesses: int = 0
    demand_misses_to_dram: int = 0
    sw_prefetches: int = 0
    sw_prefetch_dram_fills: int = 0
    hw_prefetch_fills: int = 0

    def snapshot(self) -> dict:
        """All counters as a plain dict (stable keys, JSON-ready)."""
        return asdict(self)


class _MSHRFile:
    """Bounded set of outstanding line fills (miss-status registers)."""

    def __init__(self, entries: int):
        self.entries = entries
        self._completions: list[float] = []

    def acquire(self, time: float) -> float:
        """Reserve an MSHR at ``time``; returns when one is available."""
        heap = self._completions
        while heap and heap[0] <= time:
            heapq.heappop(heap)
        if len(heap) >= self.entries:
            return heapq.heappop(heap)
        return time

    def occupy(self, completion: float) -> None:
        """Mark an MSHR busy until ``completion``."""
        heapq.heappush(self._completions, completion)


class MemorySystem:
    """One core's view of the memory hierarchy.

    :param config: machine description.
    :param dram: optionally a shared channel (multicore); a private one is
        created otherwise.
    :param fastpath: enable the hot-line memo (``None`` = follow
        ``REPRO_SIM_FASTPATH``).
    :param telemetry: a :class:`~repro.telemetry.TelemetryCollector` to
        observe this hierarchy.  Attaching one disables the hot-line
        memo so every access takes the instrumented reference walk —
        cycle counts are unchanged (the walks are bit-identical; the
        hooks are pure observation), only wall-clock speed drops.

    The **hot-line memo** is the demand-path fast path: ``_hot`` maps a
    line address to the ``[fill_time, dirty]`` entry list the L1 held
    for it when it was last resolved.  A later access to the same line
    takes the fast path only when (a) the L1 set still holds *that very
    list object* — :meth:`Cache.insert` always installs a fresh list, so
    identity proves the line was neither evicted nor refilled since —
    (b) the fill has completed, and (c) the page is still in the L1 TLB.
    The fast path then replays exactly the side effects the full walk
    would have had (LRU touches, hit counters, dirty marking, prefetcher
    training), keeping cycle counts bit-identical to the slow path.
    """

    def __init__(self, config: MachineConfig,
                 dram: DRAMChannel | None = None,
                 fastpath: bool | None = None,
                 telemetry: "TelemetryCollector | None" = None):
        self.config = config
        self.line_size = config.line_size
        self.caches = [
            Cache(f"L{i + 1}", c.size_bytes, c.ways, config.line_size,
                  c.latency)
            for i, c in enumerate(config.caches)]
        self.tlb = TLB(config.tlb_entries, config.page_bits,
                       config.tlb_walk_latency, config.tlb_max_walks,
                       l2_entries=config.tlb_l2_entries,
                       l2_latency=config.tlb_l2_latency)
        self.dram = dram if dram is not None else DRAMChannel(
            config.dram_latency, config.dram_cycles_per_line,
            config.dram_contention_penalty)
        self.prefetcher = StridePrefetcher(
            distance=config.hw_prefetch_distance,
            degree=config.hw_prefetch_degree)
        self.mshrs = _MSHRFile(config.mshrs)
        self.stats = MemoryStats()
        self.telemetry = telemetry
        self.fastpath = (fastpath_enabled(fastpath)
                         and telemetry is None)
        self._hot: dict[int, list] = {}
        self._l1 = self.caches[0]
        self._page_bits = self.tlb.page_bits
        self._tlb_pages = self.tlb._pages  # cleared in place by flush()

    # -- public access points ---------------------------------------------

    def lines_of(self, addrs):
        """Vectorized line indices for an int64 address array.

        Batch entry point for the vectorized tier
        (:mod:`repro.machine.vectorsim`): bit-identical to the per-access
        ``addr // line_size`` because numpy's int64 ``>>`` and ``//``
        share Python's floor semantics for every address.
        """
        size = self.line_size
        if size & (size - 1) == 0:
            return addrs >> (size.bit_length() - 1)
        return addrs // size

    def load(self, pc: int, addr: int, time: float) -> float:
        """Demand load; returns data-ready time."""
        if self.fastpath:
            line = addr // self.line_size
            entry = self._hot.get(line)
            if entry is not None and entry[0] <= time:
                l1 = self._l1
                lines = l1._sets[line % l1.num_sets]
                if lines.get(line) is entry and \
                        (addr >> self._page_bits) in self._tlb_pages:
                    return self._fast_hit(pc, addr, line, time, lines,
                                          entry, False)
            return self._demand_fast(pc, addr, time, False)
        return self._demand(pc, addr, time, is_write=False)

    def store(self, pc: int, addr: int, time: float) -> float:
        """Store (write-allocate); returns line-owned time.  Cores treat
        stores as fire-and-forget through a store buffer; dirty lines
        cost a DRAM writeback when they eventually leave the hierarchy."""
        if self.fastpath:
            line = addr // self.line_size
            entry = self._hot.get(line)
            if entry is not None and entry[0] <= time:
                l1 = self._l1
                lines = l1._sets[line % l1.num_sets]
                if lines.get(line) is entry and \
                        (addr >> self._page_bits) in self._tlb_pages:
                    return self._fast_hit(pc, addr, line, time, lines,
                                          entry, True)
            return self._demand_fast(pc, addr, time, True)
        return self._demand(pc, addr, time, is_write=True)

    def _fast_hit(self, pc: int, addr: int, line: int, time: float,
                  lines: dict, entry: list, is_write: bool) -> float:
        """Replay a guaranteed L1-line + L1-TLB hit without the walk."""
        self.stats.demand_accesses += 1
        tlb = self.tlb
        pages = self._tlb_pages
        page = addr >> self._page_bits
        del pages[page]
        pages[page] = None
        tlb.stats.hits += 1
        del lines[line]
        lines[line] = entry
        l1 = self._l1
        l1.stats.hits += 1
        if is_write:
            entry[1] = True
            for c in self.caches[1:]:
                ce = c._sets[line % c.num_sets].get(line)
                if ce is not None:
                    ce[1] = True
        self._train_hw_prefetcher(pc, line, time)
        return time + l1.latency

    def prefetch(self, pc: int, addr: int, time: float) -> float:
        """Software prefetch; returns the *issue-accept* time (the core
        never waits for the data).  Fills L1 (prefetcht0 semantics).

        Prefetch-triggered TLB walks happen off the critical path (they
        occupy a walker but do not delay the core); the only backpressure
        is a full MSHR file, which stalls issue until a fill retires —
        this is what throttles software-prefetch memory parallelism.
        """
        line = addr // self.line_size
        if self.fastpath:
            # Fast path: the line is provably still in the L1 and the
            # page in the L1 TLB, so the slow path would hit at level 0
            # and return ``time`` untouched (no fill-time check needed:
            # a prefetch hit never waits).  Replay the touches/counters.
            entry = self._hot.get(line)
            if entry is not None:
                l1 = self._l1
                lines = l1._sets[line % l1.num_sets]
                page = addr >> self._page_bits
                if lines.get(line) is entry and page in self._tlb_pages:
                    self.stats.sw_prefetches += 1
                    pages = self._tlb_pages
                    del pages[page]
                    pages[page] = None
                    self.tlb.stats.hits += 1
                    del lines[line]
                    lines[line] = entry
                    return time
            return self._prefetch_miss_fast(pc, addr, line, time)
        tel = self.telemetry
        self.stats.sw_prefetches += 1
        t = self.tlb.translate(addr, time)  # prefetches do fill the TLB
        for level, cache in enumerate(self.caches):
            fill = cache.lookup(line)
            if fill is not None:
                # Promote into the levels above.
                ready = max(t, fill) + cache.latency
                for upper in self.caches[:level]:
                    upper.insert(line, ready)
                    upper.stats.prefetch_fills += 1
                self._memoize(line)
                if tel is not None:
                    tel.prefetch_redundant(pc, line, time, cache.name)
                return time
        # Miss everywhere: bring the line from DRAM.
        start = self.mshrs.acquire(t)
        done = self.dram.access(start)
        self.mshrs.occupy(done)
        self.stats.sw_prefetch_dram_fills += 1
        self._fill_all(line, done, request_time=start)
        self.caches[0].stats.prefetch_fills += 1
        self._memoize(line)
        # The core resumes once the request is accepted (MSHR acquired);
        # translation latency itself is off the critical path.
        accepted = max(time, start - (t - time))
        if tel is not None:
            if start > t:
                tel.prefetch_dropped(pc, line, time)
                tel.account_backpressure(accepted - time)
            else:
                tel.prefetch_issued(pc, line, time, done)
        return accepted

    def _memoize(self, line: int) -> None:
        """Record the L1's current entry list for ``line`` (which every
        demand access and prefetch leaves resident in the L1)."""
        if not self.fastpath:
            return
        hot = self._hot
        if len(hot) > _HOT_LIMIT:
            hot.clear()
        l1 = self._l1
        entry = l1._sets[line % l1.num_sets].get(line)
        if entry is not None:
            hot[line] = entry

    # -- inlined fast-path walks --------------------------------------------
    #
    # ``_demand_fast`` / ``_prefetch_miss_fast`` are hand-inlined copies of
    # ``_demand`` / the ``prefetch`` slow path: they perform *exactly* the
    # same state mutations in the same order (TLB probe, per-level lookup
    # touches and counters, MSHR heap, DRAM channel, per-level fills with
    # eviction/writeback charging, prefetcher training, hot-line memo) but
    # collapse ~a dozen method calls and attribute chases into one frame.
    # Any behavioural change here is a bug; the property tests compare the
    # two engines stat-for-stat.

    def _demand_fast(self, pc: int, addr: int, time: float,
                     is_write: bool) -> float:
        self.stats.demand_accesses += 1
        line = addr // self.line_size
        # TLB.translate, L1 probe inlined.
        page = addr >> self._page_bits
        pages = self._tlb_pages
        if page in pages:
            del pages[page]
            pages[page] = None
            self.tlb.stats.hits += 1
            t = time
        else:
            t = self.tlb._miss(page, time)
        caches = self.caches
        l1_entry = None
        for level, cache in enumerate(caches):
            lines = cache._sets[line % cache.num_sets]
            entry = lines.get(line)
            if entry is not None:
                fill = entry[0]
                del lines[line]
                lines[line] = entry
                cst = cache.stats
                if fill <= t:
                    cst.hits += 1
                    ready = t + cache.latency
                else:
                    cst.prefetch_hits += 1
                    ready = fill + cache.latency
                if level:
                    # Promote into the levels above; the walk just proved
                    # the line absent there, so Cache.insert reduces to
                    # evict-if-full + install (an upper level is never the
                    # LLC, so no writeback charge — same as insert()'s
                    # ignored return on this path).
                    for upper in caches[:level]:
                        cl = upper._sets[line % upper.num_sets]
                        if len(cl) >= upper.ways:
                            oldest = next(iter(cl))
                            de = cl[oldest][1]
                            del cl[oldest]
                            cst = upper.stats
                            cst.evictions += 1
                            if de:
                                cst.dirty_evictions += 1
                        cl[line] = [ready, False]
                else:
                    l1_entry = entry
                if is_write:
                    for c in caches:
                        ce = c._sets[line % c.num_sets].get(line)
                        if ce is not None:
                            ce[1] = True
                break
            cache.stats.misses += 1
        else:
            # Miss everywhere: MSHR acquire + DRAM access + fills, inlined.
            mshrs = self.mshrs
            heap = mshrs._completions
            while heap and heap[0] <= t:
                heappop(heap)
            start = heappop(heap) if len(heap) >= mshrs.entries else t
            d = self.dram
            cpl = d.cycles_per_line
            nf = d._next_free
            s = start if start > nf else nf
            d._next_free = s + cpl
            done = s + d.latency + d.contention_penalty * (d._sharers - 1)
            dst = d.stats
            dst.accesses += 1
            dst.busy_cycles += cpl
            dst.queue_cycles += s - start
            heappush(heap, done)
            self.stats.demand_misses_to_dram += 1
            # _fill_all(line, done, dirty=is_write, request_time=start):
            # the line just missed at every level, so it is absent from
            # each set and insert() reduces to evict-if-full + install.
            llc = caches[-1]
            for cache in caches:
                cl = cache._sets[line % cache.num_sets]
                if len(cl) >= cache.ways:
                    oldest = next(iter(cl))
                    dirty_evicted = cl[oldest][1]
                    del cl[oldest]
                    cst = cache.stats
                    cst.evictions += 1
                    if dirty_evicted:
                        cst.dirty_evictions += 1
                        if cache is llc:
                            nf = d._next_free
                            ws = start if start > nf else nf
                            d._next_free = ws + cpl
                            dst.writebacks += 1
                            dst.busy_cycles += cpl
                new = [done, is_write]
                cl[line] = new
                if l1_entry is None:
                    l1_entry = new
            ready = done
        pf = self.prefetcher
        if line != pf._last_line:
            fills = pf.observe(pc, line)
            if fills:
                self._issue_hw_fills(fills, t)
        hot = self._hot
        if len(hot) > _HOT_LIMIT:
            hot.clear()
        if l1_entry is None:
            l1 = caches[0]
            l1_entry = l1._sets[line % l1.num_sets].get(line)
        hot[line] = l1_entry
        return ready

    def _prefetch_miss_fast(self, pc: int, addr: int, line: int,
                            time: float) -> float:
        self.stats.sw_prefetches += 1
        page = addr >> self._page_bits
        pages = self._tlb_pages
        if page in pages:
            del pages[page]
            pages[page] = None
            self.tlb.stats.hits += 1
            t = time
        else:
            t = self.tlb._miss(page, time)
        caches = self.caches
        hot = self._hot
        for level, cache in enumerate(caches):
            lines = cache._sets[line % cache.num_sets]
            entry = lines.get(line)
            if entry is not None:
                fill = entry[0]
                del lines[line]
                lines[line] = entry
                if level:
                    ready = (t if fill <= t else fill) + cache.latency
                    # Inlined Cache.insert: the walk proved the line
                    # absent above ``level`` (evict-if-full + install).
                    l1 = caches[0]
                    for upper in caches[:level]:
                        cl = upper._sets[line % upper.num_sets]
                        if len(cl) >= upper.ways:
                            oldest = next(iter(cl))
                            de = cl[oldest][1]
                            del cl[oldest]
                            cst = upper.stats
                            cst.evictions += 1
                            if de:
                                cst.dirty_evictions += 1
                        new = [ready, False]
                        cl[line] = new
                        upper.stats.prefetch_fills += 1
                        if upper is l1:
                            entry = new
                if len(hot) > _HOT_LIMIT:
                    hot.clear()
                hot[line] = entry
                return time
        # Miss everywhere (no per-level miss counters on prefetch walks).
        mshrs = self.mshrs
        heap = mshrs._completions
        while heap and heap[0] <= t:
            heappop(heap)
        start = heappop(heap) if len(heap) >= mshrs.entries else t
        d = self.dram
        cpl = d.cycles_per_line
        nf = d._next_free
        s = start if start > nf else nf
        d._next_free = s + cpl
        done = s + d.latency + d.contention_penalty * (d._sharers - 1)
        dst = d.stats
        dst.accesses += 1
        dst.busy_cycles += cpl
        dst.queue_cycles += s - start
        heappush(heap, done)
        self.stats.sw_prefetch_dram_fills += 1
        llc = caches[-1]
        l1_entry = None
        for cache in caches:
            cl = cache._sets[line % cache.num_sets]
            if len(cl) >= cache.ways:
                oldest = next(iter(cl))
                dirty_evicted = cl[oldest][1]
                del cl[oldest]
                cst = cache.stats
                cst.evictions += 1
                if dirty_evicted:
                    cst.dirty_evictions += 1
                    if cache is llc:
                        nf = d._next_free
                        ws = start if start > nf else nf
                        d._next_free = ws + cpl
                        dst.writebacks += 1
                        dst.busy_cycles += cpl
            new = [done, False]
            cl[line] = new
            if l1_entry is None:
                l1_entry = new
        caches[0].stats.prefetch_fills += 1
        if len(hot) > _HOT_LIMIT:
            hot.clear()
        hot[line] = l1_entry
        return max(time, start - (t - time))

    # -- internals ----------------------------------------------------------

    def _demand(self, pc: int, addr: int, time: float,
                is_write: bool = False) -> float:
        self.stats.demand_accesses += 1
        line = addr // self.line_size
        t = self.tlb.translate(addr, time)
        if self.telemetry is not None:
            self.telemetry.account_translation(t - time)
        ready = self._hierarchy_access(line, t, is_write)
        self._train_hw_prefetcher(pc, line, t)
        self._memoize(line)
        return ready

    def _hierarchy_access(self, line: int, t: float,
                          is_write: bool = False) -> float:
        tel = self.telemetry
        llc = self.caches[-1]
        for level, cache in enumerate(self.caches):
            fill = cache.lookup(line)
            if fill is not None:
                if fill <= t:
                    cache.stats.hits += 1
                else:
                    # In-flight fill (e.g. a software prefetch that was
                    # issued too late): wait out the remainder.
                    cache.stats.prefetch_hits += 1
                ready = max(t, fill) + cache.latency
                if tel is not None:
                    tel.demand_hit(line, cache.name, t, fill, ready)
                for upper in self.caches[:level]:
                    if upper.insert(line, ready) and upper is llc:
                        self.dram.writeback(t)
                if is_write:
                    for c in self.caches:
                        c.mark_dirty(line)
                return ready
            cache.stats.misses += 1
        start = self.mshrs.acquire(t)
        done = self.dram.access(start)
        self.mshrs.occupy(done)
        self.stats.demand_misses_to_dram += 1
        if tel is not None:
            tel.demand_miss(line, t, done)
        self._fill_all(line, done, dirty=is_write, request_time=start)
        return done

    def _fill_all(self, line: int, fill_time: float,
                  dirty: bool = False,
                  request_time: float | None = None) -> None:
        """Install a line at every level, charging LLC dirty evictions.

        Writebacks are charged at the *request* time: scheduling them at
        the future fill time would block later fills for a whole memory
        latency rather than one line's worth of bandwidth.
        """
        llc = self.caches[-1]
        wb_time = fill_time if request_time is None else request_time
        for cache in self.caches:
            if cache.insert(line, fill_time, dirty) and cache is llc:
                self.dram.writeback(wb_time)

    def _train_hw_prefetcher(self, pc: int, line: int, t: float) -> None:
        fills = self.prefetcher.observe(pc, line)
        if fills:
            self._issue_hw_fills(fills, t)

    def _issue_hw_fills(self, fills: list[int], t: float) -> None:
        # Hardware prefetches fill into the L2 (not L1) and consume DRAM
        # bandwidth, but bypass the core's MSHRs (dedicated queue).
        caches = self.caches
        llc = caches[-1]
        dram = self.dram
        targets = caches[1:] or caches
        for fill_line in fills:
            for c in caches:
                if fill_line in c._sets[fill_line % c.num_sets]:
                    break
            else:
                done = dram.access(t)
                # Inlined Cache.insert: the residence scan above proved
                # the line absent everywhere (evict-if-full + install).
                for cache in targets:
                    cl = cache._sets[fill_line % cache.num_sets]
                    if len(cl) >= cache.ways:
                        oldest = next(iter(cl))
                        de = cl[oldest][1]
                        del cl[oldest]
                        cst = cache.stats
                        cst.evictions += 1
                        if de:
                            cst.dirty_evictions += 1
                            if cache is llc:
                                dram.writeback(t)
                    cl[fill_line] = [done, False]
                self.stats.hw_prefetch_fills += 1

    # -- bookkeeping ---------------------------------------------------------

    def flush(self) -> None:
        """Reset all cached state (between benchmark variants)."""
        for cache in self.caches:
            cache.invalidate_all()
        self.tlb.flush()
        self.prefetcher.reset()
        self._hot.clear()

    def mshr_occupancy(self, time: float) -> int:
        """Outstanding line fills still in flight at ``time``.

        A pure read for the timeline sampler: completed-but-unpruned
        heap entries are *not* counted, and the heap itself is left
        untouched (pruning happens only on the acquire paths, so a
        sampler must never pop).
        """
        return sum(1 for done in self.mshrs._completions if done > time)

    def snapshot(self) -> dict:
        """Every statistic of the hierarchy as one nested dict.

        The uniform export point for telemetry, reporting, and tests —
        callers should prefer this over reaching into per-component
        ``stats`` attributes.
        """
        return {
            "memory": self.stats.snapshot(),
            "caches": [cache.snapshot() for cache in self.caches],
            "tlb": self.tlb.snapshot(),
            "dram": self.dram.snapshot(),
        }

    @property
    def l1(self) -> Cache:
        """The first-level cache."""
        return self.caches[0]
