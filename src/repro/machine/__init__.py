"""Execution-driven timing simulator.

Composes a functional IR interpreter with cache, TLB, DRAM, hardware-
prefetcher, and core timing models.  The four systems of the paper's
Table 1 are available as :data:`HASWELL`, :data:`XEON_PHI`, :data:`A57`
and :data:`A53`.
"""

from .cache import Cache, CacheStats
from .configs import (A53, A57, ALL_SYSTEMS, HASWELL, XEON_PHI, CacheConfig,
                      MachineConfig, system_by_name)
from .core import InOrderCore, OutOfOrderCore, make_core
from .dram import DRAMChannel, DRAMStats
from .hwprefetch import StridePrefetcher
from .interpreter import (Interpreter, RunResult, RunStats,
                          static_prefetch_pcs)
from .memory import Allocation, Memory, MemoryFault
from .multicore import MulticoreResult, run_multicore
from .system import MemoryStats, MemorySystem
from .tlb import TLB, TLBStats

__all__ = [
    "Cache", "CacheStats",
    "A53", "A57", "ALL_SYSTEMS", "HASWELL", "XEON_PHI", "CacheConfig",
    "MachineConfig", "system_by_name",
    "InOrderCore", "OutOfOrderCore", "make_core",
    "DRAMChannel", "DRAMStats",
    "StridePrefetcher",
    "Interpreter", "RunResult", "RunStats", "static_prefetch_pcs",
    "Allocation", "Memory", "MemoryFault",
    "MulticoreResult", "run_multicore",
    "MemoryStats", "MemorySystem",
    "TLB", "TLBStats",
]
