"""Vectorized batch execution tier: numpy address streams over traces.

The fourth execution tier, above the trace-JIT.  When the trace-JIT
compiles a *single-block* hot loop whose memory operations form a
dependence-free stream — the ``array[func(ids[i])]`` shape the paper's
prefetching pass targets — this module plans a **batch driver** for the
trace: the full per-iteration value and address vectors are
materialized with numpy up front, the batched cache/TLB model
(:meth:`MemorySystem.lines_of`, :meth:`TLB.pages_of`,
:meth:`Cache.sets_of`) precomputes every access's line, set and page
index array-wise, and one generated timing loop replays the
issue/retire and hot-line arithmetic of the fused tier over the
precomputed streams — no interpreter dispatch, no per-iteration address
arithmetic, no Python attribute walks.

Equivalence contract
--------------------

The tier is bit-identical to the reference engine on every counter
(cycles, per-level hits/misses, TLB, prefetch outcomes):

* **functional** effects are computed with numpy int64/float64
  arithmetic whose wrap-around (two's complement mod 2^64) matches the
  interpreter's ``wrap64`` exactly; the only *unwrapped* operation in
  the reference engine is GEP, which is guarded to ``|value| <= 2^61``
  so the int64 computation cannot wrap (a guard failure deopts);
* **iteration counts** come from evaluating the exit condition's
  dependence cone over the batch and trimming the batch to the first
  exit, so no speculative memory access past the exit ever happens;
* **timing** is emitted by the same :class:`~repro.machine.fastexec.
  _Emitter` transcription the fused and trace tiers use (functional
  emission suppressed), driven sequentially over the precomputed
  per-access line/set/page streams — LRU touches, hit counters, miss
  walks and prefetch classification happen in exactly the reference
  order;
* **read-modify-write** streams (histogram updates) and their
  dependent values are replayed by a scalar commit loop in program
  order, so intra-batch store→load forwarding is exact;
* batch boundaries land exactly on the trace tier's yield-budget
  boundaries, so timeline windows and multicore schedules are
  unchanged.

Deoptimization discipline (same as the trace-JIT): *plan-time*
rejections (multi-block loops, pointer-chasing address streams,
loop-carried memory dependences feeding the exit condition, unsupported
ops) leave the trace running on the trace-JIT tier and emit a
``VectorDeopt`` remark with ``stage="plan"``; *run-time* guard failures
(allocation range, alias between a gathered and a stored allocation,
GEP overflow, invariant operands outside int64) happen **before any
architectural state is mutated**, return ``None`` so the interpreter
re-runs the batch on the compiled trace, clear ``trace.vector`` and
emit ``VectorDeopt`` with ``stage="run"``.  A third, post-commit kind
(reason ``short-batches``) retires plans whose batches stay too short
to amortize the numpy dispatch cost — see :data:`PROBE_BATCHES`.

Gated by ``REPRO_SIM_VECTOR`` (default off); enabling it implies the
trace-JIT machinery.  Known non-candidates: pointer-chasing loops
(HJ-8, Graph500 — the next address depends on the previous load) and
multi-block loop bodies (HJ-2) stay on the trace tier, by design.
"""

from __future__ import annotations

import operator
import os

import numpy as _np

from ..remarks import emit as remark_emit
from ..telemetry.spans import instant, span
from .fastexec import (_BIN, _CAST, _CMP, _GEP, _LOAD, _PREFETCH,
                       _SELECT, _STORE, _Emitter, compile_source)
from .memory import MemoryFault

#: Iterations per batch; larger batches amortize numpy dispatch,
#: smaller ones bound the planning horizon (and dead-lane work past a
#: loop exit).  Budget boundaries always trim the batch first.
MAX_BATCH = 4096

#: Magnitude bound on GEP operands: results stay below 2^62, so int64
#: arithmetic cannot wrap where the reference engine computes exactly.
GMAX = 1 << 61

#: Adaptive short-batch bail-out: a loop that keeps re-entering with
#: only a handful of iterations per batch (an inner loop over short
#: rows, say) pays the driver's fixed numpy dispatch cost without
#: amortizing it and runs *slower* than the scalar trace.  After
#: ``PROBE_BATCHES`` committed batches, a trace averaging fewer than
#: ``MIN_AVG_ITERS`` iterations per batch drops its vector plan
#: (``VectorDeopt``, reason ``short-batches``) and the scalar trace
#: keeps the loop.  Checked after the commit point, so nothing needs
#: undoing and every tier stays bit-identical.
PROBE_BATCHES = 8
MIN_AVG_ITERS = 32

_M64 = (1 << 64) - 1

#: 2^63 as a float, for the fptosi range guard.
_I64_EDGE = 9.223372036854775808e18

#: Commutative reductions: opcode -> numpy ufunc name.
_RED_OPS = {"add": "add", "fadd": "add", "mul": "multiply",
            "fmul": "multiply", "and": "bitwise_and",
            "or": "bitwise_or", "xor": "bitwise_xor"}
#: Left-only reductions (phi must be the first operand).
_RED_LEFT = {"sub": "subtract", "fsub": "subtract"}

_CMP_OPS = {"eq": "==", "oeq": "==", "ne": "!=", "one": "!=",
            "slt": "<", "olt": "<", "sle": "<=", "ole": "<=",
            "sgt": ">", "ogt": ">", "sge": ">=", "oge": ">="}
_UCMP_OPS = {"ult": "<", "ule": "<=", "ugt": ">", "uge": ">="}

#: int64 binops emitted as direct numpy expressions (wrap-identical).
_VEC_I64 = {"add": "({a} + {b})", "sub": "({a} - {b})",
            "mul": "({a} * {b})", "and": "({a} & {b})",
            "or": "({a} | {b})", "xor": "({a} ^ {b})",
            "shl": "({a} << ({b} & 63))",
            "ashr": "({a} >> ({b} & 63))",
            "lshr": "_lshr({a}, {b})"}
_VEC_FLOAT = {"fadd": "({a} + {b})", "fsub": "({a} - {b})",
              "fmul": "({a} * {b})"}


def vector_enabled(explicit: bool | None = None) -> bool:
    """Resolve the vector-tier gate: explicit setting, else the
    ``REPRO_SIM_VECTOR`` environment variable (default off)."""
    if explicit is not None:
        return bool(explicit)
    return os.environ.get("REPRO_SIM_VECTOR", "0") == "1"


# -- runtime helpers bound into generated drivers -----------------------

def _full(value, n):
    """Length-``n`` array of one runtime value, typed like the
    interpreter (int64/float64); OverflowError when an int does not
    fit, which the driver turns into a deopt."""
    out = _np.empty(
        n, dtype=_np.float64 if isinstance(value, float) else _np.int64)
    out[...] = value
    return out


def _inv(value):
    """1-element array for a loop-invariant operand (broadcasts, and
    forces numpy arithmetic so wrap-around applies)."""
    return _np.asarray(
        [value],
        dtype=_np.float64 if isinstance(value, float) else _np.int64)


def _vb(x, n):
    """Broadcast a scalar/1-element/0-d operand to length ``n``."""
    x = _np.asarray(x)
    if x.ndim == 0 or x.shape[0] != n:
        return _np.broadcast_to(x, (n,))
    return x


def _lshr(a, b):
    """Logical shift right, wrap-identical to the interpreter's
    ``(a & M64) >> (b & 63)`` on Python ints."""
    sh = _np.asarray(b) & 63
    return (_np.asarray(a).astype(_np.uint64)
            >> sh.astype(_np.uint64)).astype(_np.int64)


def _u(x):
    """Unsigned view for unsigned comparisons."""
    if isinstance(x, _np.ndarray):
        return x.astype(_np.uint64)
    return x & _M64


def _rng(x, m):
    """True when any element's magnitude exceeds ``m`` (guards)."""
    if isinstance(x, _np.ndarray):
        return bool((x > m).any() or (x < -m).any())
    return x > m or x < -m


def _nz(x):
    """True when any element is zero (fdiv guard)."""
    return bool(_np.any(_np.asarray(x) == 0.0))


def _fpbad(x):
    """True when a float vector has values fptosi cannot convert the
    way Python's ``int()`` would (NaN/inf/beyond int64)."""
    x = _np.asarray(x)
    return not bool(_np.all(_np.isfinite(x) & (_np.abs(x) < _I64_EDGE)))


def _gather(data, idx):
    """Gather ``[data[i] for i in idx]`` (itemgetter beats a Python
    loop; the 1-element case returns a scalar, so wrap it)."""
    if len(idx) == 1:
        return [data[idx[0]]]
    return operator.itemgetter(*idx)(data)


class _Reject(Exception):
    """Plan-time rejection; ``reason`` feeds the VectorDeopt remark."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class _TimingEmitter(_Emitter):
    """The fused-tier emitter with functional effects suppressed.

    Timing arithmetic (issue/retire, hot-line probe, miss-walk
    fallbacks, stat batching) is inherited unchanged; the memory hooks
    are redirected at the precomputed per-iteration streams: ``_a{j}``
    (address), ``_e{j}`` (line), ``_y{j}`` (L1 set), ``_g{j}`` (page)
    are the loop variables the batch driver zips in.
    """

    def __init__(self, mode: str, bind: dict, env: dict):
        super().__init__(mode, bind, env, locals_tier=True)
        self.functional = False
        self.mem_idx = 0

    def _site_stream(self) -> None:
        j = self.mem_idx
        self.mem_idx += 1
        self.out(f"addr = _a{j}")
        if self.hot is not None:
            self.hot["line"] = f"_e{j}"
            self.hot["set"] = f"_y{j}"
            self.hot["page"] = f"(page := _g{j})"

    def load_functional(self, dst, ptr_spec, site) -> None:
        self._site_stream()

    def store_functional(self, val_spec, ptr_spec, site) -> None:
        self._site_stream()

    def prefetch_functional(self, ptr_spec) -> None:
        self._site_stream()


def plan_vector(compiled, trace, tj) -> None:
    """Plan a batch driver for a freshly compiled single-block trace.

    On success ``trace.vector`` holds the driver (``fn(regs, ready,
    budget) -> (block, used) | None``); on rejection the trace keeps
    running on the trace-JIT tier and a plan-stage ``VectorDeopt``
    remark records why.
    """
    try:
        with span("vectorsim", "compile", function=trace.func,
                  header=trace.header_name, ops=trace.ops):
            fn, info = _Planner(compiled, trace, tj).build()
    except _Reject as rej:
        tj.vector_deopts += 1
        remark_emit("analysis", "vectorsim", "VectorDeopt",
                    function=trace.func, header=trace.header_name,
                    reason=rej.reason, stage="plan")
        instant("vectorsim", "VectorDeopt", function=trace.func,
                header=trace.header_name, reason=rej.reason,
                stage="plan")
        return
    trace.vector = fn
    tj.vector_compiles += 1
    remark_emit("analysis", "vectorsim", "VectorBatchCompiled",
                function=trace.func, header=trace.header_name, **info)
    instant("vectorsim", "VectorBatchCompiled", function=trace.func,
            header=trace.header_name, **info)


def _make_deopt(trace, tj):
    """The runtime deopt closure: clears the driver (the batch
    counters survive for reports), emits the remark, returns ``None``
    so the interpreter re-runs the batch on the compiled trace.  Only
    reachable before the commit point, so no state needs undoing."""

    def _deopt(reason):
        trace.vector = None
        tj.vector_deopts += 1
        remark_emit("analysis", "vectorsim", "VectorDeopt",
                    function=trace.func, header=trace.header_name,
                    reason=reason, stage="run",
                    batches=trace.vbatches, iterations=trace.viters)
        instant("vectorsim", "VectorDeopt", function=trace.func,
                header=trace.header_name, reason=reason, stage="run")
        return None

    return _deopt


def _make_short_deopt(trace, tj):
    """The post-commit bail-out for persistently short batches: clears
    the driver and emits the remark, but (unlike :func:`_make_deopt`)
    the committed batch stands — the scalar trace takes over from the
    *next* loop entry."""

    def _short():
        trace.vector = None
        tj.vector_deopts += 1
        remark_emit("analysis", "vectorsim", "VectorDeopt",
                    function=trace.func, header=trace.header_name,
                    reason="short-batches", stage="run",
                    batches=trace.vbatches, iterations=trace.viters)
        instant("vectorsim", "VectorDeopt", function=trace.func,
                header=trace.header_name, reason="short-batches",
                stage="run")

    return _short


class _Planner:
    """One vectorization attempt over one single-block trace."""

    def __init__(self, compiled, trace, tj):
        self.compiled = compiled
        self.trace = trace
        self.tj = tj
        self.bind = tj.bind
        self.ms = tj.bind["ms"]
        insts, term, charge = compiled.raw_blocks[trace.header]
        self.insts = insts
        self.term = term
        self.charge = charge
        #: dst slot -> instruction (loads included).
        self.defs: dict[int, tuple] = {}
        self.chain: set[int] = set()
        self.phi_class: dict[int, tuple] = {}
        self.red_at_def: dict[int, int] = {}
        #: slots with an emitted vector variable ``v{slot}``.
        self.vec: set[int] = set()
        #: vector slots emitted post-trim (length ``_B``).
        self.post_slots: set[int] = set()
        self.const_val: dict[int, object] = {}
        self.invariants: set[int] = set()
        self.inv_raw: set[int] = set()
        self.pre: list[str] = []
        self.post: list[str] = []
        self.pre_names: list[str] = []
        #: memory sites in block order:
        #: (j, kind, inst, ptr_spec, dst_or_None, rmw)
        self.sites: list[tuple] = []
        self.env: dict = {}

    # -- operand resolution --------------------------------------------

    @staticmethod
    def _operands(inst) -> list[tuple]:
        kind = inst[0]
        if kind == _BIN or kind == _CMP:
            return [(inst[3], inst[4]), (inst[5], inst[6])]
        if kind == _SELECT:
            return [(inst[2], inst[3]), (inst[4], inst[5]),
                    (inst[6], inst[7])]
        if kind == _CAST:
            return [(inst[3], inst[4])]
        if kind == _GEP:
            return [(inst[3], inst[4]), (inst[5], inst[6])]
        if kind == _LOAD:
            return [(inst[3], inst[4])]
        if kind == _STORE:
            return [(inst[2], inst[3]), (inst[4], inst[5])]
        if kind == _PREFETCH:
            return [(inst[2], inst[3])]
        raise _Reject("unfusable")

    def _cval(self, c, v):
        """Plan-time constant value of an operand, or ``None``."""
        if c:
            return v
        if v in self.const_val:
            return self.const_val[v]
        return None

    def vsrc(self, c, v) -> tuple[str, bool]:
        """Vector source text for an operand + is-post-trim flag."""
        if c or v in self.const_val:
            cv = self._cval(c, v)
            if isinstance(cv, int) and not (
                    -(1 << 63) <= cv < (1 << 63)):
                # An out-of-int64 literal would silently build an
                # object-dtype array (no wrap-around) — bail out.
                raise _Reject("const-range")
            return repr(cv), False
        if v in self.chain:
            raise _Reject("value-depends-on-memory")
        if v in self.vec:
            return f"v{v}", v in self.post_slots
        if v in self.phi_class or v in self.defs:
            # A reduction phi read before its defining op, or a
            # forward reference: no vector exists yet.
            raise _Reject("recurrence-cycle")
        self.invariants.add(v)
        return f"_x{v}", False

    def ssrc(self, c, v, zips: dict) -> str:
        """Scalar source text for the commit loop.  Vector operands
        register a ``.tolist()`` zip stream."""
        if c or v in self.const_val:
            return repr(self._cval(c, v))
        if v in self.chain:
            return f"_s{v}"
        if v in self.vec:
            # _vb: a def computed purely from invariants is a
            # 1-element array and would silently truncate the zip.
            zips.setdefault(f"_w{v}", f"_vb(v{v}, _B).tolist()")
            return f"_w{v}"
        self.inv_raw.add(v)
        return f"_iv{v}"

    # -- plan phases ----------------------------------------------------

    def _parse_terminator(self):
        term = self.term
        header = self.trace.header
        if term[0] != "br":
            raise _Reject("loop-shape")
        _, cc, c, tgt, tmoves, e, emoves = term
        if tgt == header and e != header:
            self.self_moves, self.exit_moves = tmoves, emoves
            self.exit_block, self.exit_cmp = e, "=="
        elif e == header and tgt != header:
            self.self_moves, self.exit_moves = emoves, tmoves
            self.exit_block, self.exit_cmp = tgt, "!="
        else:
            raise _Reject("loop-shape")
        self.cc, self.cond = cc, c
        self.const_no_exit = False
        if cc:
            exits = (c == 0) if self.exit_cmp == "==" else (c != 0)
            if exits:
                # Exits after one iteration: not a loop worth batching.
                raise _Reject("loop-shape")
            self.const_no_exit = True

    def _scan(self):
        phi_slots = {dst for dst, _c, _v in self.self_moves}
        for inst in self.insts:
            kind = inst[0]
            if kind in (_STORE, _PREFETCH):
                continue
            dst = inst[1]
            if dst in self.defs or dst in phi_slots:
                raise _Reject("redef")
            self.defs[dst] = inst
        self.phi_slots = phi_slots

    def _pair_memory(self):
        store_specs = set()
        for inst in self.insts:
            if inst[0] == _STORE:
                store_specs.add((inst[4], inst[5]))
        j = 0
        rmw = set()
        self.site_at: dict[int, int] = {}
        for idx, inst in enumerate(self.insts):
            kind = inst[0]
            if kind == _LOAD:
                spec = (inst[3], inst[4])
                is_rmw = spec in store_specs
                if is_rmw:
                    rmw.add(inst[1])
                self.sites.append((j, kind, idx, spec, inst[1], is_rmw))
            elif kind == _STORE:
                self.sites.append(
                    (j, kind, idx, (inst[4], inst[5]), None, False))
            elif kind == _PREFETCH:
                self.sites.append(
                    (j, kind, idx, (inst[2], inst[3]), None, False))
            else:
                continue
            self.site_at[idx] = j
            j += 1
        self.rmw = rmw
        # Chain: everything data-dependent on an RMW load's value must
        # replay scalar, in program order, inside the commit loop.
        chain = set(rmw)
        for inst in self.insts:
            kind = inst[0]
            if kind in (_STORE, _PREFETCH, _LOAD):
                continue
            if any((not c) and v in chain
                   for c, v in self._operands(inst)):
                chain.add(inst[1])
        self.chain = chain
        # Addresses must never depend on the chain — that is a
        # loop-carried memory dependence the batch cannot reorder.
        for _j, _kind, _idx, spec, _dst, _is_rmw in self.sites:
            pc_const, p = spec
            if not pc_const and p in chain:
                raise _Reject("value-dependent-address")
        if not self.cc and self.cond in chain:
            raise _Reject("exit-depends-on-memory")

    def _classify_phis(self):
        for dst, c, v in self.self_moves:
            if c:
                self.phi_class[dst] = ("const", v)
            elif v == dst:
                self.phi_class[dst] = ("self",)
            elif v in self.phi_slots:
                raise _Reject("recurrence")
            elif v in self.defs:
                inst = self.defs[v]
                if inst[0] == _LOAD or v in self.chain:
                    raise _Reject("recurrence")
                cls = self._recurrence(dst, v, inst)
                if cls is None:
                    raise _Reject("recurrence")
                self.phi_class[dst] = cls
            else:
                self.phi_class[dst] = ("inv", v)

    def _recurrence(self, p: int, d: int, inst) -> tuple | None:
        if inst[0] != _BIN:
            return None
        _, _dst, _fn, ac, a, bc, b, opcode, bits = inst
        is_float = opcode in ("fadd", "fsub", "fmul")
        if not is_float and bits != 64:
            return None
        # Induction: integer add/sub of a loop-invariant step.
        if opcode in ("add", "sub"):
            step = None
            if not ac and a == p and not (not bc and b == p):
                step = (bc, b)
            elif opcode == "add" and not bc and b == p and \
                    not (not ac and a == p):
                step = (ac, a)
            if step is not None:
                sc, sv = step
                if sc or (sv not in self.defs
                          and sv not in self.phi_slots):
                    return ("ind", d, opcode, step)
        # Reduction: a left fold of a phi-free stream, replayed with
        # ufunc.accumulate (sequential by definition, so bit-exact for
        # floats; int64 wrap-around matches wrap64).
        x = None
        ufunc = None
        if opcode in _RED_OPS:
            if not ac and a == p and not (not bc and b == p):
                x, ufunc = (bc, b), _RED_OPS[opcode]
            elif not bc and b == p and not (not ac and a == p):
                x, ufunc = (ac, a), _RED_OPS[opcode]
        elif opcode in _RED_LEFT:
            if not ac and a == p and not (not bc and b == p):
                x, ufunc = (bc, b), _RED_LEFT[opcode]
        if x is not None:
            self.red_at_def[d] = p
            return ("red", d, ufunc, x)
        return None

    # -- emission -------------------------------------------------------

    def _emit_phi_vectors(self):
        for p, cls in self.phi_class.items():
            kind = cls[0]
            if kind == "const":
                cv = cls[1]
                if isinstance(cv, int) and not (
                        -(1 << 63) <= cv < (1 << 63)):
                    raise _Reject("const-range")
                self.pre.append(f"v{p} = _full({cv!r}, _B0)")
                self.pre.append(f"v{p}[0] = regs[{p}]")
            elif kind == "self":
                self.pre.append(f"v{p} = _full(regs[{p}], _B0)")
            elif kind == "inv":
                self.pre.append(f"v{p} = _full(regs[{cls[1]}], _B0)")
                self.pre.append(f"v{p}[0] = regs[{p}]")
            elif kind == "ind":
                _, d, opcode, step = cls
                s, _post = self.vsrc(*step)
                op = "+" if opcode == "add" else "-"
                self.pre.append(
                    f"v{p} = _inv(regs[{p}]) {op} {s} * _k")
                self.pre.append(f"v{d} = v{p} {op} {s}")
                self.vec.add(d)
                self.pre_names.append(f"v{d}")
            else:  # reduction: emitted at its defining op's position.
                continue
            self.vec.add(p)
            self.pre_names.append(f"v{p}")

    def _emit_reduction(self, d: int):
        p = self.red_at_def[d]
        _cls, _d, ufunc, x = self.phi_class[p]
        x_src, x_post = self.vsrc(*x)
        out = self.post if x_post else self.pre
        nvar = "_B" if x_post else "_B0"
        out.append(f"_t{p} = _np.concatenate("
                   f"(_inv(regs[{p}]), _vb({x_src}, {nvar})))")
        out.append(f"_ac{p} = _np.{ufunc}.accumulate(_t{p})")
        out.append(f"v{d} = _ac{p}[1:]")
        out.append(f"v{p} = _ac{p}[:-1]")
        self.vec.update((d, p))
        if x_post:
            self.post_slots.update((d, p))
        else:
            self.pre_names.extend((f"v{d}", f"v{p}"))

    def _emit_def(self, inst):
        kind = inst[0]
        dst = inst[1]
        ops = self._operands(inst)
        if all(c or v in self.const_val for c, v in ops):
            # All-constant: fold through the instruction's own
            # compiled function, exact by construction.
            self.const_val[dst] = self._fold(inst)
            return
        srcs = [self.vsrc(c, v) for c, v in ops]
        is_post = any(post for _t, post in srcs)
        out = self.post if is_post else self.pre
        texts = [t for t, _post in srcs]
        guard = None
        if kind == _BIN:
            opcode = inst[7]
            bits = inst[8]
            a, b = texts
            if opcode in _VEC_FLOAT:
                expr = _VEC_FLOAT[opcode].format(a=a, b=b)
            elif opcode == "fdiv":
                guard = f"if _nz({b}): return _deopt('fdiv-zero')"
                expr = f"({a} / {b})"
            elif bits == 64 and opcode in _VEC_I64:
                expr = _VEC_I64[opcode].format(a=a, b=b)
            else:
                raise _Reject("unsupported-op")
        elif kind == _CMP:
            pred = inst[7]
            a, b = texts
            if pred in _CMP_OPS:
                expr = (f"({a} {_CMP_OPS[pred]} {b})"
                        f".astype(_np.int64)")
            elif pred in _UCMP_OPS:
                expr = (f"(_u({a}) {_UCMP_OPS[pred]} _u({b}))"
                        f".astype(_np.int64)")
            else:
                raise _Reject("unsupported-op")
        elif kind == _SELECT:
            c, t, f = texts
            expr = f"_np.where(({c}) != 0, {t}, {f})"
        elif kind == _CAST:
            opcode, fb, tb = inst[5], inst[6], inst[7]
            v = texts[0]
            if opcode in ("bitcast", "ptrtoint", "inttoptr", "sext"):
                expr = v
            elif opcode == "zext" and fb < 64:
                expr = f"({v} & {(1 << fb) - 1})"
            elif opcode == "trunc" and tb == 64:
                expr = v
            elif opcode == "sitofp":
                expr = f"({v}).astype(_np.float64)"
            elif opcode == "fptosi" and tb == 64:
                guard = f"if _fpbad({v}): return _deopt('fp-range')"
                expr = f"({v}).astype(_np.int64)"
            else:
                raise _Reject("unsupported-op")
        elif kind == _GEP:
            elem = inst[2]
            if elem <= 0:
                raise _Reject("unsupported-op")
            b, i = texts
            checks = []
            if self._cval(*self._operands(inst)[0]) is None:
                checks.append(f"_rng({b}, {GMAX})")
            elif abs(self._cval(*self._operands(inst)[0])) > GMAX:
                raise _Reject("gep-range")
            if self._cval(*self._operands(inst)[1]) is None:
                checks.append(f"_rng({i}, {GMAX // elem})")
            elif abs(self._cval(*self._operands(inst)[1])) > GMAX // elem:
                raise _Reject("gep-range")
            if checks:
                guard = (f"if {' or '.join(checks)}: "
                         f"return _deopt('gep-range')")
            expr = f"({b} + {i} * {elem})"
        else:
            raise _Reject("unsupported-op")
        if guard:
            out.append(guard)
        out.append(f"v{dst} = {expr}")
        self.vec.add(dst)
        if is_post:
            self.post_slots.add(dst)
        else:
            self.pre_names.append(f"v{dst}")

    def _fold(self, inst):
        """Constant-fold an all-constant op through the interpreter's
        own compiled function, so the value is exact by construction."""
        kind = inst[0]
        ops = [self._cval(c, v) for c, v in self._operands(inst)]
        if kind in (_BIN, _CMP):
            return inst[2](ops[0], ops[1])
        if kind == _CAST:
            return inst[2](ops[0])
        if kind == _SELECT:
            return ops[1] if ops[0] else ops[2]
        if kind == _GEP:
            return ops[0] + ops[1] * inst[2]
        return None

    def _emit_site(self, j: int, kind: int, spec, dst, is_rmw):
        p_src, _post = self.vsrc(*spec)
        out = self.post
        out.append(f"_p{j} = _vb({p_src}, _B)")
        if kind == _PREFETCH:
            # Prefetches never touch memory: the cache model only
            # needs the (exact, int64) line/page streams.
            return
        out.append(f"if _rng(_p{j}, {GMAX}): "
                   f"return _deopt('addr-range')")
        out.append(f"_al{j} = _alloc_at(int(_p{j}[0]))")
        out.append(f"_b{j} = _al{j}.base")
        out.append(f"if int(_p{j}.min()) < _b{j} or "
                   f"int(_p{j}.max()) >= _al{j}.end:")
        out.append(f"    return _deopt('alloc-range')")
        out.append(f"_o{j} = _p{j} - _b{j}")
        out.append(f"_es{j} = _al{j}.element_size")
        out.append(f"_q{j} = _o{j} // _es{j}")
        out.append(f"if _np.any(_o{j} != _q{j} * _es{j}): "
                   f"return _deopt('misaligned')")
        out.append(f"_ql{j} = _q{j}.tolist()")
        out.append(f"_d{j} = _al{j}.data")
        if kind == _LOAD and not is_rmw:
            out.append(
                f"v{dst} = _np.asarray(_gather(_d{j}, _ql{j}), "
                f"dtype=_np.float64 if isinstance(_d{j}[0], float) "
                f"else _np.int64)")
            self.vec.add(dst)
            self.post_slots.add(dst)

    def _emit_alias_guards(self):
        store_js = [j for j, kind, *_rest in self.sites
                    if kind == _STORE]
        gather_js = [j for j, kind, _idx, _spec, _dst, is_rmw
                     in self.sites if kind == _LOAD and not is_rmw]
        for i in gather_js:
            for j in store_js:
                self.post.append(f"if _al{i} is _al{j}: "
                                 f"return _deopt('alias')")

    def _emit_streams(self) -> list[str]:
        """Per-site line/set/page stream lists for the timing loop;
        returns the zip argument list in site order."""
        hot = self.ms.fastpath
        zips = []
        for j, _kind, *_rest in self.sites:
            self.post.append(f"_pl{j} = _p{j}.tolist()")
            zips.append(f"_pl{j}")
            if hot:
                self.post.append(f"_ln{j} = _lines_of(_p{j})")
                self.post.append(f"_el{j} = _ln{j}.tolist()")
                self.post.append(f"_yl{j} = _sets_of(_ln{j}).tolist()")
                self.post.append(f"_gl{j} = _pages_of(_p{j}).tolist()")
                zips.extend((f"_el{j}", f"_yl{j}", f"_gl{j}"))
        return zips

    def _commit_lines(self) -> tuple[list[str], dict]:
        zips: dict[str, str] = {}
        lines: list[str] = []
        for idx, inst in enumerate(self.insts):
            kind = inst[0]
            if kind == _LOAD and inst[1] in self.rmw:
                j = self.site_at[idx]
                zips.setdefault(f"_qv{j}", f"_ql{j}")
                lines.append(f"_s{inst[1]} = _d{j}[_qv{j}]")
            elif kind == _STORE:
                j = self.site_at[idx]
                val = self.ssrc(inst[2], inst[3], zips)
                zips.setdefault(f"_qv{j}", f"_ql{j}")
                lines.append(f"_d{j}[_qv{j}] = {val}")
            elif kind in (_BIN, _CMP, _SELECT, _CAST, _GEP) and \
                    inst[1] in self.chain:
                dst = inst[1]
                ops = [self.ssrc(c, v, zips)
                       for c, v in self._operands(inst)]
                if kind in (_BIN, _CMP):
                    self.env[f"_fn{dst}"] = inst[2]
                    lines.append(
                        f"_s{dst} = _fn{dst}({ops[0]}, {ops[1]})")
                elif kind == _CAST:
                    self.env[f"_fn{dst}"] = inst[2]
                    lines.append(f"_s{dst} = _fn{dst}({ops[0]})")
                elif kind == _SELECT:
                    lines.append(f"_s{dst} = ({ops[1]}) if ({ops[0]}) "
                                 f"else ({ops[2]})")
                else:  # GEP: exact, unwrapped — like the reference.
                    lines.append(
                        f"_s{dst} = {ops[0]} + {ops[1]} * {inst[2]}")
        return lines, zips

    def _reg_moves(self, moves) -> list[str]:
        lines = []
        for k, (_dst, c, v) in enumerate(moves):
            lines.append(f"_m{k} = {repr(v) if c else f'regs[{v}]'}")
        for k, (dst, _c, _v) in enumerate(moves):
            lines.append(f"regs[{dst}] = _m{k}")
        return lines or ["pass"]

    # -- the timing function --------------------------------------------

    def _time_moves(self, em: _TimingEmitter, moves) -> list[str]:
        em.body = []
        for k, (_dst, c, v) in enumerate(moves):
            em.out(f"_q{k} = {'0.0' if c else em.rdy(v)}")
        for k, (dst, _c, _v) in enumerate(moves):
            em.out(f"{em.rdy(dst)} = _q{k}")
        return em.body or ["pass"]

    def _build_vtime(self) -> list[str]:
        em = _TimingEmitter(self.tj.mode, self.bind, self.env)
        for inst in self.insts:
            em.op(inst)
        em.branch(None if self.cc else em.rdy(self.cond))
        inner = em.body
        self_tm = self._time_moves(em, self.self_moves)
        exit_tm = self._time_moves(em, self.exit_moves)
        em.body = []
        em.core_prologue()
        core_pro = em.body
        em.body = []
        em.core_epilogue()
        core_epi = em.body

        hot = self.ms.fastpath
        unpack = []
        for j, _kind, *_rest in self.sites:
            unpack.append(f"_a{j}")
            if hot:
                unpack.extend((f"_e{j}", f"_y{j}", f"_g{j}"))
        lines = ["def _vtime(ready, _B, _exit, _z):"]
        ind = "    "
        for s in sorted(em.slots):
            lines.append(f"{ind}t{s} = ready[{s}]")
        lines.extend(f"{ind}{line}" for line in core_pro)
        stat_locals = sorted(em.stat_locals)
        for local, _target in stat_locals:
            lines.append(f"{ind}{local} = 0")
        lines.append(f"{ind}_Bm1 = _B - 1")
        lines.append(f"{ind}_i = 0")
        if unpack:
            head = ", ".join(unpack) + ("," if len(unpack) == 1 else "")
            lines.append(f"{ind}for {head} in _z:")
        else:
            lines.append(f"{ind}for _i0 in range(_B):")
        for line in inner:
            lines.append(f"{ind}    {line}")
        lines.append(f"{ind}    if _i == _Bm1: break")
        for line in self_tm:
            lines.append(f"{ind}    {line}")
        lines.append(f"{ind}    _i += 1")
        lines.append(f"{ind}if _exit:")
        for line in exit_tm:
            lines.append(f"{ind}    {line}")
        lines.append(f"{ind}else:")
        for line in self_tm:
            lines.append(f"{ind}    {line}")
        for s in sorted(em.slots):
            lines.append(f"{ind}ready[{s}] = t{s}")
        lines.extend(f"{ind}{line}" for line in core_epi)
        lines.append(f"{ind}_nn = {self.charge} * _B")
        lines.append(f"{ind}_core.instructions += _nn")
        lines.append(f"{ind}_stats.instructions += _nn")
        lines.append(f"{ind}_stats.branches += _B")
        for field, n in em.counts.items():
            if n:
                lines.append(f"{ind}_stats.{field} += {n} * _B")
        for local, target in stat_locals:
            lines.append(f"{ind}if {local}:")
            lines.append(f"{ind}    {target} += {local}")
        return lines

    # -- assembly --------------------------------------------------------

    def build(self):
        self._parse_terminator()
        self._scan()
        self._pair_memory()
        self._classify_phis()
        self._emit_phi_vectors()
        sites = iter(self.sites)
        for inst in self.insts:
            kind = inst[0]
            if kind in (_LOAD, _STORE, _PREFETCH):
                j, skind, _idx, spec, sdst, is_rmw = next(sites)
                self._emit_site(j, skind, spec, sdst, is_rmw)
                continue
            dst = inst[1]
            if dst in self.vec or dst in self.chain:
                continue
            if dst in self.red_at_def:
                self._emit_reduction(dst)
            else:
                self._emit_def(inst)
        self._emit_alias_guards()
        stream_zips = self._emit_streams()

        # Exit condition: its dependence cone must be pre-trim (no
        # memory), or the batch cannot know how far it may reach.
        if not self.cc and not self.const_no_exit:
            if self.cond in self.post_slots or self.cond in self.chain:
                raise _Reject("exit-depends-on-memory")
            cond_src, cond_post = self.vsrc(False, self.cond)
            if cond_post:
                raise _Reject("exit-depends-on-memory")
        commit, commit_zips = self._commit_lines()
        vtime = self._build_vtime()

        ind = "    "
        lines = list(vtime)
        lines.append("def _vrun(regs, ready, budget):")
        lines.append(f"{ind}if budget >= {1 << 62}:")
        lines.append(f"{ind}    _B0 = {MAX_BATCH}")
        lines.append(f"{ind}else:")
        lines.append(f"{ind}    _B0 = -(-budget // {self.charge})")
        lines.append(f"{ind}    if _B0 > {MAX_BATCH}: _B0 = {MAX_BATCH}")
        lines.append(f"{ind}    if _B0 < 1: _B0 = 1")
        lines.append(f"{ind}try:")
        lines.append(f"{ind}    with _errstate(all='ignore'):")
        body = f"{ind}        "
        for s in sorted(self.invariants):
            lines.append(f"{body}_x{s} = _inv(regs[{s}])")
        lines.append(f"{body}_k = _np.arange(_B0)")
        for line in self.pre:
            lines.append(f"{body}{line}")
        if self.const_no_exit:
            lines.append(f"{body}_B = _B0")
            lines.append(f"{body}_exit = 0")
        else:
            cond_src, _post = self.vsrc(False, self.cond)
            lines.append(f"{body}_cv = _vb({cond_src}, _B0)")
            lines.append(
                f"{body}_xi = _np.flatnonzero(_cv {self.exit_cmp} 0)")
            lines.append(f"{body}if _xi.size:")
            lines.append(f"{body}    _B = int(_xi[0]) + 1")
            lines.append(f"{body}    _exit = 1")
            lines.append(f"{body}else:")
            lines.append(f"{body}    _B = _B0")
            lines.append(f"{body}    _exit = 0")
        if self.pre_names:
            lines.append(f"{body}if _B != _B0:")
            for name in self.pre_names:
                lines.append(f"{body}    {name} = {name}[:_B]")
        for line in self.post:
            lines.append(f"{body}{line}")
        lines.append(f"{ind}except _MF:")
        lines.append(f"{ind}    return _deopt('memory-fault')")
        lines.append(f"{ind}except OverflowError:")
        lines.append(f"{ind}    return _deopt('overflow')")
        # ---- commit point: every mutation happens below this line ----
        for s in sorted(self.inv_raw):
            lines.append(f"{ind}_iv{s} = regs[{s}]")
        if commit:
            zvars = sorted(commit_zips)
            head = ", ".join(zvars) + ("," if len(zvars) == 1 else "")
            srcs = ", ".join(commit_zips[v] for v in zvars)
            lines.append(f"{ind}for {head} in zip({srcs}):")
            for line in commit:
                lines.append(f"{ind}    {line}")
        for dst in self.defs:
            if dst in self.chain:
                lines.append(f"{ind}regs[{dst}] = _s{dst}")
            elif dst in self.const_val:
                lines.append(
                    f"{ind}regs[{dst}] = {self.const_val[dst]!r}")
            else:
                lines.append(f"{ind}regs[{dst}] = v{dst}[-1].item()")
        for p in self.phi_class:
            lines.append(f"{ind}regs[{p}] = v{p}[-1].item()")
        lines.append(f"{ind}if _exit:")
        for line in self._reg_moves(self.exit_moves):
            lines.append(f"{ind}    {line}")
        lines.append(f"{ind}else:")
        for line in self._reg_moves(self.self_moves):
            lines.append(f"{ind}    {line}")
        if stream_zips:
            lines.append(f"{ind}_vtime(ready, _B, _exit, "
                         f"zip({', '.join(stream_zips)}))")
        else:
            lines.append(f"{ind}_vtime(ready, _B, _exit, None)")
        lines.append(f"{ind}_n = {self.charge} * _B")
        lines.append(f"{ind}_tr.entries += 1")
        lines.append(f"{ind}_tr.iters += _B - _exit")
        lines.append(f"{ind}_tr.insts += _n")
        lines.append(f"{ind}_tr.vbatches += 1")
        lines.append(f"{ind}_tr.viters += _B")
        lines.append(f"{ind}if _tr.vbatches >= {PROBE_BATCHES} and "
                     f"_tr.viters < {MIN_AVG_ITERS} * _tr.vbatches:")
        lines.append(f"{ind}    _short()")
        pcs = tuple(inst[1] for inst in self.insts
                    if inst[0] == _PREFETCH)
        if pcs and self.ms.telemetry is not None:
            self.env["_note"] = self.ms.telemetry.note_vector_batch
            self.env["_PCS"] = pcs
            lines.append(f"{ind}_note(_PCS, _B)")
        lines.append(
            f"{ind}return ({self.exit_block} if _exit "
            f"else {self.trace.header}), _n")
        src = "\n".join(lines) + "\n"

        env = self.env
        env.update(_np=_np, _full=_full, _inv=_inv, _vb=_vb,
                   _lshr=_lshr, _u=_u, _rng=_rng, _nz=_nz,
                   _fpbad=_fpbad, _gather=_gather,
                   _errstate=_np.errstate, _tr=self.trace,
                   _deopt=_make_deopt(self.trace, self.tj),
                   _short=_make_short_deopt(self.trace, self.tj))
        if self.ms.fastpath:
            env.update(_lines_of=self.ms.lines_of,
                       _pages_of=self.ms.tlb.pages_of,
                       _sets_of=self.ms.caches[0].sets_of)
        fn = compile_source(src, env, "_vrun", "<vector-batch>")
        info = {"ops": self.trace.ops,
                "loads": sum(1 for _j, k, *_r in self.sites
                             if k == _LOAD),
                "stores": sum(1 for _j, k, *_r in self.sites
                              if k == _STORE),
                "prefetches": len(pcs), "chain": len(self.chain),
                "reductions": len(self.red_at_def),
                "mode": self.tj.mode, "fastpath": self.ms.fastpath}
        return fn, info
