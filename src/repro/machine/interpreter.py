"""Execution-driven IR interpreter with optional timing.

Functions are compiled once into a compact slot-machine form (register
slots, pre-resolved operands, per-edge phi moves) and then executed:

* **functional mode** (no machine config) — fast architectural execution,
  used for correctness tests and result validation;
* **timed mode** — every instruction is charged to a core model
  (:mod:`repro.machine.core`) and every memory operation walks the cache/
  TLB/DRAM models, producing a cycle count.

``run_stepped`` exposes a generator that yields the core's current time
every ``yield_every`` instructions so a multicore scheduler can interleave
several interpreters around a shared DRAM channel (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.function import Function
from ..ir.instructions import (Alloc, BinOp, Branch, Call, Cast, Cmp, GEP,
                               Instruction, Jump, Load, Phi, Prefetch, Ret,
                               Select, Store)
from ..ir.module import Module
from ..ir.types import FloatType, IntType, PointerType, VoidType
from ..ir.values import Argument, Constant, UndefValue, Value
from ..telemetry.collector import TelemetryCollector, resolve_collector
from ..telemetry.timeline import TimelineRecorder, resolve_timeline
from .configs import MachineConfig
from .core import make_core
from .dram import DRAMChannel
from .fastexec import (_ALLOC, _BIN, _CALL, _CAST, _CMP, _GEP, _LOAD,
                       _PREFETCH, _SEG, _SELECT, _STORE, fastpath_enabled,
                       fuse_function)
from .memory import Allocation, Memory, MemoryFault
from .system import MemorySystem
from .tracejit import NO_BUDGET, TraceJIT, tracejit_enabled
from .vectorsim import vector_enabled

_M64 = (1 << 64) - 1


def _int_wrap(bits: int):
    if bits >= 64:
        half = 1 << 63

        def wrap64(x: int) -> int:
            x &= _M64
            return x - (1 << 64) if x >= half else x
        return wrap64
    span = 1 << bits
    half = span >> 1

    def wrap(x: int) -> int:
        x &= span - 1
        return x - span if x >= half else x
    return wrap


def _binop_fn(opcode: str, bits: int):
    w = _int_wrap(bits)
    mask = (1 << bits) - 1
    if opcode == "add":
        return lambda a, b: w(a + b)
    if opcode == "sub":
        return lambda a, b: w(a - b)
    if opcode == "mul":
        return lambda a, b: w(a * b)
    if opcode == "and":
        return lambda a, b: w(a & b)
    if opcode == "or":
        return lambda a, b: w(a | b)
    if opcode == "xor":
        return lambda a, b: w(a ^ b)
    if opcode == "shl":
        return lambda a, b: w(a << (b & 63))
    if opcode == "lshr":
        return lambda a, b: w((a & mask) >> (b & 63))
    if opcode == "ashr":
        return lambda a, b: w(a >> (b & 63))
    if opcode == "sdiv":
        def sdiv(a, b):
            if b == 0:
                raise ZeroDivisionError("sdiv by zero")
            q = abs(a) // abs(b)
            return w(-q if (a < 0) != (b < 0) else q)
        return sdiv
    if opcode == "srem":
        def srem(a, b):
            if b == 0:
                raise ZeroDivisionError("srem by zero")
            q = abs(a) // abs(b)
            q = -q if (a < 0) != (b < 0) else q
            return w(a - q * b)
        return srem
    if opcode == "udiv":
        return lambda a, b: w((a & mask) // (b & mask))
    if opcode == "urem":
        return lambda a, b: w((a & mask) % (b & mask))
    if opcode == "fadd":
        return lambda a, b: a + b
    if opcode == "fsub":
        return lambda a, b: a - b
    if opcode == "fmul":
        return lambda a, b: a * b
    if opcode == "fdiv":
        return lambda a, b: a / b
    raise ValueError(f"no interpreter for binop {opcode}")


def _cmp_fn(predicate: str):
    if predicate in ("eq", "oeq"):
        return lambda a, b: 1 if a == b else 0
    if predicate in ("ne", "one"):
        return lambda a, b: 1 if a != b else 0
    if predicate in ("slt", "olt"):
        return lambda a, b: 1 if a < b else 0
    if predicate in ("sle", "ole"):
        return lambda a, b: 1 if a <= b else 0
    if predicate in ("sgt", "ogt"):
        return lambda a, b: 1 if a > b else 0
    if predicate in ("sge", "oge"):
        return lambda a, b: 1 if a >= b else 0
    if predicate == "ult":
        return lambda a, b: 1 if (a & _M64) < (b & _M64) else 0
    if predicate == "ule":
        return lambda a, b: 1 if (a & _M64) <= (b & _M64) else 0
    if predicate == "ugt":
        return lambda a, b: 1 if (a & _M64) > (b & _M64) else 0
    if predicate == "uge":
        return lambda a, b: 1 if (a & _M64) >= (b & _M64) else 0
    raise ValueError(f"no interpreter for predicate {predicate}")


def _cast_fn(opcode: str, from_type, to_type):
    if opcode in ("bitcast", "ptrtoint", "inttoptr"):
        return lambda v: v
    if opcode == "sext":
        return lambda v: v  # values already carry their sign
    if opcode == "zext":
        bits = from_type.bits
        mask = (1 << bits) - 1
        return lambda v: v & mask
    if opcode == "trunc":
        w = _int_wrap(to_type.bits)
        return lambda v: w(v)
    if opcode == "sitofp":
        return float
    if opcode == "fptosi":
        w = _int_wrap(to_type.bits)
        return lambda v: w(int(v))
    raise ValueError(f"no interpreter for cast {opcode}")


class _CompiledFunction:
    """Slot-machine form of one function."""

    __slots__ = ("function", "num_slots", "arg_slots", "blocks",
                 "block_names", "prefetch_pcs", "raw_blocks")

    def __init__(self, func: Function, pc_base: int):
        self.function = func
        #: pre-fusion blocks, stashed by ``fuse_function`` so the
        #: trace-JIT can recompile hot paths from the raw instruction
        #: tuples (``None`` until the function is fused).
        self.raw_blocks = None
        #: remark_id -> pc for prefetches carrying a stable id (set by
        #: the prefetch passes); the join layer maps compile-time
        #: remarks to runtime per-PC telemetry bins through this.
        self.prefetch_pcs: dict[str, int] = {}
        slots: dict[int, int] = {}

        def slot(value: Value) -> int:
            s = slots.get(id(value))
            if s is None:
                s = len(slots)
                slots[id(value)] = s
            return s

        self.arg_slots = [slot(a) for a in func.args]
        # Pre-assign slots for all value-producing instructions.
        for inst in func.instructions():
            if not isinstance(inst.type, VoidType):
                slot(inst)

        def spec(value: Value):
            """(is_const, payload) operand encoding."""
            if isinstance(value, Constant):
                return (True, value.value)
            if isinstance(value, UndefValue):
                return (True, 0)
            return (False, slots[id(value)])

        block_index = {id(b): i for i, b in enumerate(func.blocks)}
        self.block_names = [b.name for b in func.blocks]
        # Per block: (compiled items, terminator, instruction charge).
        # The charge is fixed at compile time (pre-fusion) so fused
        # execution books the same `stats.instructions` per block visit.
        self.blocks: list[tuple[list, tuple, int]] = []
        pc = pc_base
        for block in func.blocks:
            compiled: list = []
            terminator: tuple | None = None
            for inst in block:
                pc += 1
                if isinstance(inst, Phi):
                    continue  # handled by edge moves
                if isinstance(inst, BinOp):
                    bits = inst.type.bits if isinstance(inst.type, IntType) \
                        else 64
                    compiled.append((
                        _BIN, slots[id(inst)],
                        _binop_fn(inst.opcode, bits),
                        *spec(inst.lhs), *spec(inst.rhs), inst.opcode,
                        bits))
                elif isinstance(inst, Cmp):
                    compiled.append((
                        _CMP, slots[id(inst)], _cmp_fn(inst.predicate),
                        *spec(inst.lhs), *spec(inst.rhs),
                        inst.predicate))
                elif isinstance(inst, Select):
                    compiled.append((
                        _SELECT, slots[id(inst)], *spec(inst.condition),
                        *spec(inst.true_value), *spec(inst.false_value)))
                elif isinstance(inst, Cast):
                    compiled.append((
                        _CAST, slots[id(inst)],
                        _cast_fn(inst.opcode, inst.value.type, inst.type),
                        *spec(inst.value), inst.opcode,
                        getattr(inst.value.type, "bits", 0),
                        getattr(inst.type, "bits", 0)))
                elif isinstance(inst, GEP):
                    elem = inst.type.pointee.size
                    compiled.append((
                        _GEP, slots[id(inst)], elem, *spec(inst.base),
                        *spec(inst.index)))
                elif isinstance(inst, Load):
                    compiled.append((
                        _LOAD, slots[id(inst)], pc, *spec(inst.ptr),
                        [None]))
                elif isinstance(inst, Store):
                    compiled.append((
                        _STORE, pc, *spec(inst.value), *spec(inst.ptr),
                        [None]))
                elif isinstance(inst, Prefetch):
                    compiled.append((_PREFETCH, pc, *spec(inst.ptr)))
                    if inst.remark_id is not None:
                        self.prefetch_pcs[inst.remark_id] = pc
                elif isinstance(inst, Call):
                    compiled.append((
                        _CALL,
                        slots[id(inst)]
                        if not isinstance(inst.type, VoidType) else -1,
                        inst.callee.name,
                        tuple(spec(a) for a in inst.args)))
                elif isinstance(inst, Alloc):
                    is_float = isinstance(inst.element_type, FloatType)
                    compiled.append((
                        _ALLOC, slots[id(inst)], inst.element_type.size,
                        is_float, *spec(inst.count),
                        inst.name or "ir-alloc"))
                elif isinstance(inst, (Branch, Jump, Ret)):
                    terminator = self._compile_terminator(
                        inst, block, block_index, slots, spec)
                else:
                    raise TypeError(
                        f"cannot compile {inst.opcode} instructions")
            if terminator is None:
                raise ValueError(
                    f"block {block.name} of @{func.name} lacks a "
                    f"terminator")
            self.blocks.append((compiled, terminator, len(compiled) + 1))
        self.num_slots = len(slots)

    @staticmethod
    def _moves(pred, succ, slots, spec) -> tuple:
        moves = []
        for phi in succ.phis:
            incoming = phi.incoming_for_block(pred)
            moves.append((slots[id(phi)], *spec(incoming)))
        return tuple(moves)

    def _compile_terminator(self, inst, block, block_index, slots, spec):
        if isinstance(inst, Jump):
            t = block_index[id(inst.target)]
            return ("jmp", t, self._moves(block, inst.target, slots, spec))
        if isinstance(inst, Branch):
            t = block_index[id(inst.then_block)]
            e = block_index[id(inst.else_block)]
            return ("br", *spec(inst.condition),
                    t, self._moves(block, inst.then_block, slots, spec),
                    e, self._moves(block, inst.else_block, slots, spec))
        if isinstance(inst, Ret):
            if inst.value is not None:
                return ("ret", *spec(inst.value))
            return ("ret", True, 0)
        raise TypeError(f"unknown terminator {inst.opcode}")


@dataclass
class RunStats:
    """Counters from one interpreter run."""

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    prefetches: int = 0
    branches: int = 0


@dataclass
class RunResult:
    """Outcome of one interpreter run.

    :ivar value: the entry function's return value (or ``None``).
    :ivar cycles: simulated core cycles (0.0 in functional mode).
    :ivar stats: dynamic instruction counters.
    :ivar memory_system: the timed memory hierarchy (``None`` in
        functional mode) for cache/TLB/DRAM statistics.
    :ivar telemetry: the finalised telemetry snapshot dict, when a
        collector was attached (``None`` otherwise).
    :ivar timeline: the windowed timeline snapshot dict
        (``repro-timeline-v1``), when a recorder was attached
        (``None`` otherwise).
    """

    value: object
    cycles: float
    stats: RunStats
    memory_system: MemorySystem | None = None
    telemetry: dict | None = None
    timeline: dict | None = None


class Interpreter:
    """Executes a module, optionally against a machine model.

    :param module: the IR module to execute.
    :param memory: the address space (created fresh if omitted).
    :param machine: a :class:`MachineConfig` for timed execution, or
        ``None`` for functional execution.
    :param dram: optionally a shared DRAM channel (multicore runs).
    :param fastpath: enable fused-block execution and the memory-system
        hot-line memo (``None`` = follow ``REPRO_SIM_FASTPATH``).
    :param telemetry: a :class:`~repro.telemetry.TelemetryCollector`,
        ``True``/``False`` to force telemetry on/off, or ``None`` to
        follow ``REPRO_SIM_TELEMETRY``.  Telemetry needs a machine model
        (it observes the memory hierarchy); a collector forces the
        memory system onto its instrumented reference walks, which are
        cycle-for-cycle identical to the fast path.
    :param tracejit: enable the trace-JIT tier on top of the fast path
        (``None`` = follow ``REPRO_SIM_TRACEJIT``, default off).  Needs
        both a machine model and the fast path; silently off otherwise.
        Bit-identical to the other tiers (see
        :mod:`repro.machine.tracejit`).
    :param timeline: a :class:`~repro.telemetry.TimelineRecorder`,
        ``True``/``False`` to force windowed counter sampling on/off,
        or ``None`` to follow ``REPRO_SIM_TIMELINE`` (default off).
        Needs a machine model.  Sampling reads counters only at the
        reference yield boundaries, so cycles are bit-identical with
        sampling on or off under every execution tier.
    :param vector: enable the vectorized batch tier on top of the
        trace-JIT (``None`` = follow ``REPRO_SIM_VECTOR``, default
        off).  Implies the trace-JIT machinery; single-block hot loops
        with dependence-free address streams run as numpy-planned
        batches, bit-identical to every other tier (see
        :mod:`repro.machine.vectorsim`).
    """

    def __init__(self, module: Module, memory: Memory | None = None,
                 machine: MachineConfig | None = None,
                 dram: DRAMChannel | None = None,
                 fastpath: bool | None = None,
                 telemetry: "TelemetryCollector | bool | None" = None,
                 tracejit: bool | None = None,
                 timeline: "TimelineRecorder | bool | None" = None,
                 vector: bool | None = None):
        self.module = module
        self.memory = memory if memory is not None else Memory()
        self.machine = machine
        self.fastpath = fastpath_enabled(fastpath)
        self.telemetry = (resolve_collector(telemetry)
                          if machine is not None else None)
        self.timeline = (resolve_timeline(timeline)
                         if machine is not None else None)
        self.memory_system = (
            MemorySystem(machine, dram, fastpath=self.fastpath,
                         telemetry=self.telemetry)
            if machine is not None else None)
        self.core = (make_core(machine, self.memory_system)
                     if machine is not None else None)
        self._compiled: dict[str, _CompiledFunction] = {}
        self._pc_base = 0
        self.stats = RunStats()
        self.max_steps: int | None = None
        # The vector tier plans batches over compiled traces, so
        # enabling it implies the trace-JIT machinery.
        self.vector = (self.fastpath and machine is not None
                       and vector_enabled(vector))
        self.tracejit = (self.fastpath and machine is not None
                         and (tracejit_enabled(tracejit) or self.vector))
        self._tj = TraceJIT(
            mode="inorder" if machine and machine.in_order else "ooo",
            bind={"memory": self.memory, "stats": self.stats,
                  "core": self.core, "ms": self.memory_system},
            vector=self.vector
        ) if self.tracejit else None

    def _compile(self, func: Function) -> _CompiledFunction:
        compiled = self._compiled.get(func.name)
        if compiled is None:
            compiled = _CompiledFunction(func, self._pc_base)
            self._pc_base += sum(len(b) for b in func.blocks) + 16
            if self.fastpath:
                if self.machine is None:
                    mode = "func"
                else:
                    mode = "inorder" if self.machine.in_order else "ooo"
                fuse_function(compiled, mode, {
                    "memory": self.memory, "stats": self.stats,
                    "core": self.core, "ms": self.memory_system})
            self._compiled[func.name] = compiled
        return compiled

    # -- public API -----------------------------------------------------

    def prefetch_pc_map(self) -> dict[str, int]:
        """remark_id -> runtime PC for every prefetch compiled so far.

        Only functions that have actually been compiled (the entry, and
        callees reached during execution) contribute entries.  For the
        same mapping without running, see :func:`static_prefetch_pcs`.
        """
        pcs: dict[str, int] = {}
        for compiled in self._compiled.values():
            pcs.update(compiled.prefetch_pcs)
        return pcs

    def trace_report(self) -> list[dict]:
        """Per-trace statistics from the trace-JIT tier, hottest first
        (empty when the tier is disabled).  Row keys: ``function``,
        ``header``, ``blocks``, ``ops``, ``entries``, ``iterations``,
        ``instructions``."""
        return self._tj.report() if self._tj is not None else []

    def run(self, func_name: str, args: list | None = None) -> RunResult:
        """Execute ``func_name`` to completion and return the result.

        With a timeline recorder attached, the run is driven at the
        recorder's sampling interval — the same reference yield
        boundaries ``run_stepped`` exposes, so the cycle count is
        unchanged (yields never advance time; the trace-JIT budget
        exits at exactly these boundaries in every tier).
        """
        yield_every = (self.timeline.sample_every
                       if self.timeline is not None else 0)
        for _ in self.run_stepped(func_name, args,
                                  yield_every=yield_every):
            pass
        return self._result

    def run_stepped(self, func_name: str, args: list | None = None,
                    yield_every: int = 10_000):
        """Generator form of :meth:`run`: yields the core's current time
        every ``yield_every`` dynamic instructions (0 = never).  An
        attached timeline recorder samples at each yield boundary."""
        func = self.module.function(func_name)
        args = args or []
        if len(args) != len(func.args):
            raise TypeError(
                f"@{func_name} expects {len(func.args)} args, "
                f"got {len(args)}")
        ready = [0.0] * len(args)
        gen = self._exec(self._compile(func), list(args), ready,
                         yield_every)
        value = None
        cycles_before = self.core.cycles if self.core else 0.0
        timeline = self.timeline
        while True:
            try:
                t = next(gen)
            except StopIteration as stop:
                value = stop.value
                break
            if timeline is not None:
                timeline.sample(self.core, self.memory_system,
                                self.telemetry)
            yield t
        cycles = (self.core.cycles - cycles_before) if self.core else 0.0
        telemetry = None
        if self.telemetry is not None:
            self.telemetry.finalize(self.memory_system, self.core)
            telemetry = self.telemetry.snapshot()
        timeline_snap = None
        if timeline is not None:
            timeline.finalize(self.core, self.memory_system,
                              self.telemetry)
            timeline_snap = timeline.snapshot()
        self._result = RunResult(
            value=value[0] if value else None,
            cycles=cycles, stats=self.stats,
            memory_system=self.memory_system,
            telemetry=telemetry, timeline=timeline_snap)

    # -- the execution engine ------------------------------------------------

    def _exec(self, compiled: _CompiledFunction, arg_values: list,
              arg_ready: list, yield_every: int):
        memory = self.memory
        core = self.core
        stats = self.stats
        regs = [0] * compiled.num_slots
        for slot_index, value in zip(compiled.arg_slots, arg_values):
            regs[slot_index] = value
        if core is not None:
            ready = [0.0] * compiled.num_slots
            for slot_index, t in zip(compiled.arg_slots, arg_ready):
                ready[slot_index] = t
        else:
            ready = None
        blocks = compiled.blocks
        block = 0
        steps = 0
        max_steps = self.max_steps
        # Trace-JIT tier: needs timing and clashes with max_steps (a
        # trace books its instructions only at exit, after the check).
        tj = self._tj if (core is not None and max_steps is None) \
            else None
        if tj is not None:
            tj_state = tj.state_for(compiled)
            traces = tj_state.traces
            counts = tj_state.counts
            ms = self.memory_system
        rec_path = None
        rec_header = -1
        rec_self = None
        while True:
            if tj is not None:
                if rec_path is None:
                    tr = traces.get(block)
                    if tr is not None:
                        if tr.fp == ms.fastpath:
                            budget = (yield_every - steps) \
                                if yield_every else NO_BUDGET
                            vec = tr.vector
                            out = (vec(regs, ready, budget)
                                   if vec is not None else None)
                            if out is None:
                                # No vector driver, or a batch guard
                                # deopted before any state changed:
                                # the compiled trace replays the loop.
                                out = tr.fn(regs, ready, budget)
                            block, used = out
                            steps += used
                            if tr.entries >= 256 and \
                                    tr.iters < (tr.entries >> 1):
                                tj.deopt(tj_state, tr, "low-yield")
                            if yield_every and steps >= yield_every:
                                steps = 0
                                yield core.time
                            continue
                        # e.g. a telemetry collector attached mid-run:
                        # fall back to the fused tier for this block.
                        tj.deopt(tj_state, tr, "memory-mode-changed")
                    else:
                        c = counts.get(block, 0) + 1
                        counts[block] = c
                        if c == tj.threshold and \
                                block not in tj_state.blacklist:
                            rec_header = block
                            rec_path = [block]
                            rec_self = set()
                elif block == rec_header:
                    tj.finish(compiled, tj_state, rec_path, rec_self)
                    rec_path = None
                elif block == rec_path[-1]:
                    # Immediate self-revisit: a single-block inner loop,
                    # compiled as a nested while inside the trace.
                    rec_self.add(block)
                elif block in rec_path or len(rec_path) >= tj.max_blocks:
                    tj.abort(tj_state, rec_header,
                             "inner-loop" if block in rec_path
                             else "too-long")
                    rec_path = None
                else:
                    rec_path.append(block)
            insts, term, charge = blocks[block]
            for inst in insts:
                kind = inst[0]
                if kind == _SEG:
                    inst[1](regs, ready)
                elif kind == _BIN:
                    _, dst, fn, ac, a, bc, b, opcode, _bits = inst
                    av = a if ac else regs[a]
                    bv = b if bc else regs[b]
                    regs[dst] = fn(av, bv)
                    if core is not None:
                        dep = 0.0
                        if not ac and ready[a] > dep:
                            dep = ready[a]
                        if not bc and ready[b] > dep:
                            dep = ready[b]
                        ready[dst] = core.op(dep, opcode)
                elif kind == _GEP:
                    _, dst, elem, bc, b, ic, i = inst
                    base = b if bc else regs[b]
                    index = i if ic else regs[i]
                    regs[dst] = base + index * elem
                    if core is not None:
                        dep = 0.0
                        if not bc and ready[b] > dep:
                            dep = ready[b]
                        if not ic and ready[i] > dep:
                            dep = ready[i]
                        ready[dst] = core.op(dep)
                elif kind == _LOAD:
                    _, dst, pc, pc_const, p, cache = inst
                    addr = p if pc_const else regs[p]
                    alloc = cache[0]
                    if alloc is None or not (
                            alloc.base <= addr < alloc.end):
                        alloc = memory.allocation_at(addr)
                        cache[0] = alloc
                    offset = addr - alloc.base
                    index, rem = divmod(offset, alloc.element_size)
                    if rem:
                        raise MemoryFault(
                            f"misaligned load at {addr:#x}")
                    regs[dst] = alloc.data[index]
                    stats.loads += 1
                    if core is not None:
                        dep = ready[p] if not pc_const else 0.0
                        ready[dst] = core.load(pc, addr, dep)
                elif kind == _STORE:
                    _, pc, vc, v, pc_const, p, cache = inst
                    addr = p if pc_const else regs[p]
                    value = v if vc else regs[v]
                    alloc = cache[0]
                    if alloc is None or not (
                            alloc.base <= addr < alloc.end):
                        alloc = memory.allocation_at(addr)
                        cache[0] = alloc
                    offset = addr - alloc.base
                    index, rem = divmod(offset, alloc.element_size)
                    if rem:
                        raise MemoryFault(
                            f"misaligned store at {addr:#x}")
                    alloc.data[index] = value
                    stats.stores += 1
                    if core is not None:
                        dep = 0.0
                        if not vc and ready[v] > dep:
                            dep = ready[v]
                        if not pc_const and ready[p] > dep:
                            dep = ready[p]
                        core.store(pc, addr, dep)
                elif kind == _CMP:
                    _, dst, fn, ac, a, bc, b, _pred = inst
                    av = a if ac else regs[a]
                    bv = b if bc else regs[b]
                    regs[dst] = fn(av, bv)
                    if core is not None:
                        dep = 0.0
                        if not ac and ready[a] > dep:
                            dep = ready[a]
                        if not bc and ready[b] > dep:
                            dep = ready[b]
                        ready[dst] = core.op(dep)
                elif kind == _SELECT:
                    _, dst, cc, c, tc, t, fc, f = inst
                    cond = c if cc else regs[c]
                    regs[dst] = (t if tc else regs[t]) if cond else \
                        (f if fc else regs[f])
                    if core is not None:
                        dep = 0.0
                        if not cc and ready[c] > dep:
                            dep = ready[c]
                        if not tc and ready[t] > dep:
                            dep = ready[t]
                        if not fc and ready[f] > dep:
                            dep = ready[f]
                        ready[dst] = core.op(dep)
                elif kind == _CAST:
                    _, dst, fn, vc, v, _op, _fb, _tb = inst
                    regs[dst] = fn(v if vc else regs[v])
                    if core is not None:
                        ready[dst] = core.op(
                            ready[v] if not vc else 0.0)
                elif kind == _PREFETCH:
                    _, pc, pc_const, p = inst
                    addr = p if pc_const else regs[p]
                    stats.prefetches += 1
                    if core is not None:
                        core.prefetch(pc, addr,
                                      ready[p] if not pc_const else 0.0)
                elif kind == _ALLOC:
                    _, dst, elem, is_float, cc, c, name = inst
                    count = c if cc else regs[c]
                    alloc = memory.allocate(elem, count, name, is_float)
                    regs[dst] = alloc.base
                    if core is not None:
                        ready[dst] = core.op(
                            ready[c] if not cc else 0.0)
                elif kind == _CALL:
                    _, dst, callee_name, arg_specs = inst
                    call_args = [v if c else regs[v]
                                 for c, v in arg_specs]
                    if core is not None:
                        call_ready = [ready[v] if not c else 0.0
                                      for c, v in arg_specs]
                        core.op(max(call_ready, default=0.0))
                    else:
                        call_ready = [0.0] * len(call_args)
                    callee = self._compile(
                        self.module.function(callee_name))
                    sub = self._exec(callee, call_args, call_ready, 0)
                    try:
                        while True:
                            next(sub)
                    except StopIteration as stop:
                        retval = stop.value
                    if dst >= 0:
                        regs[dst] = retval[0]
                        if core is not None:
                            ready[dst] = retval[1]
                else:  # pragma: no cover - defensive
                    raise RuntimeError(f"bad compiled opcode {kind}")
            stats.instructions += charge
            steps += charge
            if max_steps is not None and stats.instructions > max_steps:
                raise RuntimeError(
                    f"exceeded max_steps={max_steps} "
                    f"(possible infinite loop)")
            # Terminator.
            op = term[0]
            if op == "jmp":
                _, target, moves = term
                if core is not None:
                    core.branch(0.0)
                stats.branches += 1
                self._apply_moves(moves, regs, ready)
                block = target
            elif op == "br":
                _, cc, c, t, tmoves, e, emoves = term
                cond = c if cc else regs[c]
                if core is not None:
                    core.branch(ready[c] if not cc else 0.0)
                stats.branches += 1
                if cond:
                    self._apply_moves(tmoves, regs, ready)
                    block = t
                else:
                    self._apply_moves(emoves, regs, ready)
                    block = e
            else:  # ret
                _, vc, v = term
                if core is not None:
                    core.branch(0.0)
                value = v if vc else regs[v]
                rtime = (ready[v] if (core is not None and not vc)
                         else (core.time if core is not None else 0.0))
                return (value, rtime)
            if yield_every and steps >= yield_every and core is not None:
                steps = 0
                yield core.time

    @staticmethod
    def _apply_moves(moves, regs, ready) -> None:
        if not moves:
            return
        # Parallel-copy semantics: read all sources before writing.
        values = [v if c else regs[v] for _, c, v in moves]
        if ready is not None:
            times = [0.0 if c else ready[v] for _, c, v in moves]
            for (dst, _, _), value, t in zip(moves, values, times):
                regs[dst] = value
                ready[dst] = t
        else:
            for (dst, _, _), value in zip(moves, values):
                regs[dst] = value


def static_prefetch_pcs(module: Module, entry: str = "kernel"
                        ) -> dict[str, int]:
    """Predict remark_id -> PC without executing ``module``.

    The interpreter compiles functions lazily — the entry up front,
    then each callee at its first dynamic call — and assigns each
    function a contiguous PC span in compile order.  This emulates that
    order statically: the entry first, then callees in first-static-
    call-site pre-order, which matches the dynamic order whenever calls
    execute in block order (true of every bundled workload).
    """
    by_name = {f.name: f for f in module.functions}
    order: list[str] = []
    seen: set[str] = set()

    def visit(name: str) -> None:
        if name in seen or name not in by_name:
            return
        seen.add(name)
        order.append(name)
        for block in by_name[name].blocks:
            for inst in block:
                if isinstance(inst, Call):
                    visit(inst.callee.name)

    visit(entry)
    pcs: dict[str, int] = {}
    pc_base = 0
    for name in order:
        func = by_name[name]
        compiled = _CompiledFunction(func, pc_base)
        pcs.update(compiled.prefetch_pcs)
        pc_base += sum(len(b) for b in func.blocks) + 16
    return pcs
