"""Hardware stride prefetcher (region-based stream detector).

Models an L2-streamer-style prefetcher: streams are tracked per 4 KiB
*region* (as Intel's L2 streamer does), not per instruction.  Each region
tracks its last accessed line and stride; after ``train_threshold``
consistent strides the prefetcher issues fills ``distance`` lines ahead
(``degree`` lines per trigger).

Region tracking is load-bearing for the paper's Fig. 2/Fig. 5 story:
when prefetch code adds a *look-ahead* load stream through the same
array (``base[i + c/2]`` interleaved with ``base[i]``), both streams
land in the same regions and compete for the region's limited stream
entries (two per region, like recent Intel streamers), degrading
coverage.  That is precisely why the pass must emit its own staggered
stride prefetch even on machines with hardware prefetchers.
"""

from __future__ import annotations

#: log2(lines per tracked region): 64 lines = 4 KiB regions.
REGION_BITS = 6

# Stream entries are plain ``[last_line, stride, confidence]`` lists:
# ``observe`` runs once per demand access on the simulator's hottest
# path, and list indexing beats attribute access on a record type.
_LAST, _STRIDE, _CONF = range(3)


class StridePrefetcher:
    """Per-region stride detector issuing line fills.

    :param distance: how many strides ahead to prefetch.
    :param degree: fills issued per triggering access.
    :param train_threshold: consistent strides needed before issuing.
    :param table_size: tracked regions (LRU replacement).
    """

    #: Streams tracked per region; interleaved access points beyond
    #: this degrade coverage (the Fig. 2 "intuitive scheme" effect).
    STREAMS_PER_REGION = 2

    def __init__(self, distance: int = 4, degree: int = 2,
                 train_threshold: int = 2, table_size: int = 32):
        self.distance = distance
        self.degree = degree
        self.train_threshold = train_threshold
        self.table_size = table_size
        self._table: dict[int, list[list]] = {}
        self._last_line: int | None = None
        self.issued = 0

    def observe(self, pc: int, line_addr: int) -> list[int]:
        """Train on a demand access; returns line addresses to prefetch.

        ``pc`` is accepted for interface stability but streams are keyed
        by memory region (see module docstring).
        """
        if line_addr == self._last_line:
            # Repeat of the immediately preceding access: the region is
            # already MRU and the matched stream sees stride 0, so the
            # full path would mutate nothing and return no fills.
            return []
        self._last_line = line_addr
        region = line_addr >> REGION_BITS
        table = self._table
        streams = table.get(region)
        if streams is None:
            if len(table) >= self.table_size:
                del table[next(iter(table))]
            table[region] = [[line_addr, 0, 0]]
            return []
        # LRU touch.
        del table[region]
        table[region] = streams

        # Match the stream whose last access is closest to this line
        # (first wins ties, matching min() over the insertion order).
        entry = streams[0]
        if len(streams) > 1:
            d0 = line_addr - entry[_LAST]
            if d0 < 0:
                d0 = -d0
            other = streams[1]
            d1 = line_addr - other[_LAST]
            if d1 < 0:
                d1 = -d1
            if d1 < d0:
                entry = other
        stride = line_addr - entry[_LAST]
        if stride == 0:
            return []  # same line: no information
        if ((stride > 8 or stride < -8)
                and len(streams) < self.STREAMS_PER_REGION):
            # Too far from any tracked stream: open a second one.
            streams.append([line_addr, 0, 0])
            return []
        if stride == entry[_STRIDE]:
            conf = entry[_CONF] + 1
            if conf > 8:
                conf = 8
            entry[_CONF] = conf
        else:
            entry[_STRIDE] = stride
            entry[_CONF] = conf = 1
        entry[_LAST] = line_addr
        if conf < self.train_threshold:
            return []
        fills = [line_addr + stride * (self.distance + i)
                 for i in range(self.degree)]
        self.issued += len(fills)
        return fills

    def reset(self) -> None:
        """Forget all streams."""
        self._table.clear()
        self._last_line = None
        self.issued = 0
