"""Hardware stride prefetcher (region-based stream detector).

Models an L2-streamer-style prefetcher: streams are tracked per 4 KiB
*region* (as Intel's L2 streamer does), not per instruction.  Each region
tracks its last accessed line and stride; after ``train_threshold``
consistent strides the prefetcher issues fills ``distance`` lines ahead
(``degree`` lines per trigger).

Region tracking is load-bearing for the paper's Fig. 2/Fig. 5 story:
when prefetch code adds a *look-ahead* load stream through the same
array (``base[i + c/2]`` interleaved with ``base[i]``), both streams
land in the same regions and compete for the region's limited stream
entries (two per region, like recent Intel streamers), degrading
coverage.  That is precisely why the pass must emit its own staggered
stride prefetch even on machines with hardware prefetchers.
"""

from __future__ import annotations

from dataclasses import dataclass

#: log2(lines per tracked region): 64 lines = 4 KiB regions.
REGION_BITS = 6


@dataclass
class _StreamEntry:
    last_line: int
    stride: int = 0
    confidence: int = 0


class StridePrefetcher:
    """Per-region stride detector issuing line fills.

    :param distance: how many strides ahead to prefetch.
    :param degree: fills issued per triggering access.
    :param train_threshold: consistent strides needed before issuing.
    :param table_size: tracked regions (LRU replacement).
    """

    #: Streams tracked per region; interleaved access points beyond
    #: this degrade coverage (the Fig. 2 "intuitive scheme" effect).
    STREAMS_PER_REGION = 2

    def __init__(self, distance: int = 4, degree: int = 2,
                 train_threshold: int = 2, table_size: int = 32):
        self.distance = distance
        self.degree = degree
        self.train_threshold = train_threshold
        self.table_size = table_size
        self._table: dict[int, list[_StreamEntry]] = {}
        self._last_line: int | None = None
        self.issued = 0

    def observe(self, pc: int, line_addr: int) -> list[int]:
        """Train on a demand access; returns line addresses to prefetch.

        ``pc`` is accepted for interface stability but streams are keyed
        by memory region (see module docstring).
        """
        if line_addr == self._last_line:
            # Repeat of the immediately preceding access: the region is
            # already MRU and the matched stream sees stride 0, so the
            # full path would mutate nothing and return no fills.
            return []
        self._last_line = line_addr
        region = line_addr >> REGION_BITS
        streams = self._table.get(region)
        if streams is None:
            if len(self._table) >= self.table_size:
                del self._table[next(iter(self._table))]
            self._table[region] = [_StreamEntry(last_line=line_addr)]
            return []
        # LRU touch.
        del self._table[region]
        self._table[region] = streams

        # Match the stream whose last access is closest to this line.
        entry = min(streams, key=lambda s: abs(line_addr - s.last_line))
        stride = line_addr - entry.last_line
        if stride == 0:
            return []  # same line: no information
        if abs(stride) > 8 and len(streams) < self.STREAMS_PER_REGION:
            # Too far from any tracked stream: open a second one.
            streams.append(_StreamEntry(last_line=line_addr))
            return []
        if stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, 8)
        else:
            entry.stride = stride
            entry.confidence = 1
        entry.last_line = line_addr
        if entry.confidence < self.train_threshold:
            return []
        fills = [line_addr + entry.stride * (self.distance + i)
                 for i in range(self.degree)]
        self.issued += len(fills)
        return fills

    def reset(self) -> None:
        """Forget all streams."""
        self._table.clear()
        self._last_line = None
        self.issued = 0
