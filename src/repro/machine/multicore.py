"""Multicore simulation by interleaving interpreters over shared DRAM.

Each core runs its own interpreter (own caches, TLB, core model) but all
cores share one :class:`~repro.machine.dram.DRAMChannel`.  The scheduler
repeatedly resumes the interpreter whose core clock is furthest behind,
so requests reach the shared channel in approximately global time order.
Used by the Fig. 9 bandwidth experiment.

Within-run parallelism
----------------------

``REPRO_SIM_MC_WORKERS=<n>`` (or ``workers=`` explicitly) switches to a
*barrier schedule*: every live core advances one quantum concurrently on
a worker-thread pool, each against a **private** DRAM channel, and the
channels are reconciled at the epoch barrier — the canonical channel
horizon advances by the *sum* of the bandwidth every core consumed (and
at least to the latest per-core horizon), and each private channel is
re-based on the canonical horizon before the next epoch.  Both the merge
(fixed core-index order, commutative sums/maxes) and each core's epoch
(private state only) are order-independent, so the schedule is
**deterministic**: two parallel runs produce identical results
regardless of thread timing.  It is *not* bit-identical to the
sequential shared-queue schedule — cross-core contention is settled at
quantum granularity instead of per request — so the mode is off by
default and the two schedules are tagged on :class:`MulticoreResult`.

The threads mostly contend on the interpreter's Python bytecode (the
GIL), so wall-clock gains today come on free-threaded builds; the
barrier structure is what bounds the determinism argument, not the
thread count.
"""

from __future__ import annotations

import heapq
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..envcfg import env_int
from ..ir.module import Module
from .configs import MachineConfig
from .dram import DRAMChannel
from .interpreter import Interpreter, RunResult
from .memory import Memory


@dataclass
class MulticoreResult:
    """Outcome of a multicore run.

    :ivar per_core: each core's :class:`RunResult`.
    :ivar makespan: cycles until the *last* core finished.
    :ivar schedule: ``"shared-queue"`` (sequential reference scheduler)
        or ``"barrier"`` (parallel epoch schedule).
    """

    per_core: list[RunResult]
    makespan: float
    schedule: str = "shared-queue"

    @property
    def throughput(self) -> float:
        """Tasks completed per makespan-normalised unit (higher=better)."""
        return len(self.per_core) / self.makespan if self.makespan else 0.0


#: Upper bound on ``REPRO_SIM_MC_WORKERS`` — the barrier schedule runs
#: one thread per live core, so more than this is a typo.
MAX_MC_WORKERS = 256


def mc_workers(explicit: int | None = None) -> int:
    """Resolve the worker count: explicit setting, else the
    ``REPRO_SIM_MC_WORKERS`` environment variable (default 0 = the
    sequential shared-queue scheduler).

    The variable is validated like the other runtime knobs
    (:func:`repro.envcfg.env_int`): a non-integer or negative value
    warns and falls back to the sequential scheduler, an absurd one
    clamps to :data:`MAX_MC_WORKERS` — never a crash.
    """
    if explicit is not None:
        return max(0, explicit)
    return env_int("REPRO_SIM_MC_WORKERS", 0, minimum=0,
                   maximum=MAX_MC_WORKERS)


def run_multicore(modules: list[Module], func_name: str,
                  args_per_core: list[list], config: MachineConfig,
                  memories: list[Memory] | None = None,
                  quantum: int = 2000,
                  workers: int | None = None) -> MulticoreResult:
    """Run one task per core with a shared DRAM channel.

    :param modules: one module per core (typically copies of the same
        program; each core needs its own, since interpreters compile and
        cache per-module state).
    :param args_per_core: entry-function arguments per core.
    :param memories: per-core address spaces (fresh ones if omitted).
    :param quantum: instructions executed per scheduling turn.
    :param workers: worker threads for the barrier schedule (``None`` =
        follow ``REPRO_SIM_MC_WORKERS``; 0/1 = sequential reference).
    """
    n = len(modules)
    if len(args_per_core) != n:
        raise ValueError("need one argument list per core")
    nworkers = mc_workers(workers)
    if nworkers > 1 and n > 1:
        return _run_barrier(modules, func_name, args_per_core, config,
                            memories, quantum, nworkers)
    shared_dram = DRAMChannel(config.dram_latency,
                              config.dram_cycles_per_line,
                              config.dram_contention_penalty)
    shared_dram.set_sharers(n)
    interpreters = []
    for i in range(n):
        memory = memories[i] if memories else Memory(config.line_size)
        interpreters.append(Interpreter(
            modules[i], memory, machine=config, dram=shared_dram))

    # Min-heap of (core_time, index, generator).
    heap: list[tuple[float, int]] = []
    gens = []
    for i, interp in enumerate(interpreters):
        gen = interp.run_stepped(func_name, args_per_core[i],
                                 yield_every=quantum)
        gens.append(gen)
        heapq.heappush(heap, (0.0, i))

    finished: dict[int, RunResult] = {}
    while heap:
        _, index = heapq.heappop(heap)
        try:
            t = next(gens[index])
            heapq.heappush(heap, (t, index))
        except StopIteration:
            finished[index] = interpreters[index]._result

    per_core = [finished[i] for i in range(n)]
    makespan = max(r.cycles for r in per_core)
    return MulticoreResult(per_core=per_core, makespan=makespan)


def _step(gen) -> float | None:
    """Advance one core by one quantum; ``None`` when it finished."""
    try:
        return next(gen)
    except StopIteration:
        return None


def _run_barrier(modules: list[Module], func_name: str,
                 args_per_core: list[list], config: MachineConfig,
                 memories: list[Memory] | None, quantum: int,
                 workers: int) -> MulticoreResult:
    """The parallel epoch scheduler (see the module docstring)."""
    n = len(modules)
    channels = []
    interpreters = []
    for i in range(n):
        channel = DRAMChannel(config.dram_latency,
                              config.dram_cycles_per_line,
                              config.dram_contention_penalty)
        channel.set_sharers(n)
        channels.append(channel)
        memory = memories[i] if memories else Memory(config.line_size)
        interpreters.append(Interpreter(
            modules[i], memory, machine=config, dram=channel))
    gens = [interp.run_stepped(func_name, args_per_core[i],
                               yield_every=quantum)
            for i, interp in enumerate(interpreters)]

    alive = list(range(n))
    horizon = 0.0  # canonical channel-free time across all cores
    with ThreadPoolExecutor(max_workers=min(workers, n)) as pool:
        while alive:
            busy_before = []
            for i in alive:
                channels[i]._next_free = horizon
                busy_before.append(channels[i].stats.busy_cycles)
            # The barrier: every live core advances one quantum against
            # private state only, so thread order cannot matter.
            outcomes = list(pool.map(_step, (gens[i] for i in alive)))
            consumed = 0.0
            latest = horizon
            for pos, i in enumerate(alive):
                consumed += channels[i].stats.busy_cycles \
                    - busy_before[pos]
                nf = channels[i]._next_free
                if nf > latest:
                    latest = nf
            merged = horizon + consumed
            horizon = merged if merged > latest else latest
            alive = [i for pos, i in enumerate(alive)
                     if outcomes[pos] is not None]

    per_core = [interp._result for interp in interpreters]
    makespan = max(r.cycles for r in per_core)
    return MulticoreResult(per_core=per_core, makespan=makespan,
                           schedule="barrier")
