"""Multicore simulation by interleaving interpreters over shared DRAM.

Each core runs its own interpreter (own caches, TLB, core model) but all
cores share one :class:`~repro.machine.dram.DRAMChannel`.  The scheduler
repeatedly resumes the interpreter whose core clock is furthest behind,
so requests reach the shared channel in approximately global time order.
Used by the Fig. 9 bandwidth experiment.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..ir.module import Module
from .configs import MachineConfig
from .dram import DRAMChannel
from .interpreter import Interpreter, RunResult
from .memory import Memory


@dataclass
class MulticoreResult:
    """Outcome of a multicore run.

    :ivar per_core: each core's :class:`RunResult`.
    :ivar makespan: cycles until the *last* core finished.
    """

    per_core: list[RunResult]
    makespan: float

    @property
    def throughput(self) -> float:
        """Tasks completed per makespan-normalised unit (higher=better)."""
        return len(self.per_core) / self.makespan if self.makespan else 0.0


def run_multicore(modules: list[Module], func_name: str,
                  args_per_core: list[list], config: MachineConfig,
                  memories: list[Memory] | None = None,
                  quantum: int = 2000) -> MulticoreResult:
    """Run one task per core with a shared DRAM channel.

    :param modules: one module per core (typically copies of the same
        program; each core needs its own, since interpreters compile and
        cache per-module state).
    :param args_per_core: entry-function arguments per core.
    :param memories: per-core address spaces (fresh ones if omitted).
    :param quantum: instructions executed per scheduling turn.
    """
    n = len(modules)
    if len(args_per_core) != n:
        raise ValueError("need one argument list per core")
    shared_dram = DRAMChannel(config.dram_latency,
                              config.dram_cycles_per_line,
                              config.dram_contention_penalty)
    shared_dram.set_sharers(n)
    interpreters = []
    for i in range(n):
        memory = memories[i] if memories else Memory(config.line_size)
        interpreters.append(Interpreter(
            modules[i], memory, machine=config, dram=shared_dram))

    # Min-heap of (core_time, index, generator).
    heap: list[tuple[float, int]] = []
    gens = []
    for i, interp in enumerate(interpreters):
        gen = interp.run_stepped(func_name, args_per_core[i],
                                 yield_every=quantum)
        gens.append(gen)
        heapq.heappush(heap, (0.0, i))

    finished: dict[int, RunResult] = {}
    while heap:
        _, index = heapq.heappop(heap)
        try:
            t = next(gens[index])
            heapq.heappush(heap, (t, index))
        except StopIteration:
            finished[index] = interpreters[index]._result

    per_core = [finished[i] for i in range(n)]
    makespan = max(r.cycles for r in per_core)
    return MulticoreResult(per_core=per_core, makespan=makespan)
