"""Flat byte-addressed memory for the IR interpreter.

Allocations are contiguous, line-aligned regions backed by numpy arrays,
so workload drivers can bulk-initialise inputs without interpreting IR
(matching the paper's methodology of timing "everything apart from data
generation and initialisation").  Loads and stores are bounds-checked:
an out-of-range access raises :class:`MemoryFault`, which the fault-
avoidance tests rely on.
"""

from __future__ import annotations

import bisect

import numpy as np


class MemoryFault(Exception):
    """An access outside every live allocation (segfault analogue)."""


class Allocation:
    """One contiguous allocated region.

    :ivar base: first byte address.
    :ivar element_size: bytes per element (addressing granularity).
    :ivar count: number of elements.
    :ivar data: backing store, a Python list with one entry per element
        (plain lists index faster than numpy scalars in the interpreter's
        inner loop).  Use :meth:`fill` / :meth:`as_numpy` for bulk I/O.
    """

    __slots__ = ("base", "element_size", "count", "name", "is_float",
                 "data")

    def __init__(self, base: int, element_size: int, count: int,
                 name: str, is_float: bool):
        self.base = base
        self.element_size = element_size
        self.count = count
        self.name = name
        self.is_float = is_float
        self.data = [0.0] * count if is_float else [0] * count

    def fill(self, values) -> None:
        """Bulk-initialise from any sequence (numpy array, list, ...)."""
        if len(values) != self.count:
            raise ValueError(
                f"fill length {len(values)} != count {self.count}")
        if hasattr(values, "tolist"):
            values = values.tolist()
        self.data[:] = values

    def as_numpy(self) -> np.ndarray:
        """Snapshot the contents as a numpy array."""
        dtype = np.float64 if self.is_float else np.int64
        return np.asarray(self.data, dtype=dtype)

    @property
    def size_bytes(self) -> int:
        """Total bytes spanned by the allocation."""
        return self.element_size * self.count

    @property
    def end(self) -> int:
        """One past the last byte address."""
        return self.base + self.size_bytes

    def index_of(self, addr: int) -> int:
        """Element index for a byte address; raises on misalignment."""
        offset = addr - self.base
        index, rem = divmod(offset, self.element_size)
        if rem:
            raise MemoryFault(
                f"misaligned access at {addr:#x} in {self.name} "
                f"(element size {self.element_size})")
        return index

    def __repr__(self) -> str:
        return (f"<Allocation {self.name} base={self.base:#x} "
                f"{self.count}x{self.element_size}B>")


class Memory:
    """The interpreter's address space.

    Addresses start at ``BASE`` and allocations are aligned to
    ``line_size`` so cache-line behaviour matches a real allocator's.
    """

    BASE = 0x10000

    def __init__(self, line_size: int = 64):
        self.line_size = line_size
        self._next = self.BASE
        self._bases: list[int] = []
        self._allocations: list[Allocation] = []

    @property
    def allocations(self) -> list[Allocation]:
        """All live allocations in address order."""
        return list(self._allocations)

    def allocate(self, element_size: int, count: int, name: str = "",
                 is_float: bool = False) -> Allocation:
        """Reserve a new zero-initialised region and return it."""
        if element_size <= 0 or count < 0:
            raise ValueError("bad allocation shape")
        base = self._next
        alloc = Allocation(base, element_size, count,
                           name or f"alloc{len(self._allocations)}",
                           is_float)
        # Pad to the next line boundary plus one guard line, so distinct
        # allocations never share a cache line.
        size = max(alloc.size_bytes, 1)
        padded = (size + 2 * self.line_size - 1) // self.line_size
        self._next = base + padded * self.line_size
        self._bases.append(base)
        self._allocations.append(alloc)
        return alloc

    def allocation_at(self, addr: int) -> Allocation:
        """The allocation containing byte address ``addr``.

        Raises :class:`MemoryFault` when the address is unmapped.
        """
        index = bisect.bisect_right(self._bases, addr) - 1
        if index >= 0:
            alloc = self._allocations[index]
            if alloc.base <= addr < alloc.end:
                return alloc
        raise MemoryFault(f"access to unmapped address {addr:#x}")

    def load(self, addr: int):
        """Read the element at ``addr`` (bounds- and alignment-checked)."""
        alloc = self.allocation_at(addr)
        return alloc.data[alloc.index_of(addr)]

    def store(self, addr: int, value) -> None:
        """Write the element at ``addr`` (bounds- and alignment-checked)."""
        alloc = self.allocation_at(addr)
        alloc.data[alloc.index_of(addr)] = value
