"""Two-level TLB and page-walker model.

Three features matter for the paper's results:

* **walk concurrency** — the Cortex-A57 "can only support one page-table
  walk at a time on a TLB miss", serialising the very misses software
  prefetching tries to overlap (§6.1); the model exposes this as
  ``max_walks``;
* **page size** — transparent huge pages shrink the number of TLB misses
  for large working sets (Fig. 10); the model takes ``page_bits`` so a
  run can switch between 4 KiB and 2 MiB pages;
* **the second-level TLB** — software prefetches warm both TLB levels,
  so the later demand access pays only the L2-TLB latency even when the
  small L1 TLB has evicted the page again.

Page-table walks are charged a fixed latency calibrated to PTEs hitting
in the cache hierarchy (page tables for the paper's working sets are tens
of KiB and stay cache-resident).  Software prefetches *do* fill the TLB —
the paper credits part of their benefit to exactly this side effect.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass
class TLBStats:
    """Hit/miss counters for the TLB."""

    hits: int = 0
    l2_hits: int = 0
    misses: int = 0
    walk_cycles: float = 0.0

    @property
    def accesses(self) -> int:
        """Total translations requested."""
        return self.hits + self.l2_hits + self.misses

    def snapshot(self) -> dict:
        """All counters plus the derived total as a plain dict."""
        snap = dataclasses.asdict(self)
        snap["accesses"] = self.accesses
        return snap


class TLB:
    """A two-level LRU TLB with a finite-concurrency page walker.

    :param entries: first-level TLB entries (fully associative, LRU).
    :param page_bits: log2 of the page size (12 = 4KiB, 21 = 2MiB).
    :param walk_latency: cycles for one page-table walk.
    :param max_walks: concurrent walks the walker supports.
    :param l2_entries: second-level TLB entries (0 = no L2 TLB).
    :param l2_latency: added cycles for an L1-miss/L2-hit translation.
    """

    def __init__(self, entries: int, page_bits: int = 12,
                 walk_latency: int = 35, max_walks: int = 2,
                 l2_entries: int = 0, l2_latency: int = 10):
        if entries < 1 or max_walks < 1:
            raise ValueError("TLB needs at least one entry and one walker")
        self.entries = entries
        self.page_bits = page_bits
        self.walk_latency = walk_latency
        self.max_walks = max_walks
        self.l2_entries = l2_entries
        self.l2_latency = l2_latency
        self._pages: dict[int, None] = {}
        self._l2_pages: dict[int, None] = {}
        # Completion times of in-flight walks (bounded list).
        self._walks: list[float] = []
        self.stats = TLBStats()

    @property
    def page_size(self) -> int:
        """Page size in bytes."""
        return 1 << self.page_bits

    def pages_of(self, addrs):
        """Vectorized page numbers for an int64 address array.

        Batch entry point for the vectorized tier: int64 ``>>`` is the
        same arithmetic shift as Python's, so the page numbers are
        bit-identical to the per-access ``addr >> page_bits``.
        """
        return addrs >> self.page_bits

    def translate(self, addr: int, time: float) -> float:
        """Translate ``addr`` at ``time``; returns translation-ready time.

        L1 hits are free (latency folded into the cache access); L2 hits
        cost ``l2_latency``; misses wait for a free walker, then take
        ``walk_latency`` cycles.
        """
        page = addr >> self.page_bits
        pages = self._pages
        if page in pages:
            del pages[page]
            pages[page] = None
            self.stats.hits += 1
            return time
        return self._miss(page, time)

    def _miss(self, page: int, time: float) -> float:
        """L1-TLB-miss tail of :meth:`translate` (L2 probe, then walk)."""
        if page in self._l2_pages:
            del self._l2_pages[page]
            self._l2_pages[page] = None
            self.stats.l2_hits += 1
            self._insert_l1(page)
            return time + self.l2_latency
        self.stats.misses += 1
        # Acquire a walker: if all are busy, wait for the earliest one.
        start = time
        walks = self._walks
        if len(walks) >= self.max_walks:
            walks.sort()
            while walks and walks[0] <= time:
                walks.pop(0)
            if len(walks) >= self.max_walks:
                start = walks.pop(0)
        done = start + self.walk_latency
        walks.append(done)
        self.stats.walk_cycles += done - time
        self._insert_l1(page)
        self._insert_l2(page)
        return done

    def _insert_l1(self, page: int) -> None:
        if len(self._pages) >= self.entries:
            del self._pages[next(iter(self._pages))]
        self._pages[page] = None

    def _insert_l2(self, page: int) -> None:
        if not self.l2_entries:
            return
        if page in self._l2_pages:
            del self._l2_pages[page]
        elif len(self._l2_pages) >= self.l2_entries:
            del self._l2_pages[next(iter(self._l2_pages))]
        self._l2_pages[page] = None

    def flush(self) -> None:
        """Drop all entries and in-flight walks."""
        self._pages.clear()
        self._l2_pages.clear()
        self._walks.clear()

    def snapshot(self) -> dict:
        """Configuration and statistics as a plain dict (JSON-ready)."""
        return {
            "entries": self.entries,
            "l2_entries": self.l2_entries,
            "page_bits": self.page_bits,
            "max_walks": self.max_walks,
            "stats": self.stats.snapshot(),
        }
