"""Fused basic-block execution: the interpreter's fast path.

The slot-machine compiler (:mod:`repro.machine.interpreter`) produces one
tuple per instruction and dispatches on an opcode kind in a large
``if``/``elif`` chain, paying a Python-level dispatch plus one or more
core-model method calls per dynamic instruction.  This module rewrites
each basic block's straight-line runs of fusable instructions into a
single generated-Python closure (a *superinstruction*): operand slots,
constants, per-op latencies and the core's issue/retire arithmetic are
baked into the source text, the closure is ``exec``-compiled once, and
the core's architectural state is read at segment entry and written back
at segment exit — one core interaction per segment instead of one method
call per instruction.  Common 64-bit integer wrap-around arithmetic,
comparisons and casts are emitted as inline expressions (no closure
call), and the memory system's hot-line hit path (see
:class:`~repro.machine.system.MemorySystem`) is inlined into the segment
with the full-walk call as the fallback.

The per-op code generation lives in :class:`_Emitter`, which is
parametrized over operand naming so the same emission logic serves two
execution tiers:

* **fused segments** (this module) address the interpreter's register
  file directly (``regs[i]`` / ``ready[i]``);
* **compiled traces** (:mod:`repro.machine.tracejit`) lower register
  slots to function locals (``r{i}`` / ``t{i}``) and splice whole loop
  iterations — ops, terminators, phi moves — into one closure.

Equivalence contract
--------------------

The generated code replays *exactly* the arithmetic of the slow path, in
the same order, on the same floats:

* ``InOrderCore.op/load/store/prefetch`` and
  ``OutOfOrderCore._fetch/_retire`` are transcribed operation-for-
  operation (``max(a, b)`` becomes the equivalent compare-and-assign),
  so cycle counts are bit-identical;
* the inlined hit path performs the same LRU touches, hit counters,
  dirty marking and prefetcher training the full hierarchy walk would,
  and falls back to the real walk whenever its guards fail;
* division/modulo by compile-time power-of-two machine parameters
  (line size, set count) is emitted as shifts/masks — identical results
  for every int under Python's floor-division semantics;
* instruction counters are charged in bulk with the same totals.

The only observable difference is *when* ``RunStats`` memory-op counters
are incremented: the slow path counts per instruction, segments count at
segment end.  A run that raises ``MemoryFault`` mid-segment therefore
leaves slightly different in-flight counters behind — completed runs are
indistinguishable.

Calls and allocations are never fused (they recurse into the interpreter
or mutate the address space layout); they split a block into several
segments and stay on the dispatch path.

Set ``REPRO_SIM_FASTPATH=0`` to disable fusion (and the memory-system
hot-line memo) and force the reference slow path everywhere.

Telemetry interaction (``REPRO_SIM_TELEMETRY=1``): attaching a
:class:`~repro.telemetry.TelemetryCollector` clears the memory system's
``fastpath`` flag, so the emitter sees ``ms.fastpath`` false and emits
plain ``_ms_load``/``_ms_store``/``_ms_prefetch`` calls instead of the
inlined hot-line hit path — every memory operation then takes the
instrumented reference walk while ALU fusion stays on.  With telemetry
off (the default) nothing here changes: the generated code replays the
same arithmetic it did before telemetry existed, so the fast path pays
zero cost for the feature.
"""

from __future__ import annotations

import os

from ..telemetry.spans import span
from .memory import MemoryFault

# Compiled opcode kinds (shared with the interpreter, which imports them
# from here so the two modules cannot drift apart).
_BIN, _CMP, _SELECT, _CAST, _GEP, _LOAD, _STORE, _PREFETCH, _CALL, \
    _ALLOC = range(10)
#: Kind tag of a fused segment: ``(SEG, closure)``.
_SEG = 10

#: Kinds that may be folded into a fused segment (or a compiled trace).
_FUSABLE = frozenset(
    (_BIN, _CMP, _SELECT, _CAST, _GEP, _LOAD, _STORE, _PREFETCH))

#: ALU latency default, mirrored from :mod:`repro.machine.core`.
_ALU_LATENCY = 1.0

_M64 = (1 << 64) - 1
_H64 = 1 << 63
_W64 = 1 << 64

#: 64-bit integer binops whose wrap-around form is emitted inline.
_INLINE_I64 = {
    "add": "({a} + {b})", "sub": "({a} - {b})", "mul": "({a} * {b})",
    "and": "({a} & {b})", "or": "({a} | {b})", "xor": "({a} ^ {b})",
    "shl": "({a} << ({b} & 63))", "ashr": "({a} >> ({b} & 63))",
    "lshr": f"(({{a}} & {_M64}) >> ({{b}} & 63))",
}
#: Float binops (no wrapping).
_INLINE_FLOAT = {"fadd": "({a} + {b})", "fsub": "({a} - {b})",
                 "fmul": "({a} * {b})", "fdiv": "({a} / {b})"}
#: Comparison predicates as inline expressions.
_INLINE_CMP = {
    "eq": "{a} == {b}", "oeq": "{a} == {b}",
    "ne": "{a} != {b}", "one": "{a} != {b}",
    "slt": "{a} < {b}", "olt": "{a} < {b}",
    "sle": "{a} <= {b}", "ole": "{a} <= {b}",
    "sgt": "{a} > {b}", "ogt": "{a} > {b}",
    "sge": "{a} >= {b}", "oge": "{a} >= {b}",
    "ult": f"({{a}} & {_M64}) < ({{b}} & {_M64})",
    "ule": f"({{a}} & {_M64}) <= ({{b}} & {_M64})",
    "ugt": f"({{a}} & {_M64}) > ({{b}} & {_M64})",
    "uge": f"({{a}} & {_M64}) >= ({{b}} & {_M64})",
}

#: Source text -> compiled code object.  Source embeds every constant
#: (slots, pcs, latencies, machine parameters) but no object identities,
#: so one code object serves every interpreter with the same block shape.
_CODE_CACHE: dict[str, object] = {}


def fastpath_enabled(explicit: bool | None = None) -> bool:
    """Resolve a fast-path flag: explicit setting, else the
    ``REPRO_SIM_FASTPATH`` environment variable (default on)."""
    if explicit is not None:
        return bool(explicit)
    return os.environ.get("REPRO_SIM_FASTPATH", "1") != "0"


def _div_expr(operand: str, divisor: int) -> str:
    """``operand // divisor`` as a shift when the divisor allows.

    Python's ``//`` and ``>>`` agree (floor semantics) for every int
    when the divisor is a power of two, so this is bit-identical."""
    if divisor > 0 and divisor & (divisor - 1) == 0:
        return f"{operand} >> {divisor.bit_length() - 1}"
    return f"{operand} // {divisor}"


def _mod_expr(operand: str, modulus: int) -> str:
    """``operand % modulus`` as a mask when the modulus allows."""
    if modulus > 0 and modulus & (modulus - 1) == 0:
        return f"{operand} & {modulus - 1}"
    return f"{operand} % {modulus}"


def fuse_function(compiled, mode: str, bindings: dict) -> None:
    """Rewrite ``compiled.blocks`` in place, fusing instruction runs.

    The pre-fusion blocks are stashed as ``compiled.raw_blocks`` so the
    trace-JIT tier (:mod:`repro.machine.tracejit`) can recompile hot
    loop paths from the original instruction tuples.

    :param compiled: a :class:`~repro.machine.interpreter._CompiledFunction`.
    :param mode: ``"func"`` (no timing), ``"inorder"`` or ``"ooo"``.
    :param bindings: runtime objects generated code binds to: ``memory``
        (:class:`Memory`), ``stats`` (:class:`RunStats`), and for timed
        modes ``core`` and ``ms`` (the :class:`MemorySystem`).
    """
    with span("compile", "fuse", function=compiled.function.name,
              mode=mode, blocks=len(compiled.blocks)):
        compiled.raw_blocks = compiled.blocks
        compiled.blocks = [
            (_fuse_block(insts, mode, bindings), term, count)
            for insts, term, count in compiled.blocks]


def _fuse_block(insts: list, mode: str, bindings: dict) -> list:
    items: list = []
    run: list = []
    for inst in insts:
        if inst[0] in _FUSABLE:
            run.append(inst)
        else:
            if run:
                items.append((_SEG, _compile_segment(run, mode, bindings)))
                run = []
            items.append(inst)
    if run:
        items.append((_SEG, _compile_segment(run, mode, bindings)))
    return items


class _Emitter:
    """Generates the specialized Python source for fusable ops.

    One instance accumulates source lines (:attr:`body`) and runtime
    bindings (:attr:`env`) for a single generated closure.  The operand
    naming is the only thing the two tiers disagree on:

    * ``locals_tier=False`` (fused segments): operands address the
      interpreter's register file, ``regs[i]`` / ``ready[i]``;
    * ``locals_tier=True`` (compiled traces): operands are function
      locals ``r{i}`` / ``t{i}``; every slot touched is recorded in
      :attr:`slots` so the trace assembler can emit the load/store
      prologue and epilogue.

    All timing arithmetic (issue/retire, hot-line probe, blocking
    thresholds) is identical between tiers — it is the transcription of
    the core and memory-system models documented in the module
    docstring.
    """

    def __init__(self, mode: str, bind: dict, env: dict,
                 locals_tier: bool = False):
        self.mode = mode
        self.timed = mode != "func"
        self.env = env
        self.body: list[str] = []
        self.locals_tier = locals_tier
        #: When false, only the timing arithmetic is emitted: the
        #: vectorized tier (:mod:`repro.machine.vectorsim`) computes all
        #: functional effects with numpy up front and replays timing
        #: from precomputed per-iteration values.
        self.functional = True
        self.slots: set[int] = set()
        self.counts = {"loads": 0, "stores": 0, "prefetches": 0}
        self.site = 0
        self._nfn = 0
        self.hot = None
        self.stat_locals: set[tuple[str, str]] = set()
        env["_MF"] = MemoryFault
        env["_alloc_at"] = bind["memory"].allocation_at
        env["_stats"] = bind["stats"]
        if not self.timed:
            return
        core = bind["core"]
        ms = bind["ms"]
        env["_core"] = core
        env["_ms_load"] = ms.load
        env["_ms_store"] = ms.store
        env["_ms_prefetch"] = ms.prefetch
        self.ic = repr(core.issue_cost)
        if mode == "inorder":
            self.bt = repr(core._block_threshold)
        else:
            env["_rob"] = core._rob
            self.nrob = len(core._rob)
        if ms.fastpath:
            # Bindings for the inlined hot-line hit path.  All of these
            # objects are stable for the MemorySystem's lifetime (flush
            # clears them in place).
            l1 = ms.caches[0]
            env.update(_hotget=ms._hot.get, _l1s=l1._sets,
                       _tp=ms.tlb._pages,
                       _mst=ms.stats, _tst=ms.tlb.stats,
                       _l1st=l1.stats, _pf=ms.prefetcher,
                       _observe=ms.prefetcher.observe,
                       _hwfill=ms._issue_hw_fills,
                       _ms_demand=ms._demand_fast,
                       _ms_pfmiss=ms._prefetch_miss_fast)
            # Per-level L1-below set arrays for inlined dirty marking.
            self.dirty = []
            for i, c in enumerate(ms.caches[1:]):
                env[f"_ds{i}"] = c._sets
                self.dirty.append(
                    (f"_ds{i}", _mod_expr("line", c.num_sets)))
            self.hot = {
                "line": _div_expr("addr", ms.line_size),
                "set": _mod_expr("line", l1.num_sets),
                "page": f"(page := addr >> {ms.tlb.page_bits})",
                "lat": repr(l1.latency),
            }

    # -- operand naming ------------------------------------------------

    def out(self, line: str) -> None:
        """Append one source line (relative indentation preserved)."""
        self.body.append(line)

    def reg(self, slot: int) -> str:
        if self.locals_tier:
            self.slots.add(slot)
            return f"r{slot}"
        return f"regs[{slot}]"

    def rdy(self, slot: int) -> str:
        if self.locals_tier:
            self.slots.add(slot)
            return f"t{slot}"
        return f"ready[{slot}]"

    def operand(self, is_const: bool, payload) -> str:
        """Source text of one pre-resolved operand."""
        return repr(payload) if is_const else self.reg(payload)

    def fn_call(self, fn) -> str:
        name = f"_f{self._nfn}"
        self._nfn += 1
        self.env[name] = fn
        return name

    # -- core-model transcription --------------------------------------

    def core_prologue(self) -> None:
        """Load the core's architectural state into locals."""
        if self.mode == "inorder":
            self.out("t = _core.time")
        else:
            self.out("head = _core._rob_head")
            self.out("ft = _core.fetch_time")
            self.out("lr = _core._last_retire")
            self.out("cm = _core.completion_max")

    def core_epilogue(self) -> None:
        """Write the locals back to the core."""
        if self.mode == "inorder":
            self.out("_core.time = t")
        else:
            self.out("_core._rob_head = head")
            self.out("_core.fetch_time = ft")
            self.out("_core._last_retire = lr")
            self.out("_core.completion_max = cm")

    def ooo_retire(self, done: str) -> None:
        emit = self.out
        emit(f"if {done} > lr: lr = {done}")
        emit("_rob[head] = lr")
        emit("head += 1")
        emit(f"if head == {self.nrob}: head = 0")
        emit(f"if {done} > cm: cm = {done}")

    def issue_and(self, specs) -> None:
        """Issue time for one op into ``issue``: the core clock advance
        with each non-const operand's ready time folded in directly
        (``max`` is assoc/commutative, so folding the operand compares
        into the issue compare chain is bit-identical to computing
        ``dep = max(ready...)`` first, with fewer temporaries)."""
        emit = self.out
        if self.mode == "inorder":
            emit(f"issue = t + {self.ic}")
        else:
            # _fetch(): fetch = max(ft + ic, rob[head]); ft = fetch.
            emit(f"issue = ft + {self.ic}")
            emit("_s = _rob[head]")
            emit("if _s > issue: issue = _s")
            emit("ft = issue")
        for c, v in specs:
            if not c:
                r = self.rdy(v)
                emit(f"if {r} > issue: issue = {r}")

    def branch(self, dep: str | None) -> None:
        """``core.branch(dep)`` with core state in locals (trace tier).

        ``dep`` is a source expression for the condition's ready time,
        or ``None`` for a constant condition (dep 0.0, which never
        dominates the non-negative clock)."""
        emit = self.out
        if self.mode == "inorder":
            emit(f"t += {self.ic}")
            if dep is not None:
                emit(f"if {dep} > t: t = {dep}")
        else:
            emit(f"issue = ft + {self.ic}")
            emit("_s = _rob[head]")
            emit("if _s > issue: issue = _s")
            emit("ft = issue")
            if dep is not None:
                emit(f"if {dep} > issue: issue = {dep}")
            emit("done = issue + 1.0")
            self.ooo_retire("done")

    def alu(self, dst: int, specs, lat: float, *,
            value: str | None = None, wrapped: str | None = None) -> None:
        """One non-memory op: functional effect + issue/retire timing.

        :param value: expression assigned to the slot directly.
        :param wrapped: expression put through 64-bit signed wrap first.
        """
        emit = self.out
        if self.functional:
            if wrapped is not None:
                emit(f"_v = {wrapped} & {_M64}")
                emit(f"{self.reg(dst)} = "
                     f"_v - {_W64} if _v >= {_H64} else _v")
            else:
                emit(f"{self.reg(dst)} = {value}")
        if not self.timed:
            return
        self.issue_and(specs)
        if self.mode == "inorder":
            emit("t = issue")
            emit(f"{self.rdy(dst)} = issue + {lat!r}")
        else:
            emit(f"done = issue + {lat!r}")
            self.ooo_retire("done")
            emit(f"{self.rdy(dst)} = done")

    # -- memory-system transcription -----------------------------------

    def address(self, ptr_spec, site: int, op_name: str) -> None:
        """Resolve ``addr``; leaves the site memo in ``_m``.

        ``_m`` is ``[alloc, base, end, element_size, data]`` — richer
        than the dispatch path's one-slot allocation memo so the hot
        case needs no attribute (or property) lookups.
        """
        emit = self.out
        emit(f"addr = {self.operand(*ptr_spec)}")
        emit(f"_m = _c{site}")
        emit("if addr < _m[1] or addr >= _m[2]:")
        emit("    _a = _alloc_at(addr)")
        emit("    _m[0] = _a")
        emit("    _m[1] = _a.base")
        emit("    _m[2] = _a.end")
        emit("    _m[3] = _a.element_size")
        emit("    _m[4] = _a.data")
        emit("_q, _r = divmod(addr - _m[1], _m[3])")
        emit("if _r:")
        emit(f"    raise _MF('misaligned {op_name} at %#x' % addr)")

    def hot_probe(self) -> str:
        """Guard expression: line resident in L1 + page in L1 TLB."""
        hot = self.hot
        return (f"entry is not None and entry[0] <= issue and "
                f"(lines := _l1s[{hot['set']}]).get(line) is entry "
                f"and {hot['page']} in _tp")

    def stat(self, target: str, local: str) -> str:
        """One monotone counter bump.

        Fused segments bump the stats object directly; traces batch
        into a function local the assembler flushes at trace exit (the
        counters are write-only during a run, so only the mid-run
        ``MemoryFault`` caveat from the module docstring widens).
        """
        if self.locals_tier:
            self.stat_locals.add((local, target))
            return f"{local} += 1"
        return f"{target} += 1"

    def hot_touch(self) -> None:
        """LRU touches + hit counters of the replayed L1/TLB hit."""
        emit = self.out
        emit("    del _tp[page]")
        emit("    _tp[page] = None")
        emit(f"    {self.stat('_tst.hits', '_nth')}")
        emit("    del lines[line]")
        emit("    lines[line] = entry")

    def train(self, pc: int, indent: str) -> None:
        """Inlined ``_train_hw_prefetcher``: observe + rare fill issue."""
        emit = self.out
        emit(f"{indent}if line != _pf._last_line:")
        emit(f"{indent}    _fl = _observe({pc}, line)")
        emit(f"{indent}    if _fl:")
        emit(f"{indent}        _hwfill(_fl, issue)")

    def demand(self, pc: int, is_write: bool) -> None:
        """``rdy = <memory system demand access at issue>``."""
        emit = self.out
        hot = self.hot
        ms_call = "_ms_store" if is_write else "_ms_load"
        if hot is None:
            emit(f"rdy = {ms_call}({pc}, addr, issue)")
            return
        emit(f"line = {hot['line']}")
        emit("entry = _hotget(line)")
        emit(f"if {self.hot_probe()}:")
        emit(f"    {self.stat('_mst.demand_accesses', '_nda')}")
        self.hot_touch()
        emit(f"    {self.stat('_l1st.hits', '_nl1')}")
        if is_write:
            emit("    entry[1] = True")
            for sets_name, set_expr in self.dirty:
                emit(f"    _e = {sets_name}[{set_expr}].get(line)")
                emit("    if _e is not None:")
                emit("        _e[1] = True")
        self.train(pc, "    ")
        emit(f"    rdy = issue + {hot['lat']}")
        emit("else:")
        # The guard above replicates load()/store()'s own memo probe, so
        # on failure go straight to the inlined miss walk.
        emit(f"    rdy = _ms_demand({pc}, addr, issue, {is_write})")

    # -- functional memory effects (overridable per tier) --------------

    def load_functional(self, dst: int, ptr_spec, site: int) -> None:
        """Functional effect of a load: resolve ``addr`` + data read."""
        self.env[f"_c{site}"] = [None, 0, -1, 1, None]
        self.address(ptr_spec, site, "load")
        self.out(f"{self.reg(dst)} = _m[4][_q]")

    def store_functional(self, val_spec, ptr_spec, site: int) -> None:
        """Functional effect of a store: resolve ``addr`` + data write."""
        self.env[f"_c{site}"] = [None, 0, -1, 1, None]
        self.address(ptr_spec, site, "store")
        self.out(f"_m[4][_q] = {self.operand(*val_spec)}")

    def prefetch_functional(self, ptr_spec) -> None:
        """Resolve ``addr`` for a prefetch (no architectural effect)."""
        self.out(f"addr = {self.operand(*ptr_spec)}")

    # -- one fusable instruction ---------------------------------------

    def op(self, inst: tuple) -> None:
        """Emit functional + timing source for one instruction tuple."""
        from .core import _LATENCIES

        emit = self.out
        kind = inst[0]
        if kind == _BIN:
            _, dst, fn, ac, a, bc, b, opcode, bits = inst
            av, bv = self.operand(ac, a), self.operand(bc, b)
            lat = _LATENCIES.get(opcode, _ALU_LATENCY)
            specs = [(ac, a), (bc, b)]
            if opcode in _INLINE_FLOAT:
                self.alu(dst, specs, lat,
                         value=_INLINE_FLOAT[opcode].format(a=av, b=bv))
            elif bits == 64 and opcode in _INLINE_I64:
                self.alu(dst, specs, lat,
                         wrapped=_INLINE_I64[opcode].format(a=av, b=bv))
            else:
                self.alu(dst, specs, lat,
                         value=f"{self.fn_call(fn)}({av}, {bv})")
        elif kind == _CMP:
            _, dst, fn, ac, a, bc, b, pred = inst
            av, bv = self.operand(ac, a), self.operand(bc, b)
            cond = _INLINE_CMP[pred].format(a=av, b=bv)
            self.alu(dst, [(ac, a), (bc, b)], _ALU_LATENCY,
                     value=f"1 if {cond} else 0")
        elif kind == _SELECT:
            _, dst, cc, c, tc, t, fc, f = inst
            rhs = (f"({self.operand(tc, t)}) if ({self.operand(cc, c)}) "
                   f"else ({self.operand(fc, f)})")
            self.alu(dst, [(cc, c), (tc, t), (fc, f)], _ALU_LATENCY,
                     value=rhs)
        elif kind == _CAST:
            _, dst, fn, vc, v, opcode, fb, tb = inst
            vv = self.operand(vc, v)
            specs = [(vc, v)]
            if opcode in ("bitcast", "ptrtoint", "inttoptr", "sext"):
                self.alu(dst, specs, _ALU_LATENCY, value=vv)
            elif opcode == "zext":
                self.alu(dst, specs, _ALU_LATENCY,
                         value=f"({vv}) & {(1 << fb) - 1}")
            elif opcode == "trunc" and tb == 64:
                self.alu(dst, specs, _ALU_LATENCY, wrapped=f"({vv})")
            elif opcode == "sitofp":
                self.alu(dst, specs, _ALU_LATENCY, value=f"float({vv})")
            elif opcode == "fptosi" and tb == 64:
                self.alu(dst, specs, _ALU_LATENCY, wrapped=f"int({vv})")
            else:
                self.alu(dst, specs, _ALU_LATENCY,
                         value=f"{self.fn_call(fn)}({vv})")
        elif kind == _GEP:
            _, dst, elem, bc, b, ic_, i = inst
            rhs = (f"{self.operand(bc, b)} + "
                   f"{self.operand(ic_, i)} * {elem}")
            self.alu(dst, [(bc, b), (ic_, i)], _ALU_LATENCY, value=rhs)
        elif kind == _LOAD:
            _, dst, pc, pc_const, p, cache = inst
            self.counts["loads"] += 1
            self.load_functional(dst, (pc_const, p), self.site)
            self.site += 1
            if self.timed:
                self.issue_and([(pc_const, p)])
                self.demand(pc, is_write=False)
                if self.mode == "inorder":
                    emit(f"if rdy - issue > {self.bt}:")
                    emit("    t = rdy")
                    emit("else:")
                    emit("    t = issue")
                else:
                    self.ooo_retire("rdy")
                emit(f"{self.rdy(dst)} = rdy")
        elif kind == _STORE:
            _, pc, vc, v, pc_const, p, cache = inst
            self.counts["stores"] += 1
            self.store_functional((vc, v), (pc_const, p), self.site)
            self.site += 1
            if self.timed:
                self.issue_and([(vc, v), (pc_const, p)])
                self.demand(pc, is_write=True)
                if self.mode == "inorder":
                    emit("t = issue")
                else:
                    emit("done = issue + 1.0")
                    self.ooo_retire("done")
        elif kind == _PREFETCH:
            _, pc, pc_const, p = inst
            self.counts["prefetches"] += 1
            self.prefetch_functional((pc_const, p))
            if self.timed:
                self.issue_and([(pc_const, p)])
                hot = self.hot
                if hot is None:
                    emit(f"acc = _ms_prefetch({pc}, addr, issue)")
                else:
                    # Replay of MemorySystem.prefetch's fast path: an
                    # L1-resident line never waits, so no fill check.
                    emit(f"line = {hot['line']}")
                    emit("entry = _hotget(line)")
                    emit("if entry is not None and "
                         f"(lines := _l1s[{hot['set']}]).get(line)"
                         " is entry and "
                         f"{hot['page']} in _tp:")
                    emit(f"    {self.stat('_mst.sw_prefetches', '_nsp')}")
                    self.hot_touch()
                    emit("    acc = issue")
                    emit("else:")
                    emit(f"    acc = _ms_pfmiss({pc}, addr, line, issue)")
                if self.mode == "inorder":
                    emit("t = acc")
                else:
                    emit("done = acc + 1.0")
                    self.ooo_retire("done")
        else:  # pragma: no cover - callers filter kinds
            raise RuntimeError(f"kind {kind} is not fusable")


def compile_source(src: str, env: dict, entry: str, filename: str):
    """Compile generated source through the shared code cache and
    instantiate it against ``env``; returns the closure ``entry``."""
    code = _CODE_CACHE.get(src)
    if code is None:
        code = compile(src, filename, "exec")
        _CODE_CACHE[src] = code
    exec(code, env)
    return env[entry]


def _compile_segment(ops: list, mode: str, bind: dict):
    """Generate, compile and instantiate the closure for one run."""
    env: dict = {}
    em = _Emitter(mode, bind, env)
    if em.timed:
        em.core_prologue()
    for inst in ops:
        em.op(inst)
    if em.timed:
        em.core_epilogue()
        em.out(f"_core.instructions += {len(ops)}")
    for field, n in em.counts.items():
        if n:
            em.out(f"_stats.{field} += {n}")

    src = "def _seg(regs, ready):\n" + "".join(
        f"    {line}\n" for line in em.body)
    return compile_source(src, env, "_seg", "<fused-segment>")
