"""Fused basic-block execution: the interpreter's fast path.

The slot-machine compiler (:mod:`repro.machine.interpreter`) produces one
tuple per instruction and dispatches on an opcode kind in a large
``if``/``elif`` chain, paying a Python-level dispatch plus one or more
core-model method calls per dynamic instruction.  This module rewrites
each basic block's straight-line runs of fusable instructions into a
single generated-Python closure (a *superinstruction*): operand slots,
constants, per-op latencies and the core's issue/retire arithmetic are
baked into the source text, the closure is ``exec``-compiled once, and
the core's architectural state is read at segment entry and written back
at segment exit — one core interaction per segment instead of one method
call per instruction.  Common 64-bit integer wrap-around arithmetic,
comparisons and casts are emitted as inline expressions (no closure
call), and the memory system's hot-line hit path (see
:class:`~repro.machine.system.MemorySystem`) is inlined into the segment
with the full-walk call as the fallback.

Equivalence contract
--------------------

The generated code replays *exactly* the arithmetic of the slow path, in
the same order, on the same floats:

* ``InOrderCore.op/load/store/prefetch`` and
  ``OutOfOrderCore._fetch/_retire`` are transcribed operation-for-
  operation (``max(a, b)`` becomes the equivalent compare-and-assign),
  so cycle counts are bit-identical;
* the inlined hit path performs the same LRU touches, hit counters,
  dirty marking and prefetcher training the full hierarchy walk would,
  and falls back to the real walk whenever its guards fail;
* instruction counters are charged in bulk with the same totals.

The only observable difference is *when* ``RunStats`` memory-op counters
are incremented: the slow path counts per instruction, segments count at
segment end.  A run that raises ``MemoryFault`` mid-segment therefore
leaves slightly different in-flight counters behind — completed runs are
indistinguishable.

Calls and allocations are never fused (they recurse into the interpreter
or mutate the address space layout); they split a block into several
segments and stay on the dispatch path.

Set ``REPRO_SIM_FASTPATH=0`` to disable fusion (and the memory-system
hot-line memo) and force the reference slow path everywhere.

Telemetry interaction (``REPRO_SIM_TELEMETRY=1``): attaching a
:class:`~repro.telemetry.TelemetryCollector` clears the memory system's
``fastpath`` flag, so :func:`_compile_segment` sees ``ms.fastpath``
false and emits plain ``_ms_load``/``_ms_store``/``_ms_prefetch`` calls
instead of the inlined hot-line hit path — every memory operation then
takes the instrumented reference walk while ALU fusion stays on.  With
telemetry off (the default) nothing here changes: the generated code is
byte-for-byte what it was before telemetry existed, so the fast path
pays zero cost for the feature.
"""

from __future__ import annotations

import os

from .memory import MemoryFault

# Compiled opcode kinds (shared with the interpreter, which imports them
# from here so the two modules cannot drift apart).
_BIN, _CMP, _SELECT, _CAST, _GEP, _LOAD, _STORE, _PREFETCH, _CALL, \
    _ALLOC = range(10)
#: Kind tag of a fused segment: ``(SEG, closure)``.
_SEG = 10

#: Kinds that may be folded into a fused segment.
_FUSABLE = frozenset(
    (_BIN, _CMP, _SELECT, _CAST, _GEP, _LOAD, _STORE, _PREFETCH))

#: ALU latency default, mirrored from :mod:`repro.machine.core`.
_ALU_LATENCY = 1.0

_M64 = (1 << 64) - 1
_H64 = 1 << 63
_W64 = 1 << 64

#: 64-bit integer binops whose wrap-around form is emitted inline.
_INLINE_I64 = {
    "add": "({a} + {b})", "sub": "({a} - {b})", "mul": "({a} * {b})",
    "and": "({a} & {b})", "or": "({a} | {b})", "xor": "({a} ^ {b})",
    "shl": "({a} << ({b} & 63))", "ashr": "({a} >> ({b} & 63))",
    "lshr": f"(({{a}} & {_M64}) >> ({{b}} & 63))",
}
#: Float binops (no wrapping).
_INLINE_FLOAT = {"fadd": "({a} + {b})", "fsub": "({a} - {b})",
                 "fmul": "({a} * {b})", "fdiv": "({a} / {b})"}
#: Comparison predicates as inline expressions.
_INLINE_CMP = {
    "eq": "{a} == {b}", "oeq": "{a} == {b}",
    "ne": "{a} != {b}", "one": "{a} != {b}",
    "slt": "{a} < {b}", "olt": "{a} < {b}",
    "sle": "{a} <= {b}", "ole": "{a} <= {b}",
    "sgt": "{a} > {b}", "ogt": "{a} > {b}",
    "sge": "{a} >= {b}", "oge": "{a} >= {b}",
    "ult": f"({{a}} & {_M64}) < ({{b}} & {_M64})",
    "ule": f"({{a}} & {_M64}) <= ({{b}} & {_M64})",
    "ugt": f"({{a}} & {_M64}) > ({{b}} & {_M64})",
    "uge": f"({{a}} & {_M64}) >= ({{b}} & {_M64})",
}

#: Source text -> compiled code object.  Source embeds every constant
#: (slots, pcs, latencies, machine parameters) but no object identities,
#: so one code object serves every interpreter with the same block shape.
_CODE_CACHE: dict[str, object] = {}


def fastpath_enabled(explicit: bool | None = None) -> bool:
    """Resolve a fast-path flag: explicit setting, else the
    ``REPRO_SIM_FASTPATH`` environment variable (default on)."""
    if explicit is not None:
        return bool(explicit)
    return os.environ.get("REPRO_SIM_FASTPATH", "1") != "0"


def fuse_function(compiled, mode: str, bindings: dict) -> None:
    """Rewrite ``compiled.blocks`` in place, fusing instruction runs.

    :param compiled: a :class:`~repro.machine.interpreter._CompiledFunction`.
    :param mode: ``"func"`` (no timing), ``"inorder"`` or ``"ooo"``.
    :param bindings: runtime objects generated code binds to: ``memory``
        (:class:`Memory`), ``stats`` (:class:`RunStats`), and for timed
        modes ``core`` and ``ms`` (the :class:`MemorySystem`).
    """
    compiled.blocks = [
        (_fuse_block(insts, mode, bindings), term, count)
        for insts, term, count in compiled.blocks]


def _fuse_block(insts: list, mode: str, bindings: dict) -> list:
    items: list = []
    run: list = []
    for inst in insts:
        if inst[0] in _FUSABLE:
            run.append(inst)
        else:
            if run:
                items.append((_SEG, _compile_segment(run, mode, bindings)))
                run = []
            items.append(inst)
    if run:
        items.append((_SEG, _compile_segment(run, mode, bindings)))
    return items


def _operand(is_const: bool, payload) -> str:
    """Source text of one pre-resolved operand."""
    return repr(payload) if is_const else f"regs[{payload}]"


def _compile_segment(ops: list, mode: str, bind: dict):
    """Generate, compile and instantiate the closure for one run."""
    timed = mode != "func"
    env: dict = {"_MF": MemoryFault,
                 "_alloc_at": bind["memory"].allocation_at,
                 "_stats": bind["stats"]}
    body: list[str] = []
    emit = body.append

    if timed:
        core = bind["core"]
        ms = bind["ms"]
        env["_core"] = core
        env["_ms_load"] = ms.load
        env["_ms_store"] = ms.store
        env["_ms_prefetch"] = ms.prefetch
        ic = repr(core.issue_cost)
        if mode == "inorder":
            bt = repr(core._block_threshold)
            emit("t = _core.time")
        else:
            env["_rob"] = core._rob
            nrob = len(core._rob)
            emit("head = _core._rob_head")
            emit("ft = _core.fetch_time")
            emit("lr = _core._last_retire")
            emit("cm = _core.completion_max")
        if ms.fastpath:
            # Bindings for the inlined hot-line hit path.  All of these
            # objects are stable for the MemorySystem's lifetime (flush
            # clears them in place).
            l1 = ms.caches[0]
            env.update(_hot=ms._hot, _l1s=l1._sets, _tp=ms.tlb._pages,
                       _mst=ms.stats, _tst=ms.tlb.stats,
                       _l1st=l1.stats, _pf=ms.prefetcher,
                       _train=ms._train_hw_prefetcher,
                       _ms_demand=ms._demand_fast,
                       _ms_pfmiss=ms._prefetch_miss_fast)
            for i, c in enumerate(ms.caches[1:]):
                env[f"_md{i}"] = c.mark_dirty
            hot = {
                "ls": ms.line_size, "ns": l1.num_sets,
                "pb": ms.tlb.page_bits, "lat": repr(l1.latency),
                "ndirty": len(ms.caches) - 1,
            }
        else:
            hot = None

    def dep(specs) -> None:
        """dep = max(0.0, ready[...]) over the non-const operands."""
        slots = [v for c, v in specs if not c]
        if not slots:
            emit("dep = 0.0")
            return
        emit(f"dep = ready[{slots[0]}]")
        for s in slots[1:]:
            emit(f"_t = ready[{s}]")
            emit("if _t > dep: dep = _t")

    def inorder_issue() -> None:
        emit(f"issue = t + {ic}")
        emit("if dep > issue: issue = dep")

    def ooo_issue() -> None:
        """_fetch() then issue = max(fetch, dep), into local ``issue``."""
        emit(f"issue = ft + {ic}")
        emit("_s = _rob[head]")
        emit("if _s > issue: issue = _s")
        emit("ft = issue")
        emit("if dep > issue: issue = dep")

    def ooo_retire(done: str) -> None:
        emit(f"if {done} > lr: lr = {done}")
        emit("_rob[head] = lr")
        emit("head += 1")
        emit(f"if head == {nrob}: head = 0")
        emit(f"if {done} > cm: cm = {done}")

    def issue_and(specs) -> None:
        """dep -> issue for the current mode (result in ``issue``)."""
        dep(specs)
        if mode == "inorder":
            inorder_issue()
        else:
            ooo_issue()

    def alu(dst: int, specs, lat: float, *, value: str | None = None,
            wrapped: str | None = None) -> None:
        """One non-memory op: functional effect + issue/retire timing.

        :param value: expression assigned to the slot directly.
        :param wrapped: expression put through 64-bit signed wrap first.
        """
        if wrapped is not None:
            emit(f"_v = {wrapped} & {_M64}")
            emit(f"regs[{dst}] = _v - {_W64} if _v >= {_H64} else _v")
        else:
            emit(f"regs[{dst}] = {value}")
        if not timed:
            return
        issue_and(specs)
        if mode == "inorder":
            emit("t = issue")
            emit(f"ready[{dst}] = issue + {lat!r}")
        else:
            emit(f"done = issue + {lat!r}")
            ooo_retire("done")
            emit(f"ready[{dst}] = done")

    def fn_call(fn) -> str:
        name = f"_f{len([k for k in env if k.startswith('_f')])}"
        env[name] = fn
        return name

    def address(ptr_spec, site: int, op_name: str) -> None:
        """Resolve ``addr``; leaves the site memo in ``_m``.

        ``_m`` is ``[alloc, base, end, element_size, data]`` — richer
        than the dispatch path's one-slot allocation memo so the hot
        case needs no attribute (or property) lookups.
        """
        emit(f"addr = {_operand(*ptr_spec)}")
        emit(f"_m = _c{site}")
        emit("if addr < _m[1] or addr >= _m[2]:")
        emit("    _a = _alloc_at(addr)")
        emit("    _m[0] = _a")
        emit("    _m[1] = _a.base")
        emit("    _m[2] = _a.end")
        emit("    _m[3] = _a.element_size")
        emit("    _m[4] = _a.data")
        emit("_q, _r = divmod(addr - _m[1], _m[3])")
        emit("if _r:")
        emit(f"    raise _MF('misaligned {op_name} at %#x' % addr)")

    def hot_probe() -> str:
        """Guard expression: line resident in L1 + page in L1 TLB."""
        return (f"entry is not None and entry[0] <= issue and "
                f"(lines := _l1s[line % {hot['ns']}]).get(line) is entry "
                f"and (page := addr >> {hot['pb']}) in _tp")

    def hot_touch() -> None:
        """LRU touches + hit counters of the replayed L1/TLB hit."""
        emit("    del _tp[page]")
        emit("    _tp[page] = None")
        emit("    _tst.hits += 1")
        emit("    del lines[line]")
        emit("    lines[line] = entry")

    def demand(pc: int, is_write: bool) -> None:
        """``rdy = <memory system demand access at issue>``."""
        ms_call = "_ms_store" if is_write else "_ms_load"
        if hot is None:
            emit(f"rdy = {ms_call}({pc}, addr, issue)")
            return
        emit(f"line = addr // {hot['ls']}")
        emit("entry = _hot.get(line)")
        emit(f"if {hot_probe()}:")
        emit("    _mst.demand_accesses += 1")
        hot_touch()
        emit("    _l1st.hits += 1")
        if is_write:
            emit("    entry[1] = True")
            for i in range(hot["ndirty"]):
                emit(f"    _md{i}(line)")
        emit("    if line != _pf._last_line:")
        emit(f"        _train({pc}, line, issue)")
        emit(f"    rdy = issue + {hot['lat']}")
        emit("else:")
        # The guard above replicates load()/store()'s own memo probe, so
        # on failure go straight to the inlined miss walk.
        emit(f"    rdy = _ms_demand({pc}, addr, issue, {is_write})")

    from .core import _LATENCIES

    site = 0
    counts = {"loads": 0, "stores": 0, "prefetches": 0}
    for inst in ops:
        kind = inst[0]
        if kind == _BIN:
            _, dst, fn, ac, a, bc, b, opcode, bits = inst
            av, bv = _operand(ac, a), _operand(bc, b)
            lat = _LATENCIES.get(opcode, _ALU_LATENCY)
            specs = [(ac, a), (bc, b)]
            if opcode in _INLINE_FLOAT:
                alu(dst, specs, lat,
                    value=_INLINE_FLOAT[opcode].format(a=av, b=bv))
            elif bits == 64 and opcode in _INLINE_I64:
                alu(dst, specs, lat,
                    wrapped=_INLINE_I64[opcode].format(a=av, b=bv))
            else:
                alu(dst, specs, lat, value=f"{fn_call(fn)}({av}, {bv})")
        elif kind == _CMP:
            _, dst, fn, ac, a, bc, b, pred = inst
            av, bv = _operand(ac, a), _operand(bc, b)
            cond = _INLINE_CMP[pred].format(a=av, b=bv)
            alu(dst, [(ac, a), (bc, b)], _ALU_LATENCY,
                value=f"1 if {cond} else 0")
        elif kind == _SELECT:
            _, dst, cc, c, tc, t, fc, f = inst
            rhs = (f"({_operand(tc, t)}) if ({_operand(cc, c)}) "
                   f"else ({_operand(fc, f)})")
            alu(dst, [(cc, c), (tc, t), (fc, f)], _ALU_LATENCY,
                value=rhs)
        elif kind == _CAST:
            _, dst, fn, vc, v, opcode, fb, tb = inst
            vv = _operand(vc, v)
            specs = [(vc, v)]
            if opcode in ("bitcast", "ptrtoint", "inttoptr", "sext"):
                alu(dst, specs, _ALU_LATENCY, value=vv)
            elif opcode == "zext":
                alu(dst, specs, _ALU_LATENCY,
                    value=f"({vv}) & {(1 << fb) - 1}")
            elif opcode == "trunc" and tb == 64:
                alu(dst, specs, _ALU_LATENCY, wrapped=f"({vv})")
            elif opcode == "sitofp":
                alu(dst, specs, _ALU_LATENCY, value=f"float({vv})")
            elif opcode == "fptosi" and tb == 64:
                alu(dst, specs, _ALU_LATENCY, wrapped=f"int({vv})")
            else:
                alu(dst, specs, _ALU_LATENCY,
                    value=f"{fn_call(fn)}({vv})")
        elif kind == _GEP:
            _, dst, elem, bc, b, ic_, i = inst
            rhs = f"{_operand(bc, b)} + {_operand(ic_, i)} * {elem}"
            alu(dst, [(bc, b), (ic_, i)], _ALU_LATENCY, value=rhs)
        elif kind == _LOAD:
            _, dst, pc, pc_const, p, cache = inst
            counts["loads"] += 1
            env[f"_c{site}"] = [None, 0, -1, 1, None]
            address((pc_const, p), site, "load")
            site += 1
            emit(f"regs[{dst}] = _m[4][_q]")
            if timed:
                issue_and([(pc_const, p)])
                demand(pc, is_write=False)
                if mode == "inorder":
                    emit(f"if rdy - issue > {bt}:")
                    emit("    t = rdy")
                    emit("else:")
                    emit("    t = issue")
                else:
                    ooo_retire("rdy")
                emit(f"ready[{dst}] = rdy")
        elif kind == _STORE:
            _, pc, vc, v, pc_const, p, cache = inst
            counts["stores"] += 1
            env[f"_c{site}"] = [None, 0, -1, 1, None]
            address((pc_const, p), site, "store")
            site += 1
            emit(f"_m[4][_q] = {_operand(vc, v)}")
            if timed:
                issue_and([(vc, v), (pc_const, p)])
                demand(pc, is_write=True)
                if mode == "inorder":
                    emit("t = issue")
                else:
                    emit("done = issue + 1.0")
                    ooo_retire("done")
        elif kind == _PREFETCH:
            _, pc, pc_const, p = inst
            counts["prefetches"] += 1
            emit(f"addr = {_operand(pc_const, p)}")
            if timed:
                issue_and([(pc_const, p)])
                if hot is None:
                    emit(f"acc = _ms_prefetch({pc}, addr, issue)")
                else:
                    # Replay of MemorySystem.prefetch's fast path: an
                    # L1-resident line never waits, so no fill check.
                    emit(f"line = addr // {hot['ls']}")
                    emit("entry = _hot.get(line)")
                    emit("if entry is not None and "
                         f"(lines := _l1s[line % {hot['ns']}]).get(line)"
                         " is entry and "
                         f"(page := addr >> {hot['pb']}) in _tp:")
                    emit("    _mst.sw_prefetches += 1")
                    hot_touch()
                    emit("    acc = issue")
                    emit("else:")
                    emit(f"    acc = _ms_pfmiss({pc}, addr, line, issue)")
                if mode == "inorder":
                    emit("t = acc")
                else:
                    emit("done = acc + 1.0")
                    ooo_retire("done")
        else:  # pragma: no cover - _fuse_block filters kinds
            raise RuntimeError(f"kind {kind} is not fusable")

    if timed:
        if mode == "inorder":
            emit("_core.time = t")
        else:
            emit("_core._rob_head = head")
            emit("_core.fetch_time = ft")
            emit("_core._last_retire = lr")
            emit("_core.completion_max = cm")
        emit(f"_core.instructions += {len(ops)}")
    for field, n in counts.items():
        if n:
            emit(f"_stats.{field} += {n}")

    src = "def _seg(regs, ready):\n" + "".join(
        f"    {line}\n" for line in body)
    code = _CODE_CACHE.get(src)
    if code is None:
        code = compile(src, "<fused-segment>", "exec")
        _CODE_CACHE[src] = code
    exec(code, env)
    return env["_seg"]
