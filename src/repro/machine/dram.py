"""DRAM channel model: fixed latency plus finite bandwidth.

Every line fill occupies the (possibly shared) channel for
``cycles_per_line`` cycles; requests queue when the channel is busy.
Sharing one :class:`DRAMChannel` between several cores reproduces the
bandwidth saturation of Fig. 9, where four copies of IS on four Haswell
cores achieve *less* total throughput than one core running them in
sequence.  A mild per-contender latency penalty models row-buffer and
scheduling interference beyond pure occupancy.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass
class DRAMStats:
    """Counters for the DRAM channel."""

    accesses: int = 0
    writebacks: int = 0
    busy_cycles: float = 0.0
    queue_cycles: float = 0.0

    def snapshot(self) -> dict:
        """All counters as a plain dict (stable keys, JSON-ready)."""
        return dataclasses.asdict(self)


class DRAMChannel:
    """A single memory channel with latency and occupancy.

    :param latency: cycles from request to data (row activation + CAS +
        transfer), excluding queueing.
    :param cycles_per_line: channel occupancy per 64-byte line; this is
        ``line_size / bytes_per_cycle`` and sets the bandwidth ceiling.
    :param contention_penalty: extra latency cycles per *other* active
        sharer, modelling bank conflicts and scheduler interference.
    """

    def __init__(self, latency: int, cycles_per_line: float,
                 contention_penalty: float = 0.0):
        self.latency = latency
        self.cycles_per_line = cycles_per_line
        self.contention_penalty = contention_penalty
        self._next_free = 0.0
        self._sharers = 1
        self.stats = DRAMStats()

    def set_sharers(self, count: int) -> None:
        """Declare how many cores share this channel (for the penalty)."""
        if count < 1:
            raise ValueError("at least one sharer")
        self._sharers = count

    def access(self, time: float) -> float:
        """Issue a line fill at ``time``; returns data-ready time."""
        start = max(time, self._next_free)
        self._next_free = start + self.cycles_per_line
        extra = self.contention_penalty * (self._sharers - 1)
        done = start + self.latency + extra
        self.stats.accesses += 1
        self.stats.busy_cycles += self.cycles_per_line
        self.stats.queue_cycles += start - time
        return done

    def writeback(self, time: float) -> None:
        """Charge channel occupancy for a dirty-line writeback (the core
        never waits on it, but it steals bandwidth from fills)."""
        start = max(time, self._next_free)
        self._next_free = start + self.cycles_per_line
        self.stats.writebacks += 1
        self.stats.busy_cycles += self.cycles_per_line

    def reset(self) -> None:
        """Clear channel state between runs."""
        self._next_free = 0.0
        self.stats = DRAMStats()

    def snapshot(self) -> dict:
        """Configuration and statistics as a plain dict (JSON-ready)."""
        return {
            "latency": self.latency,
            "cycles_per_line": self.cycles_per_line,
            "sharers": self._sharers,
            "stats": self.stats.snapshot(),
        }
