"""Instruction set of the repro IR.

The instruction set mirrors the subset of LLVM IR that the paper's pass
operates on: arithmetic, comparisons, ``select``, memory (``alloc``,
``load``, ``store``, ``gep``, ``prefetch``), control flow (``br``,
``jmp``, ``ret``), ``phi`` nodes, and ``call``.

All instructions use SSA form: each produces at most one value and
operands reference other :class:`~repro.ir.values.Value` objects directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from .types import (FloatType, FunctionType, IntType, PointerType, Type,
                    VOID, INT1, INT64)
from .values import Constant, Value

if TYPE_CHECKING:  # pragma: no cover
    from .basicblock import BasicBlock
    from .function import Function


class Instruction(Value):
    """Base class for all instructions.

    :param opcode: the mnemonic (``"add"``, ``"load"``, ...).
    :param type: result type (``VOID`` for instructions with no result).
    :param operands: SSA operand values.
    :param name: optional result name.
    """

    #: Opcodes whose execution may write memory or otherwise have effects.
    HAS_SIDE_EFFECTS = False
    #: Opcodes that terminate a basic block.
    IS_TERMINATOR = False

    def __init__(self, opcode: str, type: Type, operands: Sequence[Value],
                 name: str = ""):
        super().__init__(type, name)
        self.opcode = opcode
        self.parent: "BasicBlock | None" = None
        self._operands: list[Value] = []
        for op in operands:
            self._append_operand(op)

    # -- operand bookkeeping ------------------------------------------------

    @property
    def operands(self) -> list[Value]:
        """The operand list (a copy; use :meth:`set_operand` to mutate)."""
        return list(self._operands)

    def operand(self, index: int) -> Value:
        """Return the operand at ``index``."""
        return self._operands[index]

    @property
    def num_operands(self) -> int:
        return len(self._operands)

    def _append_operand(self, value: Value) -> None:
        if not isinstance(value, Value):
            raise TypeError(f"operand must be a Value, got {value!r}")
        index = len(self._operands)
        self._operands.append(value)
        value._add_use(self, index)

    def set_operand(self, index: int, value: Value) -> None:
        """Replace the operand at ``index``, updating use lists."""
        old = self._operands[index]
        old._remove_use(self, index)
        self._operands[index] = value
        value._add_use(self, index)

    def drop_all_references(self) -> None:
        """Remove this instruction from the use lists of its operands."""
        for index, op in enumerate(self._operands):
            op._remove_use(self, index)
        self._operands = []

    # -- placement ----------------------------------------------------------

    def remove_from_parent(self) -> None:
        """Unlink from the containing block (does not drop operand uses)."""
        if self.parent is not None:
            self.parent._remove(self)
            self.parent = None

    def erase(self) -> None:
        """Fully delete: unlink from block and drop operand references."""
        if self._uses:
            raise ValueError(
                f"cannot erase {self!r}: it still has {len(self._uses)} uses")
        self.remove_from_parent()
        self.drop_all_references()

    # -- properties used by analyses ----------------------------------------

    @property
    def function(self) -> "Function | None":
        """The function containing this instruction, if placed."""
        return self.parent.parent if self.parent is not None else None

    def short_name(self) -> str:
        return self.name or f"<{self.opcode}>"


class BinOp(Instruction):
    """A binary arithmetic/logical operation.

    Supported opcodes: ``add sub mul sdiv srem udiv urem and or xor shl
    lshr ashr fadd fsub fmul fdiv``.
    """

    INT_OPS = ("add", "sub", "mul", "sdiv", "srem", "udiv", "urem",
               "and", "or", "xor", "shl", "lshr", "ashr")
    FLOAT_OPS = ("fadd", "fsub", "fmul", "fdiv")

    def __init__(self, opcode: str, lhs: Value, rhs: Value, name: str = ""):
        if opcode not in self.INT_OPS + self.FLOAT_OPS:
            raise ValueError(f"unknown binary opcode: {opcode}")
        if lhs.type != rhs.type:
            raise TypeError(
                f"binop operand types differ: {lhs.type} vs {rhs.type}")
        super().__init__(opcode, lhs.type, [lhs, rhs], name)

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)


class Cmp(Instruction):
    """An integer or float comparison producing an ``i1``.

    Predicates: ``eq ne slt sle sgt sge ult ule ugt uge`` (integers and
    pointers) and ``oeq one olt ole ogt oge`` (floats).
    """

    INT_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge",
                      "ult", "ule", "ugt", "uge")
    FLOAT_PREDICATES = ("oeq", "one", "olt", "ole", "ogt", "oge")

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in self.INT_PREDICATES + self.FLOAT_PREDICATES:
            raise ValueError(f"unknown comparison predicate: {predicate}")
        if lhs.type != rhs.type:
            raise TypeError(
                f"cmp operand types differ: {lhs.type} vs {rhs.type}")
        super().__init__("cmp", INT1, [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)


class Select(Instruction):
    """``select cond, a, b`` — returns ``a`` if cond is true else ``b``."""

    def __init__(self, cond: Value, true_value: Value, false_value: Value,
                 name: str = ""):
        if cond.type != INT1:
            raise TypeError("select condition must be i1")
        if true_value.type != false_value.type:
            raise TypeError("select arms must have matching types")
        super().__init__("select", true_value.type,
                         [cond, true_value, false_value], name)

    @property
    def condition(self) -> Value:
        return self.operand(0)

    @property
    def true_value(self) -> Value:
        return self.operand(1)

    @property
    def false_value(self) -> Value:
        return self.operand(2)


class Cast(Instruction):
    """A value conversion: ``sext zext trunc sitofp fptosi ptrtoint inttoptr
    bitcast``."""

    OPS = ("sext", "zext", "trunc", "sitofp", "fptosi",
           "ptrtoint", "inttoptr", "bitcast")

    def __init__(self, opcode: str, value: Value, to_type: Type,
                 name: str = ""):
        if opcode not in self.OPS:
            raise ValueError(f"unknown cast opcode: {opcode}")
        super().__init__(opcode, to_type, [value], name)

    @property
    def value(self) -> Value:
        return self.operand(0)


class Alloc(Instruction):
    """Allocate ``count`` elements of ``element_type`` (zero-initialised).

    This models both heap and stack array allocation; the interpreter
    reserves a contiguous region and returns its base address.  When
    ``count`` is a :class:`Constant`, the allocation's size is statically
    known, which the prefetch pass exploits for fault avoidance.
    """

    def __init__(self, element_type: Type, count: Value, name: str = ""):
        if isinstance(count.type, (FloatType, PointerType)):
            raise TypeError("allocation count must be an integer")
        super().__init__("alloc", PointerType(element_type), [count], name)
        self.element_type = element_type

    @property
    def count(self) -> Value:
        return self.operand(0)

    @property
    def static_count(self) -> int | None:
        """The element count if known at compile time, else ``None``."""
        c = self.count
        return c.value if isinstance(c, Constant) else None


class GEP(Instruction):
    """``gep base, index`` — pointer arithmetic.

    Computes ``base + index * sizeof(pointee)``; the result has the same
    pointer type as ``base``.  All array indexing in the IR goes through
    ``gep`` so the prefetch analysis can see address computations.
    """

    def __init__(self, base: Value, index: Value, name: str = ""):
        if not isinstance(base.type, PointerType):
            raise TypeError(f"gep base must be a pointer, got {base.type}")
        if not isinstance(index.type, IntType):
            raise TypeError(f"gep index must be an integer, got {index.type}")
        super().__init__("gep", base.type, [base, index], name)

    @property
    def base(self) -> Value:
        return self.operand(0)

    @property
    def index(self) -> Value:
        return self.operand(1)


class Load(Instruction):
    """``load ptr`` — read one element through a typed pointer."""

    def __init__(self, ptr: Value, name: str = ""):
        if not isinstance(ptr.type, PointerType):
            raise TypeError(f"load pointer operand required, got {ptr.type}")
        super().__init__("load", ptr.type.pointee, [ptr], name)

    @property
    def ptr(self) -> Value:
        return self.operand(0)


class Store(Instruction):
    """``store value, ptr`` — write one element through a typed pointer."""

    HAS_SIDE_EFFECTS = True

    def __init__(self, value: Value, ptr: Value):
        if not isinstance(ptr.type, PointerType):
            raise TypeError(f"store pointer operand required, got {ptr.type}")
        if ptr.type.pointee != value.type:
            raise TypeError(
                f"store type mismatch: {value.type} into {ptr.type}")
        super().__init__("store", VOID, [value, ptr])

    @property
    def value(self) -> Value:
        return self.operand(0)

    @property
    def ptr(self) -> Value:
        return self.operand(1)


class Prefetch(Instruction):
    """``prefetch ptr`` — non-binding hint to fetch a line into the cache.

    Prefetches never fault and never block; they are the instruction the
    pass emits in place of the duplicated target load.
    """

    HAS_SIDE_EFFECTS = True  # affects the machine, must not be DCE'd

    #: Stable remark ID (``pf:<function>:<n>``) assigned by the pass
    #: that created this prefetch; the remark/telemetry join layer maps
    #: it to the runtime PC.  ``None`` for hand-built prefetches.
    remark_id: str | None = None

    def __init__(self, ptr: Value):
        if not isinstance(ptr.type, PointerType):
            raise TypeError("prefetch operand must be a pointer")
        super().__init__("prefetch", VOID, [ptr])

    @property
    def ptr(self) -> Value:
        return self.operand(0)


class Phi(Instruction):
    """An SSA phi node; incoming values are paired with predecessor blocks."""

    def __init__(self, type: Type, name: str = ""):
        super().__init__("phi", type, [], name)
        self.incoming_blocks: list["BasicBlock"] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        """Append an incoming (value, predecessor-block) pair."""
        if value.type != self.type:
            raise TypeError(
                f"phi incoming type {value.type} != phi type {self.type}")
        self._append_operand(value)
        self.incoming_blocks.append(block)

    @property
    def incoming(self) -> list[tuple[Value, "BasicBlock"]]:
        """The (value, block) pairs of this phi."""
        return list(zip(self._operands, self.incoming_blocks))

    def incoming_for_block(self, block: "BasicBlock") -> Value:
        """The value flowing in from ``block``; raises if absent."""
        for value, pred in self.incoming:
            if pred is block:
                return value
        raise KeyError(f"phi has no incoming edge from {block.name}")

    def set_incoming_block(self, index: int, block: "BasicBlock") -> None:
        """Redirect the predecessor block of the ``index``-th edge."""
        self.incoming_blocks[index] = block


class Branch(Instruction):
    """``br cond, then_block, else_block`` — conditional branch."""

    IS_TERMINATOR = True
    HAS_SIDE_EFFECTS = True

    def __init__(self, cond: Value, then_block: "BasicBlock",
                 else_block: "BasicBlock"):
        if cond.type != INT1:
            raise TypeError("branch condition must be i1")
        super().__init__("br", VOID, [cond])
        self.then_block = then_block
        self.else_block = else_block

    @property
    def condition(self) -> Value:
        return self.operand(0)

    @property
    def successors(self) -> list["BasicBlock"]:
        return [self.then_block, self.else_block]

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        """Retarget an outgoing edge."""
        if self.then_block is old:
            self.then_block = new
        if self.else_block is old:
            self.else_block = new


class Jump(Instruction):
    """``jmp target`` — unconditional branch."""

    IS_TERMINATOR = True
    HAS_SIDE_EFFECTS = True

    def __init__(self, target: "BasicBlock"):
        super().__init__("jmp", VOID, [])
        self.target = target

    @property
    def successors(self) -> list["BasicBlock"]:
        return [self.target]

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        """Retarget the outgoing edge."""
        if self.target is old:
            self.target = new


class Ret(Instruction):
    """``ret [value]`` — return from the function."""

    IS_TERMINATOR = True
    HAS_SIDE_EFFECTS = True

    def __init__(self, value: Value | None = None):
        super().__init__("ret", VOID, [value] if value is not None else [])

    @property
    def value(self) -> Value | None:
        return self.operand(0) if self.num_operands else None

    @property
    def successors(self) -> list["BasicBlock"]:
        return []


class Call(Instruction):
    """``call callee(args...)`` — direct call to another function.

    The callee is a :class:`~repro.ir.function.Function`; indirect calls are
    not modelled (the paper's pass rejects candidates containing calls
    unless proven side-effect free, and never needs function pointers).
    """

    HAS_SIDE_EFFECTS = True  # refined by sideeffects analysis

    def __init__(self, callee: "Function", args: Sequence[Value],
                 name: str = ""):
        ftype = callee.type
        if len(args) != len(ftype.param_types):
            raise TypeError(
                f"call to {callee.name}: expected "
                f"{len(ftype.param_types)} args, got {len(args)}")
        for arg, pt in zip(args, ftype.param_types):
            if arg.type != pt:
                raise TypeError(
                    f"call to {callee.name}: argument type {arg.type} "
                    f"does not match parameter type {pt}")
        super().__init__("call", ftype.return_type, args, name)
        self.callee = callee

    @property
    def args(self) -> list[Value]:
        return self.operands


TERMINATOR_OPCODES = ("br", "jmp", "ret")


def clone_instruction(inst: Instruction, value_map: dict[Value, Value],
                      name_suffix: str = ".pf") -> Instruction:
    """Create a copy of ``inst`` with operands remapped through ``value_map``.

    Operands absent from the map are reused as-is (correct for constants
    and values defined outside the cloned region).  Terminators and phis
    cannot be cloned this way — the prefetch pass never needs to.
    """
    def m(v: Value) -> Value:
        return value_map.get(v, v)

    name = (inst.name + name_suffix) if inst.name else ""
    if isinstance(inst, BinOp):
        copy: Instruction = BinOp(inst.opcode, m(inst.lhs), m(inst.rhs), name)
    elif isinstance(inst, Cmp):
        copy = Cmp(inst.predicate, m(inst.lhs), m(inst.rhs), name)
    elif isinstance(inst, Select):
        copy = Select(m(inst.condition), m(inst.true_value),
                      m(inst.false_value), name)
    elif isinstance(inst, Cast):
        copy = Cast(inst.opcode, m(inst.value), inst.type, name)
    elif isinstance(inst, GEP):
        copy = GEP(m(inst.base), m(inst.index), name)
    elif isinstance(inst, Load):
        copy = Load(m(inst.ptr), name)
    elif isinstance(inst, Call):
        copy = Call(inst.callee, [m(a) for a in inst.args], name)
    else:
        raise TypeError(f"cannot clone {inst.opcode} instructions")
    value_map[inst] = copy
    return copy
