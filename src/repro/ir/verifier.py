"""IR verifier: structural and SSA well-formedness checks.

Run :func:`verify_function` (or :func:`verify_module`) after construction
and after every transformation pass; the test suite does so for every
workload and every pass output.
"""

from __future__ import annotations

from .basicblock import BasicBlock
from .function import Function
from .instructions import Instruction, Phi
from .module import Module
from .types import VoidType
from .values import Argument, Constant, UndefValue, Value


class VerificationError(Exception):
    """Raised when the IR violates a structural or SSA invariant."""


def verify_module(module: Module) -> None:
    """Verify every function in ``module``; raises on the first failure."""
    for func in module.functions:
        verify_function(func)


def verify_function(func: Function) -> None:
    """Check structural, CFG, and SSA dominance invariants of ``func``.

    Raises :class:`VerificationError` describing the first violation found.
    """
    if not func.blocks:
        raise VerificationError(f"{func.name}: function has no blocks")
    _check_blocks(func)
    _check_phis(func)
    _check_dominance(func)


def _check_blocks(func: Function) -> None:
    names = set()
    for block in func.blocks:
        if block.name in names:
            raise VerificationError(
                f"{func.name}: duplicate block name {block.name}")
        names.add(block.name)
        if block.parent is not func:
            raise VerificationError(
                f"{func.name}/{block.name}: wrong parent function")
        term = block.terminator
        if term is None:
            raise VerificationError(
                f"{func.name}/{block.name}: block lacks a terminator")
        for inst in block:
            if inst.parent is not block:
                raise VerificationError(
                    f"{func.name}/{block.name}: instruction "
                    f"{inst.opcode} has wrong parent")
            if inst.IS_TERMINATOR and inst is not term:
                raise VerificationError(
                    f"{func.name}/{block.name}: terminator "
                    f"{inst.opcode} in mid-block")
        seen_non_phi = False
        for inst in block:
            if isinstance(inst, Phi):
                if seen_non_phi:
                    raise VerificationError(
                        f"{func.name}/{block.name}: phi after non-phi")
            else:
                seen_non_phi = True
        for succ in block.successors:
            if succ not in func.blocks:
                raise VerificationError(
                    f"{func.name}/{block.name}: successor {succ.name} "
                    f"not in function")


def _check_phis(func: Function) -> None:
    for block in func.blocks:
        preds = block.predecessors
        for phi in block.phis:
            incoming_blocks = [b for _, b in phi.incoming]
            if set(map(id, incoming_blocks)) != set(map(id, preds)):
                pred_names = sorted(p.name for p in preds)
                in_names = sorted(b.name for b in incoming_blocks)
                raise VerificationError(
                    f"{func.name}/{block.name}: phi {phi.short_name()} "
                    f"incoming blocks {in_names} != predecessors "
                    f"{pred_names}")
            if len(incoming_blocks) != len(set(map(id, incoming_blocks))):
                raise VerificationError(
                    f"{func.name}/{block.name}: phi {phi.short_name()} "
                    f"has duplicate incoming blocks")


def _reachable_blocks(func: Function) -> list[BasicBlock]:
    seen: list[BasicBlock] = []
    seen_ids = set()
    stack = [func.entry]
    while stack:
        block = stack.pop()
        if id(block) in seen_ids:
            continue
        seen_ids.add(id(block))
        seen.append(block)
        stack.extend(block.successors)
    return seen


def _check_dominance(func: Function) -> None:
    # Local import to avoid a hard dependency cycle at module load time.
    from ..analysis.cfg import dominators

    dom = dominators(func)
    positions: dict[int, tuple[BasicBlock, int]] = {}
    for block in func.blocks:
        for i, inst in enumerate(block):
            positions[id(inst)] = (block, i)

    reachable = set(map(id, _reachable_blocks(func)))
    for block in func.blocks:
        if id(block) not in reachable:
            continue
        for i, inst in enumerate(block):
            if isinstance(inst, Phi):
                for value, pred in inst.incoming:
                    _check_operand_dominates(
                        func, dom, positions, value, pred,
                        len(pred.instructions), inst)
            else:
                for value in inst.operands:
                    _check_operand_dominates(
                        func, dom, positions, value, block, i, inst)


def _check_operand_dominates(func, dom, positions, value: Value,
                             use_block: BasicBlock, use_index: int,
                             user: Instruction) -> None:
    if isinstance(value, (Constant, Argument, UndefValue)):
        return
    if not isinstance(value, Instruction):
        raise VerificationError(
            f"{func.name}: operand {value!r} of {user.opcode} is not an "
            f"instruction, constant, or argument")
    pos = positions.get(id(value))
    if pos is None:
        raise VerificationError(
            f"{func.name}: operand {value.short_name()} of "
            f"{user.opcode} is not placed in the function")
    def_block, def_index = pos
    if def_block is use_block:
        if def_index >= use_index:
            raise VerificationError(
                f"{func.name}/{use_block.name}: {value.short_name()} "
                f"used before definition by {user.opcode}")
        return
    # def_block must dominate use_block.
    runner: BasicBlock | None = use_block
    while runner is not None:
        if runner is def_block:
            return
        runner = dom.get(runner)
    raise VerificationError(
        f"{func.name}: definition of {value.short_name()} in "
        f"{def_block.name} does not dominate use in {use_block.name}")
