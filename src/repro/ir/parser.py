"""Parser for the textual IR produced by :mod:`repro.ir.printer`.

The format is line-oriented; see the printer docstring for a sample.  The
parser supports forward references (e.g. a loop phi referencing the
increment defined later in the block) by inserting placeholders that are
patched once the whole function has been read.
"""

from __future__ import annotations

import re

from .basicblock import BasicBlock
from .function import Function
from .instructions import (Alloc, BinOp, Branch, Call, Cast, Cmp, GEP,
                           Instruction, Jump, Load, Phi, Prefetch, Ret,
                           Select, Store)
from .module import Module
from .types import (FloatType, IntType, PointerType, Type, VOID, INT1,
                    INT64, parse_type)
from .values import Constant, UndefValue, Value


class ParseError(Exception):
    """Raised on malformed textual IR."""


_FUNC_RE = re.compile(
    r"^func(?P<pure>\s+pure)?\s+@(?P<name>[\w.]+)\((?P<params>[^)]*)\)"
    r"\s*->\s*(?P<ret>[\w*]+)\s*\{$")
_LABEL_RE = re.compile(r"^(?P<name>[\w.]+):$")
_PHI_ARM_RE = re.compile(r"\[([^,\]]+),\s*([\w.]+)\]")


class _Forward(UndefValue):
    """Placeholder for a value referenced before its definition."""

    def __init__(self, type: Type, ref_name: str):
        super().__init__(type, ref_name)
        self.ref_name = ref_name


class _FunctionParser:
    def __init__(self, func: Function, lines: list[str],
                 module: Module):
        self.func = func
        self.lines = lines
        self.module = module
        self.values: dict[str, Value] = {a.name: a for a in func.args}
        self.forwards: list[_Forward] = []

    def parse(self) -> None:
        # Pass 1: create all blocks so branch targets resolve.
        for line in self.lines:
            m = _LABEL_RE.match(line)
            if m:
                self.func.add_block(m.group("name"))
        if not self.func.blocks:
            raise ParseError(f"function {self.func.name} has no blocks")

        # Pass 2: parse instructions into their blocks.
        current: BasicBlock | None = None
        for line in self.lines:
            m = _LABEL_RE.match(line)
            if m:
                current = self.func.block(m.group("name"))
                continue
            if current is None:
                raise ParseError(f"instruction before first label: {line}")
            inst = self.parse_instruction(line)
            current.append(inst)

        # Patch forward references.
        for fwd in self.forwards:
            target = self.values.get(fwd.ref_name)
            if target is None:
                raise ParseError(
                    f"{self.func.name}: undefined value %{fwd.ref_name}")
            fwd.replace_all_uses_with(target)

    # -- helpers ---------------------------------------------------------

    def define(self, name: str, value: Value) -> Value:
        if name in self.values:
            raise ParseError(
                f"{self.func.name}: redefinition of %{name}")
        value.name = name
        self.values[name] = value
        return value

    def ref(self, token: str, type: Type) -> Value:
        token = token.strip()
        if token.startswith("%"):
            name = token[1:]
            value = self.values.get(name)
            if value is None:
                value = _Forward(type, name)
                self.forwards.append(value)
            return value
        if token.startswith("undef:"):
            return UndefValue(parse_type(token[6:]))
        try:
            if isinstance(type, FloatType):
                return Constant(type, float(token))
            return Constant(type, int(token))
        except ValueError:
            raise ParseError(f"bad operand token {token!r}") from None

    def block_ref(self, name: str) -> BasicBlock:
        return self.func.block(name.strip())

    # -- instruction parsing ------------------------------------------------

    def parse_instruction(self, line: str) -> Instruction:
        name = ""
        body = line
        if line.startswith("%"):
            lhs, _, body = line.partition("=")
            name = lhs.strip()[1:]
            body = body.strip()
        parts = body.split(None, 1)
        if not parts:
            raise ParseError(f"empty instruction line: {line!r}")
        opcode, rest = parts[0], (parts[1] if len(parts) > 1 else "")
        inst = self._dispatch(opcode, rest, line)
        if name:
            self.define(name, inst)
        return inst

    def _dispatch(self, opcode: str, rest: str, line: str) -> Instruction:
        if opcode in BinOp.INT_OPS + BinOp.FLOAT_OPS:
            type_tok, ops = rest.split(None, 1)
            t = parse_type(type_tok)
            a, b = (s.strip() for s in ops.split(","))
            return BinOp(opcode, self.ref(a, t), self.ref(b, t))
        if opcode == "cmp":
            pred, type_tok, ops = rest.split(None, 2)
            t = parse_type(type_tok)
            a, b = (s.strip() for s in ops.split(","))
            return Cmp(pred, self.ref(a, t), self.ref(b, t))
        if opcode == "select":
            type_tok, ops = rest.split(None, 1)
            t = parse_type(type_tok)
            c, a, b = (s.strip() for s in ops.split(","))
            return Select(self.ref(c, INT1), self.ref(a, t), self.ref(b, t))
        if opcode in Cast.OPS:
            from_tok, value_tok, to_kw, to_tok = rest.split()
            if to_kw != "to":
                raise ParseError(f"malformed cast: {line!r}")
            return Cast(opcode, self.ref(value_tok, parse_type(from_tok)),
                        parse_type(to_tok))
        if opcode == "alloc":
            elem_tok, count_tok = (s.strip() for s in rest.split(","))
            return Alloc(parse_type(elem_tok), self.ref(count_tok, INT64))
        if opcode == "gep":
            type_tok, ops = rest.split(None, 1)
            t = parse_type(type_tok)
            base, index = (s.strip() for s in ops.split(","))
            return GEP(self.ref(base, t), self.ref(index, INT64))
        if opcode == "load":
            type_tok, ptr_tok = rest.split()
            return Load(self.ref(ptr_tok, parse_type(type_tok)))
        if opcode == "store":
            type_tok, ops = rest.split(None, 1)
            t = parse_type(type_tok)
            value_tok, ptr_tok = (s.strip() for s in ops.split(","))
            return Store(self.ref(value_tok, t),
                         self.ref(ptr_tok, PointerType(t)))
        if opcode == "prefetch":
            type_tok, ptr_tok = rest.split()
            return Prefetch(self.ref(ptr_tok, parse_type(type_tok)))
        if opcode == "phi":
            type_tok, arms_text = rest.split(None, 1)
            t = parse_type(type_tok)
            phi = Phi(t)
            for value_tok, block_name in _PHI_ARM_RE.findall(arms_text):
                phi.add_incoming(self.ref(value_tok, t),
                                 self.block_ref(block_name))
            return phi
        if opcode == "br":
            cond_tok, then_name, else_name = (
                s.strip() for s in rest.split(","))
            return Branch(self.ref(cond_tok, INT1),
                          self.block_ref(then_name),
                          self.block_ref(else_name))
        if opcode == "jmp":
            return Jump(self.block_ref(rest))
        if opcode == "ret":
            if not rest.strip():
                return Ret()
            type_tok, value_tok = rest.split()
            return Ret(self.ref(value_tok, parse_type(type_tok)))
        if opcode == "call":
            m = re.match(r"@([\w.]+)\((.*)\)$", rest.strip())
            if not m:
                raise ParseError(f"malformed call: {line!r}")
            callee = self.module.function(m.group(1))
            args = []
            arg_text = m.group(2).strip()
            if arg_text:
                for piece in arg_text.split(","):
                    type_tok, value_tok = piece.split()
                    args.append(self.ref(value_tok, parse_type(type_tok)))
            return Call(callee, args)
        raise ParseError(f"unknown opcode {opcode!r} in line: {line!r}")


def parse_module(text: str, name: str = "module") -> Module:
    """Parse a whole module from text; raises :class:`ParseError`."""
    module = Module(name)
    lines = [ln.strip() for ln in text.splitlines()]
    lines = [ln for ln in lines
             if ln and not ln.startswith("#") and not ln.startswith(";")]
    i = 0
    # First register all function signatures so calls resolve across
    # definition order.
    pending: list[tuple[Function, list[str]]] = []
    while i < len(lines):
        m = _FUNC_RE.match(lines[i])
        if not m:
            raise ParseError(f"expected function header, got: {lines[i]!r}")
        params = []
        params_text = m.group("params").strip()
        if params_text:
            for piece in params_text.split(","):
                pname, ptype = (s.strip() for s in piece.split(":"))
                if not pname.startswith("%"):
                    raise ParseError(f"bad parameter name {pname!r}")
                params.append((pname[1:], parse_type(ptype)))
        func = module.create_function(
            m.group("name"), parse_type(m.group("ret")), params,
            pure=bool(m.group("pure")))
        i += 1
        body: list[str] = []
        while i < len(lines) and lines[i] != "}":
            body.append(lines[i])
            i += 1
        if i == len(lines):
            raise ParseError(f"unterminated function @{func.name}")
        i += 1  # skip '}'
        pending.append((func, body))
    for func, body in pending:
        _FunctionParser(func, body, module).parse()
    return module


def parse_function(text: str) -> Function:
    """Parse a single function (convenience wrapper)."""
    module = parse_module(text)
    funcs = module.functions
    if len(funcs) != 1:
        raise ParseError(f"expected exactly one function, got {len(funcs)}")
    return funcs[0]
