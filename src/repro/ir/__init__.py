"""The repro intermediate representation (IR).

A small SSA-form IR modelled on LLVM: modules contain functions, functions
contain basic blocks, blocks contain instructions.  See
:mod:`repro.ir.builder` for the construction API and
:mod:`repro.ir.printer` / :mod:`repro.ir.parser` for the textual format.
"""

from .basicblock import BasicBlock
from .builder import IRBuilder
from .function import Function
from .instructions import (Alloc, BinOp, Branch, Call, Cast, Cmp, GEP,
                           Instruction, Jump, Load, Phi, Prefetch, Ret,
                           Select, Store, clone_instruction)
from .module import Module
from .parser import ParseError, parse_function, parse_module
from .printer import Namer, print_function, print_instruction, print_module
from .types import (FLOAT32, FLOAT64, INT1, INT8, INT16, INT32, INT64, VOID,
                    FloatType, FunctionType, IntType, PointerType, Type,
                    VoidType, parse_type, pointer)
from .values import Argument, Constant, UndefValue, Value, const
from .verifier import VerificationError, verify_function, verify_module

__all__ = [
    "BasicBlock", "IRBuilder", "Function", "Module",
    "Alloc", "BinOp", "Branch", "Call", "Cast", "Cmp", "GEP", "Instruction",
    "Jump", "Load", "Phi", "Prefetch", "Ret", "Select", "Store",
    "clone_instruction",
    "ParseError", "parse_function", "parse_module",
    "Namer", "print_function", "print_instruction", "print_module",
    "FLOAT32", "FLOAT64", "INT1", "INT8", "INT16", "INT32", "INT64", "VOID",
    "FloatType", "FunctionType", "IntType", "PointerType", "Type",
    "VoidType", "parse_type", "pointer",
    "Argument", "Constant", "UndefValue", "Value", "const",
    "VerificationError", "verify_function", "verify_module",
]
