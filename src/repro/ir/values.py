"""Value hierarchy for the repro IR.

Everything an instruction can consume is a :class:`Value`: constants,
function arguments, and other instructions.  Values track their users so
passes can rewrite the program with :meth:`Value.replace_all_uses_with`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from .types import FloatType, IntType, PointerType, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .instructions import Instruction


class Value:
    """Base class for everything that can appear as an operand.

    :param type: the IR type of this value.
    :param name: optional name used by the printer; anonymous values are
        numbered when printed.
    """

    def __init__(self, type: Type, name: str = ""):
        self.type = type
        self.name = name
        # Uses are stored as (user instruction, operand index) pairs so that
        # replacement can patch exactly the right slot.
        self._uses: list[tuple["Instruction", int]] = []

    @property
    def uses(self) -> list[tuple["Instruction", int]]:
        """The (user, operand-index) pairs currently referencing this value."""
        return list(self._uses)

    @property
    def users(self) -> list["Instruction"]:
        """The instructions referencing this value (may repeat)."""
        return [user for user, _ in self._uses]

    def _add_use(self, user: "Instruction", index: int) -> None:
        self._uses.append((user, index))

    def _remove_use(self, user: "Instruction", index: int) -> None:
        self._uses.remove((user, index))

    def replace_all_uses_with(self, replacement: "Value") -> None:
        """Rewrite every use of this value to use ``replacement`` instead."""
        if replacement is self:
            return
        for user, index in self.uses:
            user.set_operand(index, replacement)

    def short_name(self) -> str:
        """Name used in diagnostics; printers may override numbering."""
        return self.name or "<anon>"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.short_name()}: {self.type}>"


class Constant(Value):
    """A compile-time constant integer or float.

    :param type: an :class:`~repro.ir.types.IntType` or
        :class:`~repro.ir.types.FloatType`.
    :param value: the Python number; integers are wrapped to the type width.
    """

    def __init__(self, type: Type, value):
        super().__init__(type)
        if isinstance(type, IntType):
            value = type.wrap(int(value))
        elif isinstance(type, FloatType):
            value = float(value)
        elif isinstance(type, PointerType):
            value = int(value)
        else:
            raise TypeError(f"constants must be numeric, got {type}")
        self.value = value

    def short_name(self) -> str:
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


class Argument(Value):
    """A formal parameter of a :class:`~repro.ir.function.Function`.

    Arguments may carry optional metadata used by the analyses:

    :param array_size: if this argument is a pointer into an array whose
        length is passed separately (the common C idiom), ``array_size``
        may reference the :class:`Argument` holding the element count (or
        a :class:`Constant` when the size is statically known, standing in
        for a global array).  The prefetch pass uses it as a
        fault-avoidance bound.
    :param noalias: the argument points to memory no *other* argument
        points to (C ``restrict`` / LLVM ``noalias``); enables the
        store-clobber check of §4.2 to succeed across argument arrays.
    """

    def __init__(self, type: Type, name: str, index: int,
                 array_size: "Value | None" = None,
                 noalias: bool = False):
        super().__init__(type, name)
        self.index = index
        self.array_size = array_size
        self.noalias = noalias


class UndefValue(Value):
    """An undefined value of a given type (used rarely, e.g. by tests)."""

    def short_name(self) -> str:
        return f"undef:{self.type}"


def const(value, type: Type | None = None) -> Constant:
    """Create a constant, defaulting integers to i64 and floats to f64."""
    from .types import FLOAT64, INT64

    if type is None:
        type = FLOAT64 if isinstance(value, float) else INT64
    return Constant(type, value)


def iter_values(values) -> Iterator[Value]:
    """Yield each element of ``values`` checked to be a :class:`Value`."""
    for v in values:
        if not isinstance(v, Value):
            raise TypeError(f"expected Value, got {v!r}")
        yield v
