"""Textual form of the IR.

The format is LLVM-flavoured but simplified; it round-trips through
:mod:`repro.ir.parser`.  Example::

    func @count(%keys: i32*, %n: i64) -> void {
    entry:
      jmp loop
    loop:
      %i = phi i64 [0, entry], [%i.next, loop]
      %p = gep i32* %keys, %i
      %k = load i32* %p
      ...
    }
"""

from __future__ import annotations

from .basicblock import BasicBlock
from .function import Function
from .instructions import (Alloc, BinOp, Branch, Call, Cast, Cmp, GEP,
                           Instruction, Jump, Load, Phi, Prefetch, Ret,
                           Select, Store)
from .module import Module
from .types import VoidType
from .values import Argument, Constant, UndefValue, Value


class Namer:
    """Assigns stable printable names to values within one function.

    Anonymous values receive sequential numbers in function order —
    the numbering the printed IR shows.  Remark emission and pass
    report summaries use the same numbering, so a ``%7`` in a remark
    is the ``%7`` of ``--print-ir`` output.
    """

    def __init__(self, func: Function):
        self._names: dict[int, str] = {}
        self._used: set[str] = set()
        self._counter = 0
        for arg in func.args:
            self._assign(arg)
        for block in func.blocks:
            for inst in block:
                if not isinstance(inst.type, VoidType):
                    self._assign(inst)

    def _assign(self, value: Value) -> None:
        base = value.name
        if not base:
            base = str(self._counter)
            self._counter += 1
        name = base
        suffix = 1
        while name in self._used:
            name = f"{base}.{suffix}"
            suffix += 1
        self._used.add(name)
        self._names[id(value)] = name

    def ref(self, value: Value) -> str:
        """Render a reference to ``value`` as an operand."""
        if isinstance(value, Constant):
            return str(value.value)
        if isinstance(value, UndefValue):
            return f"undef:{value.type}"
        name = self._names.get(id(value))
        if name is None:
            self._assign(value)
            name = self._names[id(value)]
        return f"%{name}"

    def defn(self, value: Value) -> str:
        """Render the defining name of ``value``."""
        return self.ref(value)


def print_instruction(inst: Instruction, namer: Namer) -> str:
    """Render one instruction to its textual form."""
    r = namer.ref
    if isinstance(inst, BinOp):
        return (f"{r(inst)} = {inst.opcode} {inst.type} "
                f"{r(inst.lhs)}, {r(inst.rhs)}")
    if isinstance(inst, Cmp):
        return (f"{r(inst)} = cmp {inst.predicate} {inst.lhs.type} "
                f"{r(inst.lhs)}, {r(inst.rhs)}")
    if isinstance(inst, Select):
        return (f"{r(inst)} = select {inst.type} {r(inst.condition)}, "
                f"{r(inst.true_value)}, {r(inst.false_value)}")
    if isinstance(inst, Cast):
        return (f"{r(inst)} = {inst.opcode} {inst.value.type} "
                f"{r(inst.value)} to {inst.type}")
    if isinstance(inst, Alloc):
        return (f"{r(inst)} = alloc {inst.element_type}, {r(inst.count)}")
    if isinstance(inst, GEP):
        return (f"{r(inst)} = gep {inst.base.type} {r(inst.base)}, "
                f"{r(inst.index)}")
    if isinstance(inst, Load):
        return f"{r(inst)} = load {inst.ptr.type} {r(inst.ptr)}"
    if isinstance(inst, Store):
        return (f"store {inst.value.type} {r(inst.value)}, "
                f"{r(inst.ptr)}")
    if isinstance(inst, Prefetch):
        return f"prefetch {inst.ptr.type} {r(inst.ptr)}"
    if isinstance(inst, Phi):
        pairs = ", ".join(f"[{r(v)}, {b.name}]" for v, b in inst.incoming)
        return f"{r(inst)} = phi {inst.type} {pairs}"
    if isinstance(inst, Branch):
        return (f"br {r(inst.condition)}, {inst.then_block.name}, "
                f"{inst.else_block.name}")
    if isinstance(inst, Jump):
        return f"jmp {inst.target.name}"
    if isinstance(inst, Ret):
        if inst.value is not None:
            return f"ret {inst.value.type} {r(inst.value)}"
        return "ret"
    if isinstance(inst, Call):
        args = ", ".join(f"{a.type} {r(a)}" for a in inst.args)
        prefix = f"{r(inst)} = " if str(inst.type) != "void" else ""
        return f"{prefix}call @{inst.callee.name}({args})"
    raise TypeError(f"unknown instruction {inst.opcode}")


#: Backwards-compatible alias of :class:`Namer`.
_Namer = Namer


def print_function(func: Function) -> str:
    """Render a function and its blocks to text."""
    namer = Namer(func)
    params = ", ".join(f"%{a.name}: {a.type}" for a in func.args)
    attrs = " pure" if func.pure else ""
    lines = [f"func{attrs} @{func.name}({params}) -> {func.return_type} {{"]
    for block in func.blocks:
        lines.append(f"{block.name}:")
        for inst in block:
            lines.append(f"  {print_instruction(inst, namer)}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    """Render all functions of a module to text."""
    return "\n\n".join(print_function(f) for f in module.functions) + "\n"
