"""Functions: named, typed containers of basic blocks."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from .basicblock import BasicBlock
from .instructions import Instruction
from .types import FunctionType, Type
from .values import Argument

if TYPE_CHECKING:  # pragma: no cover
    from .module import Module


class Function:
    """A function definition in SSA form.

    :param name: the function's symbol name.
    :param return_type: IR type of the return value.
    :param params: ``(name, type)`` pairs for the formal parameters.
    :param pure: marks the function as side-effect free (no stores, no
        calls to impure functions); used by the side-effect analysis and
        by the prefetch pass's extension that permits pure calls in
        prefetch address computations.
    """

    def __init__(self, name: str, return_type: Type,
                 params: list[tuple[str, Type]] | None = None,
                 pure: bool = False):
        params = params or []
        self.name = name
        self.type = FunctionType(return_type, tuple(t for _, t in params))
        self.args = [Argument(t, n, i) for i, (n, t) in enumerate(params)]
        self.blocks: list[BasicBlock] = []
        self.parent: "Module | None" = None
        self.pure = pure
        self._block_counter = 0

    @property
    def return_type(self) -> Type:
        return self.type.return_type

    @property
    def entry(self) -> BasicBlock:
        """The entry block (the first block added)."""
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def add_block(self, name: str = "") -> BasicBlock:
        """Create and append a new basic block."""
        if not name:
            name = f"bb{self._block_counter}"
            self._block_counter += 1
        if any(b.name == name for b in self.blocks):
            raise ValueError(f"duplicate block name {name!r} in {self.name}")
        block = BasicBlock(name, self)
        self.blocks.append(block)
        return block

    def block(self, name: str) -> BasicBlock:
        """Find a block by name; raises ``KeyError`` if absent."""
        for b in self.blocks:
            if b.name == name:
                return b
        raise KeyError(f"no block named {name!r} in {self.name}")

    def arg(self, name: str) -> Argument:
        """Find an argument by name; raises ``KeyError`` if absent."""
        for a in self.args:
            if a.name == name:
                return a
        raise KeyError(f"no argument named {name!r} in {self.name}")

    def remove_block(self, block: BasicBlock) -> None:
        """Remove an (unreferenced) block from the function."""
        self.blocks.remove(block)
        block.parent = None

    def instructions(self) -> Iterator[Instruction]:
        """Iterate all instructions in block order."""
        for block in self.blocks:
            yield from block.instructions

    def __repr__(self) -> str:
        return f"<Function {self.name}: {self.type}>"
