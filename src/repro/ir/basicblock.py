"""Basic blocks: straight-line instruction sequences ending in a terminator."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from .instructions import Instruction, Phi

if TYPE_CHECKING:  # pragma: no cover
    from .function import Function


class BasicBlock:
    """A list of instructions with a single entry and a terminator exit.

    Blocks are created through :meth:`repro.ir.function.Function.add_block`
    (or directly and then appended); instruction insertion normally goes
    through :class:`repro.ir.builder.IRBuilder`.
    """

    def __init__(self, name: str, parent: "Function | None" = None):
        self.name = name
        self.parent = parent
        self._instructions: list[Instruction] = []

    # -- contents -------------------------------------------------------

    @property
    def instructions(self) -> list[Instruction]:
        """The instructions in program order (a copy)."""
        return list(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __len__(self) -> int:
        return len(self._instructions)

    @property
    def terminator(self) -> Instruction | None:
        """The final control-flow instruction, or ``None`` if unterminated."""
        if self._instructions and self._instructions[-1].IS_TERMINATOR:
            return self._instructions[-1]
        return None

    @property
    def phis(self) -> list[Phi]:
        """The phi nodes at the head of this block."""
        result = []
        for inst in self._instructions:
            if isinstance(inst, Phi):
                result.append(inst)
            else:
                break
        return result

    @property
    def first_non_phi(self) -> Instruction | None:
        """First instruction that is not a phi node."""
        for inst in self._instructions:
            if not isinstance(inst, Phi):
                return inst
        return None

    # -- mutation ---------------------------------------------------------

    def append(self, inst: Instruction) -> Instruction:
        """Add ``inst`` at the end of the block."""
        if self.terminator is not None:
            raise ValueError(
                f"block {self.name} already terminated; cannot append "
                f"{inst.opcode}")
        self._instructions.append(inst)
        inst.parent = self
        return inst

    def insert_before(self, position: Instruction,
                      inst: Instruction) -> Instruction:
        """Insert ``inst`` immediately before ``position``."""
        index = self._index_of(position)
        self._instructions.insert(index, inst)
        inst.parent = self
        return inst

    def insert_after(self, position: Instruction,
                     inst: Instruction) -> Instruction:
        """Insert ``inst`` immediately after ``position``."""
        index = self._index_of(position)
        self._instructions.insert(index + 1, inst)
        inst.parent = self
        return inst

    def _index_of(self, inst: Instruction) -> int:
        for i, candidate in enumerate(self._instructions):
            if candidate is inst:
                return i
        raise ValueError(f"{inst!r} is not in block {self.name}")

    def _remove(self, inst: Instruction) -> None:
        self._instructions.pop(self._index_of(inst))

    # -- CFG edges ----------------------------------------------------------

    @property
    def successors(self) -> list["BasicBlock"]:
        """Successor blocks according to the terminator (empty if none)."""
        term = self.terminator
        return term.successors if term is not None else []  # type: ignore

    @property
    def predecessors(self) -> list["BasicBlock"]:
        """Predecessor blocks (computed by scanning the parent function)."""
        if self.parent is None:
            return []
        preds = []
        for block in self.parent.blocks:
            if self in block.successors:
                preds.append(block)
        return preds

    def __repr__(self) -> str:
        return f"<BasicBlock {self.name} ({len(self)} insts)>"
