"""Type system for the repro intermediate representation.

The IR is deliberately small: integer and floating-point scalars, typed
pointers, and function types.  Aggregates are modelled as arrays of scalars
(a "struct" is an array of words accessed at constant indices), which is all
the paper's workloads need and keeps address arithmetic explicit -- exactly
the property the prefetch pass relies on.
"""

from __future__ import annotations


class Type:
    """Base class for all IR types.

    Types are immutable and compared structurally.  Use the module-level
    singletons (``INT8`` ... ``INT64``, ``FLOAT64``, ``VOID``) and the
    :class:`PointerType` constructor for everything else.
    """

    @property
    def size(self) -> int:
        """Size in bytes of a value of this type when stored in memory."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        return ()

    def __repr__(self) -> str:
        return str(self)


class VoidType(Type):
    """The type of instructions that produce no value (e.g. ``store``)."""

    @property
    def size(self) -> int:
        raise ValueError("void has no size")

    def __str__(self) -> str:
        return "void"


class IntType(Type):
    """A fixed-width two's-complement integer type.

    :param bits: width in bits; must be one of 1, 8, 16, 32, 64.
    """

    WIDTHS = (1, 8, 16, 32, 64)

    def __init__(self, bits: int):
        if bits not in self.WIDTHS:
            raise ValueError(f"unsupported integer width: {bits}")
        self.bits = bits

    @property
    def size(self) -> int:
        return max(1, self.bits // 8)

    @property
    def min_value(self) -> int:
        """Smallest representable signed value."""
        return -(1 << (self.bits - 1)) if self.bits > 1 else 0

    @property
    def max_value(self) -> int:
        """Largest representable signed value."""
        return (1 << (self.bits - 1)) - 1 if self.bits > 1 else 1

    def wrap(self, value: int) -> int:
        """Wrap ``value`` into this type's signed range (two's complement)."""
        mask = (1 << self.bits) - 1
        value &= mask
        if self.bits > 1 and value > self.max_value:
            value -= 1 << self.bits
        return value

    def _key(self) -> tuple:
        return (self.bits,)

    def __str__(self) -> str:
        return f"i{self.bits}"


class FloatType(Type):
    """An IEEE-754 floating point type (32 or 64 bits)."""

    def __init__(self, bits: int = 64):
        if bits not in (32, 64):
            raise ValueError(f"unsupported float width: {bits}")
        self.bits = bits

    @property
    def size(self) -> int:
        return self.bits // 8

    def _key(self) -> tuple:
        return (self.bits,)

    def __str__(self) -> str:
        return f"f{self.bits}"


class PointerType(Type):
    """A typed pointer.  Pointers are 64-bit byte addresses.

    :param pointee: the element type this pointer addresses.  ``gep``
        instructions scale indices by ``pointee.size``.
    """

    def __init__(self, pointee: Type):
        if isinstance(pointee, VoidType):
            raise ValueError("cannot point to void")
        self.pointee = pointee

    @property
    def size(self) -> int:
        return 8

    def _key(self) -> tuple:
        return (self.pointee,)

    def __str__(self) -> str:
        return f"{self.pointee}*"


class FunctionType(Type):
    """The type of a function: a return type plus parameter types."""

    def __init__(self, return_type: Type, param_types: tuple[Type, ...]):
        self.return_type = return_type
        self.param_types = tuple(param_types)

    @property
    def size(self) -> int:
        raise ValueError("function types have no storage size")

    def _key(self) -> tuple:
        return (self.return_type, self.param_types)

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.param_types)
        return f"{self.return_type} ({params})"


#: Singleton instances for the common types.
VOID = VoidType()
INT1 = IntType(1)
INT8 = IntType(8)
INT16 = IntType(16)
INT32 = IntType(32)
INT64 = IntType(64)
FLOAT32 = FloatType(32)
FLOAT64 = FloatType(64)


def pointer(pointee: Type) -> PointerType:
    """Convenience constructor for :class:`PointerType`."""
    return PointerType(pointee)


def parse_type(text: str) -> Type:
    """Parse a type from its textual form (``i32``, ``f64``, ``i64*`` ...).

    Raises ``ValueError`` for malformed type strings.
    """
    text = text.strip()
    stars = 0
    while text.endswith("*"):
        stars += 1
        text = text[:-1].strip()
    if text == "void":
        if stars:
            raise ValueError("cannot point to void")
        base: Type = VOID
    elif text.startswith("i"):
        base = IntType(int(text[1:]))
    elif text.startswith("f"):
        base = FloatType(int(text[1:]))
    else:
        raise ValueError(f"unknown type: {text!r}")
    for _ in range(stars):
        base = PointerType(base)
    return base
