"""Modules: top-level containers of functions."""

from __future__ import annotations

from typing import Iterator

from .function import Function
from .types import Type


class Module:
    """A compilation unit holding a set of functions.

    Passes operate on modules (or on the functions within them); the
    interpreter executes a module starting from a chosen entry function.
    """

    def __init__(self, name: str = "module"):
        self.name = name
        self._functions: dict[str, Function] = {}

    @property
    def functions(self) -> list[Function]:
        """All functions in insertion order."""
        return list(self._functions.values())

    def add_function(self, func: Function) -> Function:
        """Register ``func`` in this module."""
        if func.name in self._functions:
            raise ValueError(f"duplicate function name {func.name!r}")
        self._functions[func.name] = func
        func.parent = self
        return func

    def create_function(self, name: str, return_type: Type,
                        params: list[tuple[str, Type]] | None = None,
                        pure: bool = False) -> Function:
        """Create, register, and return a new :class:`Function`."""
        return self.add_function(Function(name, return_type, params,
                                          pure=pure))

    def function(self, name: str) -> Function:
        """Find a function by name; raises ``KeyError`` if absent."""
        return self._functions[name]

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def __iter__(self) -> Iterator[Function]:
        return iter(self._functions.values())

    def __repr__(self) -> str:
        return f"<Module {self.name} ({len(self._functions)} functions)>"
