"""An LLVM-style IRBuilder for convenient SSA construction.

The builder holds an insertion point (a block, and optionally a position
within it) and offers one method per instruction kind.  Workload kernels
and the C-like frontend both construct IR through this interface.
"""

from __future__ import annotations

from .basicblock import BasicBlock
from .function import Function
from .instructions import (Alloc, BinOp, Branch, Call, Cast, Cmp, GEP,
                           Instruction, Jump, Load, Phi, Prefetch, Ret,
                           Select, Store)
from .types import IntType, Type, INT64
from .values import Constant, Value


class IRBuilder:
    """Builds instructions at a current insertion point.

    :param block: initial insertion block (optional; call
        :meth:`set_insert_point` later).
    """

    def __init__(self, block: BasicBlock | None = None):
        self._block = block
        self._before: Instruction | None = None

    # -- insertion point -------------------------------------------------

    @property
    def block(self) -> BasicBlock:
        """The current insertion block."""
        if self._block is None:
            raise ValueError("builder has no insertion point")
        return self._block

    def set_insert_point(self, block: BasicBlock,
                         before: Instruction | None = None) -> None:
        """Move the insertion point to ``block`` (optionally before an
        existing instruction in it)."""
        self._block = block
        self._before = before

    def _insert(self, inst: Instruction) -> Instruction:
        if self._before is not None:
            self.block.insert_before(self._before, inst)
        else:
            self.block.append(inst)
        return inst

    # -- constants ---------------------------------------------------------

    def const(self, value, type: Type = INT64) -> Constant:
        """Create an integer/float constant (no instruction emitted)."""
        return Constant(type, value)

    # -- arithmetic ----------------------------------------------------------

    def binop(self, opcode: str, lhs: Value, rhs: Value,
              name: str = "") -> BinOp:
        """Emit an arbitrary binary operation."""
        return self._insert(BinOp(opcode, lhs, rhs, name))  # type: ignore

    def add(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        """Emit integer addition."""
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        """Emit integer subtraction."""
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        """Emit integer multiplication."""
        return self.binop("mul", lhs, rhs, name)

    def sdiv(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        """Emit signed integer division."""
        return self.binop("sdiv", lhs, rhs, name)

    def srem(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        """Emit signed integer remainder."""
        return self.binop("srem", lhs, rhs, name)

    def and_(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        """Emit bitwise AND."""
        return self.binop("and", lhs, rhs, name)

    def or_(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        """Emit bitwise OR."""
        return self.binop("or", lhs, rhs, name)

    def xor(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        """Emit bitwise XOR."""
        return self.binop("xor", lhs, rhs, name)

    def shl(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        """Emit left shift."""
        return self.binop("shl", lhs, rhs, name)

    def lshr(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        """Emit logical right shift."""
        return self.binop("lshr", lhs, rhs, name)

    def ashr(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        """Emit arithmetic right shift."""
        return self.binop("ashr", lhs, rhs, name)

    def fadd(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        """Emit float addition."""
        return self.binop("fadd", lhs, rhs, name)

    def fsub(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        """Emit float subtraction."""
        return self.binop("fsub", lhs, rhs, name)

    def fmul(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        """Emit float multiplication."""
        return self.binop("fmul", lhs, rhs, name)

    def fdiv(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        """Emit float division."""
        return self.binop("fdiv", lhs, rhs, name)

    # -- comparisons / select --------------------------------------------------

    def cmp(self, predicate: str, lhs: Value, rhs: Value,
            name: str = "") -> Cmp:
        """Emit a comparison producing i1."""
        return self._insert(Cmp(predicate, lhs, rhs, name))  # type: ignore

    def select(self, cond: Value, a: Value, b: Value, name: str = "") -> Select:
        """Emit ``select cond, a, b``."""
        return self._insert(Select(cond, a, b, name))  # type: ignore

    def smin(self, a: Value, b: Value, name: str = "") -> Select:
        """Emit a signed minimum as cmp+select (used by fault guards)."""
        lt = self.cmp("slt", a, b, name + ".lt" if name else "")
        return self.select(lt, a, b, name)

    # -- casts ---------------------------------------------------------

    def cast(self, opcode: str, value: Value, to_type: Type,
             name: str = "") -> Cast:
        """Emit a cast instruction."""
        return self._insert(Cast(opcode, value, to_type, name))  # type: ignore

    def sext(self, value: Value, to_type: Type, name: str = "") -> Cast:
        """Emit sign extension."""
        return self.cast("sext", value, to_type, name)

    def trunc(self, value: Value, to_type: Type, name: str = "") -> Cast:
        """Emit truncation."""
        return self.cast("trunc", value, to_type, name)

    # -- memory ------------------------------------------------------------

    def alloc(self, element_type: Type, count: Value | int,
              name: str = "") -> Alloc:
        """Emit an array allocation of ``count`` elements."""
        if isinstance(count, int):
            count = self.const(count)
        return self._insert(Alloc(element_type, count, name))  # type: ignore

    def gep(self, base: Value, index: Value | int, name: str = "") -> GEP:
        """Emit pointer arithmetic ``base + index * sizeof(elem)``."""
        if isinstance(index, int):
            index = self.const(index)
        return self._insert(GEP(base, index, name))  # type: ignore

    def load(self, ptr: Value, name: str = "") -> Load:
        """Emit a load through ``ptr``."""
        return self._insert(Load(ptr, name))  # type: ignore

    def store(self, value: Value, ptr: Value) -> Store:
        """Emit a store of ``value`` through ``ptr``."""
        return self._insert(Store(value, ptr))  # type: ignore

    def prefetch(self, ptr: Value) -> Prefetch:
        """Emit a software prefetch hint for the line containing ``ptr``."""
        return self._insert(Prefetch(ptr))  # type: ignore

    # -- control flow -----------------------------------------------------

    def phi(self, type: Type, name: str = "") -> Phi:
        """Emit an (initially empty) phi node at the current point."""
        return self._insert(Phi(type, name))  # type: ignore

    def br(self, cond: Value, then_block: BasicBlock,
           else_block: BasicBlock) -> Branch:
        """Emit a conditional branch."""
        return self._insert(Branch(cond, then_block, else_block))  # type: ignore

    def jmp(self, target: BasicBlock) -> Jump:
        """Emit an unconditional branch."""
        return self._insert(Jump(target))  # type: ignore

    def ret(self, value: Value | None = None) -> Ret:
        """Emit a return."""
        return self._insert(Ret(value))  # type: ignore

    def call(self, callee: Function, args: list[Value],
             name: str = "") -> Call:
        """Emit a direct call."""
        return self._insert(Call(callee, args, name))  # type: ignore
