"""Stdlib-only clients for the serve API.

:class:`AsyncClient` keeps one connection open (HTTP/1.1 keep-alive)
and is what ``tools/load_test.py`` drives by the hundred;
:func:`submit` / :func:`get_metrics` are blocking one-shot helpers for
``repro submit`` and scripts.
"""

from __future__ import annotations

import asyncio
import http.client
import json

from .http import ProtocolError


class ServeHTTPError(Exception):
    """Non-2xx answer; carries the status and decoded body."""

    def __init__(self, status: int, body: dict):
        super().__init__(f"HTTP {status}: "
                         f"{body.get('error', body) if isinstance(body, dict) else body}")
        self.status = status
        self.body = body


class AsyncClient:
    """One persistent connection to the service."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader = None
        self._writer = None

    async def connect(self) -> "AsyncClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None

    async def request(self, method: str, path: str,
                      body: dict | None = None) -> tuple[int, dict]:
        """One exchange on the persistent connection.

        Returns ``(status, decoded_json_body)``; transport errors
        propagate (the load harness counts them).
        """
        if self._writer is None:
            await self.connect()
        payload = b""
        if body is not None:
            payload = json.dumps(body).encode()
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"\r\n").encode()
        self._writer.write(head + payload)
        await self._writer.drain()
        return await self._read_response()

    async def _read_response(self) -> tuple[int, dict]:
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        parts = line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ProtocolError(502, f"bad status line {line[:80]!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            text = line.decode("latin-1").strip()
            if not text:
                break
            name, _, value = text.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await self._reader.readexactly(length)
        try:
            decoded = json.loads(body) if body else {}
        except ValueError:
            decoded = {"raw": body.decode("utf-8", "replace")}
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return status, decoded

    async def submit(self, request: dict) -> tuple[int, dict]:
        """POST one job."""
        return await self.request("POST", "/v1/jobs", request)


def _one_shot(host: str, port: int, method: str, path: str,
              body: dict | None = None, timeout: float = 600.0):
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload,
                     headers={"Content-Type": "application/json",
                              "Connection": "close"})
        response = conn.getresponse()
        raw = response.read()
        try:
            decoded = json.loads(raw) if raw else {}
        except ValueError:
            decoded = {"raw": raw.decode("utf-8", "replace")}
        return response.status, decoded
    finally:
        conn.close()


def submit(host: str, port: int, request: dict,
           timeout: float = 600.0) -> dict:
    """Blocking submit; raises :class:`ServeHTTPError` on non-2xx."""
    status, body = _one_shot(host, port, "POST", "/v1/jobs", request,
                             timeout)
    if status != 200:
        raise ServeHTTPError(status, body)
    return body


def get_metrics(host: str, port: int, timeout: float = 30.0) -> dict:
    """Blocking ``GET /metrics``."""
    status, body = _one_shot(host, port, "GET", "/metrics", None,
                             timeout)
    if status != 200:
        raise ServeHTTPError(status, body)
    return body


def get_metrics_text(host: str, port: int,
                     timeout: float = 30.0) -> str:
    """Blocking ``GET /metrics?format=prometheus`` (text exposition)."""
    status, body = _one_shot(host, port,
                             "GET", "/metrics?format=prometheus",
                             None, timeout)
    if status != 200:
        raise ServeHTTPError(status, body)
    return body["raw"] if isinstance(body, dict) else body


def get_trace(host: str, port: int, request_id: str,
              timeout: float = 30.0) -> dict:
    """Blocking ``GET /v1/trace/<request_id>`` — the request's
    cross-process span tree as a Perfetto-loadable document."""
    status, body = _one_shot(host, port, "GET",
                             f"/v1/trace/{request_id}", None, timeout)
    if status != 200:
        raise ServeHTTPError(status, body)
    return body
