"""Sharded process worker pool with per-request timeouts.

The service executes every job in a separate *worker process* (one per
pool slot, sharded across cores via CPU affinity where the platform
allows), because a simulation is seconds of pure Python — running it on
the event loop would stall every other client, and a thread would share
the GIL.  The pool differs from a stock ``ProcessPoolExecutor`` in the
one property serving needs: **a request that exceeds its deadline gets
its worker killed and respawned**, so a hung or runaway simulation can
never permanently occupy a slot.  (Stock executors cannot cancel a
running task; killing the process is the only reliable reclaim.)

Mechanics: each :class:`_Worker` is a child process on the other end of
a duplex pipe, looping ``recv → execute → send``.  The async side
submits through a thread pool sized to the worker count — each thread
does the blocking ``send``/``poll(timeout)``/``recv`` for exactly one
worker at a time, so ``await pool.run(...)`` composes with the event
loop while the pipe I/O stays simple and portable.

The multiprocessing start method defaults to ``fork`` where available
(workers inherit the loaded interpreter — startup and respawn are
milliseconds); ``REPRO_SERVE_MP_CONTEXT=spawn`` switches to clean
re-imported children.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import queue
import time
import traceback
from concurrent.futures import ThreadPoolExecutor


class JobTimeout(Exception):
    """The job exceeded its deadline; its worker was killed (HTTP 504)."""


class WorkerCrash(Exception):
    """The worker died mid-job; it was respawned (HTTP 500)."""


def _worker_main(conn, index: int) -> None:
    """Child process body: pin to a core shard, then serve jobs."""
    try:
        cpus = os.cpu_count() or 1
        os.sched_setaffinity(0, {index % cpus})
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        pass
    # Import here, not at module top: under the spawn start method the
    # child imports this module before repro's heavyweight packages.
    from ..telemetry.spans import SpanRecorder
    from .protocol import execute_request
    parent = os.getppid()
    while True:
        try:
            # Poll with a deadline rather than blocking in recv():
            # under fork, sibling workers inherit this pipe's parent
            # end, so EOF never arrives if the server dies — the ppid
            # check is what lets an orphaned worker notice and exit.
            if not conn.poll(1.0):
                if os.getppid() != parent:
                    break
                continue
            job = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if job is None:
            break
        # The server may wrap the job with an observability context
        # ({"_obs": {...}, "job": <canonical request>}); a traced job
        # executes under a SpanRecorder whose records travel back in
        # the out-of-band ``_trace`` section (the server strips it
        # before the payload reaches the CAS or any client).
        obs = None
        if isinstance(job, dict) and "_obs" in job:
            obs = job["_obs"]
            job = job["job"]
        recorder = (SpanRecorder()
                    if obs is not None and obs.get("trace") else None)
        try:
            out = execute_request(job, recorder=recorder)
        except BaseException as exc:
            out = {"schema": "repro-serve-result-v1", "status": "error",
                   "code": 500,
                   "error": f"{type(exc).__name__}: {exc}",
                   "traceback": traceback.format_exc()}
        if recorder is not None and isinstance(out, dict):
            out["_trace"] = {
                "worker_spans": recorder.snapshot()["records"],
                "worker": index, "pid": os.getpid()}
        try:
            conn.send(out)
        except (BrokenPipeError, OSError):
            break
    conn.close()


def _default_context() -> multiprocessing.context.BaseContext:
    name = os.environ.get("REPRO_SERVE_MP_CONTEXT") or None
    if name is None:
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platforms without fork
            return multiprocessing.get_context("spawn")
    return multiprocessing.get_context(name)


class _Worker:
    """One pool slot: a child process plus its pipe."""

    def __init__(self, ctx, index: int):
        self._ctx = ctx
        self.index = index
        self.conn = None
        self.process = None
        self.start()

    def start(self) -> None:
        self.conn, child = self._ctx.Pipe(duplex=True)
        self.process = self._ctx.Process(
            target=_worker_main, args=(child, self.index),
            name=f"repro-serve-worker-{self.index}", daemon=True)
        self.process.start()
        child.close()

    def restart(self) -> None:
        """Kill the child (it may be wedged mid-job) and respawn."""
        self.stop()
        self.start()

    def stop(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
            if self.process.is_alive():  # pragma: no cover - stubborn
                self.process.kill()
                self.process.join(timeout=2.0)


class WorkerPool:
    """Fixed-size pool of simulation workers with deadline enforcement."""

    def __init__(self, workers: int, context: str | None = None,
                 on_event=None):
        ctx = (multiprocessing.get_context(context) if context
               else _default_context())
        self.size = max(1, workers)
        #: Optional lifecycle callback ``on_event(event, **fields)``
        #: (worker_start / worker_restart / pool_close).  Called from
        #: whatever thread hits the event; implementations must be
        #: thread-safe and must never raise.
        self.on_event = on_event
        self._workers = [_Worker(ctx, i) for i in range(self.size)]
        self._idle: queue.Queue[_Worker] = queue.Queue()
        for worker in self._workers:
            self._idle.put(worker)
            self._event("worker_start", worker=worker.index,
                        pid=worker.process.pid)
        self._threads = ThreadPoolExecutor(
            max_workers=self.size, thread_name_prefix="repro-serve-io")
        #: Workers killed for blowing their deadline (metrics).
        self.restarts = 0
        self._closing = False

    def _event(self, event: str, **fields) -> None:
        if self.on_event is not None:
            try:
                self.on_event(event, **fields)
            except Exception:  # pragma: no cover - observer bug
                pass

    def _recycle(self, worker: _Worker) -> None:
        """Respawn a dead or wedged worker — unless the pool is
        closing, when the pipe error *is* shutdown itself and a
        respawn would leak a fresh child past :meth:`close`."""
        if self._closing:
            raise WorkerCrash(f"pool is closing; worker "
                              f"{worker.index} not restarted")
        worker.restart()
        self.restarts += 1
        self._event("worker_restart", worker=worker.index,
                    pid=worker.process.pid)

    def _submit_sync(self, payload: dict, deadline: float | None,
                     timeout: float | None,
                     obs: dict | None = None) -> dict:
        """Blocking submit, run on a pool I/O thread.

        ``deadline`` is absolute (``time.monotonic``), stamped at
        admission in :meth:`run` — time a job spends queued behind
        other work on these threads counts against its budget, so
        client-visible latency really is bounded by the advertised
        per-request deadline.
        """
        queued_at = time.monotonic()
        worker = self._idle.get()
        if obs is not None:
            # Queue wait plus trace context ride to the worker in an
            # ``_obs`` envelope; workers unwrap it (bare payloads — the
            # non-traced path and direct pool users — pass through
            # untouched, keeping the wire format backward-compatible).
            obs["queue_ms"] = (time.monotonic() - queued_at) * 1e3
            if obs.get("trace"):
                payload = {"_obs": {"trace": True,
                                    "request_id": obs.get("request_id")},
                           "job": payload}
        try:
            if deadline is not None and time.monotonic() >= deadline:
                # The budget burned down in the queue; the worker was
                # never touched, so there is nothing to recycle.
                raise JobTimeout(
                    f"job spent its {timeout:.1f}s deadline queued "
                    f"behind other work; retry when load drops")
            try:
                worker.conn.send(payload)
            except (BrokenPipeError, OSError):
                # The worker died idle (OOM-killed, operator signal):
                # one respawn-and-retry before giving up.
                self._recycle(worker)
                worker.conn.send(payload)
            try:
                if deadline is not None and \
                        not worker.conn.poll(
                            max(0.0, deadline - time.monotonic())):
                    self._recycle(worker)
                    raise JobTimeout(
                        f"job exceeded {timeout:.1f}s; worker "
                        f"{worker.index} was recycled")
                return worker.conn.recv()
            except (EOFError, OSError) as exc:
                self._recycle(worker)
                raise WorkerCrash(
                    f"worker {worker.index} died mid-job") from exc
        finally:
            self._idle.put(worker)

    async def run(self, payload: dict,
                  timeout: float | None = None,
                  obs: dict | None = None) -> dict:
        """Execute ``payload`` on a worker; raises :class:`JobTimeout`
        or :class:`WorkerCrash` on reclaim.  The deadline clock starts
        *now* (admission), not when an I/O thread picks the job up.

        ``obs`` (optional, mutated in place) is the observability
        context: on return ``obs["queue_ms"]`` holds the measured
        idle-slot wait, and ``obs["trace"] = True`` asks the worker to
        record execution spans (returned via the result's ``_trace``
        section)."""
        loop = asyncio.get_running_loop()
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        return await loop.run_in_executor(
            self._threads, self._submit_sync, payload, deadline,
            timeout, obs)

    def close(self) -> None:
        """Stop every worker and the I/O threads.

        The closing flag goes up first: an I/O thread still blocked in
        ``poll``/``recv`` for an in-flight job sees its pipe die, and
        must report :class:`WorkerCrash` to its waiter rather than
        respawn a child after shutdown.
        """
        self._closing = True
        self._event("pool_close", workers=self.size)
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.stop()
        self._threads.shutdown(wait=False, cancel_futures=True)
