"""The serve wire protocol: versioned requests, content keys, executor.

Request schema (``repro-serve-request-v1``)
-------------------------------------------

A request is a JSON object.  Three kinds:

``simulate`` — run one workload variant on one machine::

    {"schema": "repro-serve-request-v1", "kind": "simulate",
     "workload": "is", "small": true, "variant": "auto",
     "machine": "Haswell", "lookahead": 64,
     "options": {"stride": true, "hoist": false},
     "validate": true, "tier": "auto",
     "include": ["telemetry", "remarks", "timeline", "spans"]}

``compile`` — compile inline kernel source (the C-like frontend),
optionally running the prefetch pass and the -O cleanup pipeline::

    {"kind": "compile", "source": "...", "prefetch": true,
     "optimize": true, "lookahead": 64,
     "options": {"stride": true, "hoist": false},
     "include": ["remarks", "spans"]}

``sleep`` — debug-only (rejected unless the server runs with
``debug=True``); used by fault-injection tests and nothing else.

:func:`normalize_request` validates a raw dict and fills defaults,
producing the *canonical* form; :func:`request_key` hashes that form
together with the simulator code hash into the CAS/coalescing key, so
identical requests — regardless of field order or omitted defaults —
share one simulation and one stored result.  Everything that can alter
the stored payload participates in the key, including ``include`` (a
telemetry-free result must never satisfy a telemetry-requesting
client), mirroring :func:`repro.bench.cache.run_key`.

:func:`execute_request` is the worker-process side: it performs the
actual compile/simulate with the requested observability attached and
returns the JSON-safe ``repro-serve-result-v1`` payload.
"""

from __future__ import annotations

import dataclasses
import time

from .cas import store_key

SCHEMA_REQUEST = "repro-serve-request-v1"
SCHEMA_RESULT = "repro-serve-result-v1"

KINDS = ("simulate", "compile", "sleep")
TIERS = ("auto", "reference", "fastpath", "tracejit", "vector")
INCLUDES = ("telemetry", "remarks", "timeline", "spans")
VARIANTS = ("plain", "auto", "manual", "icc")
WORKLOADS = ("is", "cg", "ra", "hj2", "hj8", "g500s16", "g500s21")
MACHINES = ("Haswell", "A57", "A53", "Xeon Phi")

#: Guard rails on numeric request fields.
MAX_LOOKAHEAD = 1 << 16
MAX_SLEEP_S = 60.0

#: Execution-tier gates set in the worker for one request.  ``auto``
#: leaves the worker's environment alone (whatever the operator set).
_TIER_ENV = {
    "reference": {"REPRO_SIM_FASTPATH": "0", "REPRO_SIM_TRACEJIT": "0",
                  "REPRO_SIM_VECTOR": "0"},
    "fastpath": {"REPRO_SIM_FASTPATH": "1", "REPRO_SIM_TRACEJIT": "0",
                 "REPRO_SIM_VECTOR": "0"},
    "tracejit": {"REPRO_SIM_FASTPATH": "1", "REPRO_SIM_TRACEJIT": "1",
                 "REPRO_SIM_VECTOR": "0"},
    "vector": {"REPRO_SIM_FASTPATH": "1", "REPRO_SIM_TRACEJIT": "1",
               "REPRO_SIM_VECTOR": "1"},
}


class RequestError(ValueError):
    """A request failed schema validation (HTTP 400)."""


def _field(raw: dict, name: str, kind, default):
    """One typed optional field; ``bool`` is not an ``int`` here."""
    value = raw.get(name, default)
    if kind is int and isinstance(value, bool) or \
            not isinstance(value, kind):
        raise RequestError(
            f"field {name!r} must be {getattr(kind, '__name__', kind)}, "
            f"got {type(value).__name__}")
    return value


def _choice(raw: dict, name: str, choices, default):
    value = raw.get(name, default)
    if not isinstance(value, str) or value not in choices:
        raise RequestError(
            f"field {name!r} must be one of {list(choices)}, "
            f"got {value!r}")
    return value


def _canon_workload(name) -> str:
    from ..workloads import canonical_name
    if not isinstance(name, str):
        raise RequestError("field 'workload' must be str")
    canon = canonical_name(name)
    if canon not in WORKLOADS:
        raise RequestError(
            f"unknown workload {name!r}; expected one of "
            f"{list(WORKLOADS)}")
    return canon


def _canon_machine(name) -> str:
    if not isinstance(name, str):
        raise RequestError("field 'machine' must be str")
    for known in MACHINES:
        if known.lower() == name.lower():
            return known
    raise RequestError(
        f"unknown machine {name!r}; expected one of {list(MACHINES)}")


def _canon_include(raw) -> list[str]:
    include = raw.get("include", [])
    if isinstance(include, str):  # "telemetry,remarks" query form
        include = [part for part in include.split(",") if part]
    if not isinstance(include, list) or \
            not all(isinstance(i, str) for i in include):
        raise RequestError("field 'include' must be a list of strings")
    unknown = [i for i in include if i not in INCLUDES]
    if unknown:
        raise RequestError(
            f"unknown include item(s) {unknown}; expected subset of "
            f"{list(INCLUDES)}")
    return sorted(set(include))


def _canon_options(raw) -> dict:
    options = raw.get("options", {})
    if not isinstance(options, dict):
        raise RequestError("field 'options' must be an object")
    unknown = [k for k in options if k not in ("stride", "hoist")]
    if unknown:
        raise RequestError(
            f"unknown options key(s) {unknown}; expected subset of "
            f"['stride', 'hoist']")
    return {"stride": _field(options, "stride", bool, True),
            "hoist": _field(options, "hoist", bool, False)}


def normalize_request(raw: dict, debug: bool = False) -> dict:
    """Validate ``raw`` and return its canonical form.

    Raises :class:`RequestError` on any schema violation.  ``debug``
    admits the ``sleep`` kind (test servers only).
    """
    if not isinstance(raw, dict):
        raise RequestError("request body must be a JSON object")
    schema = raw.get("schema", SCHEMA_REQUEST)
    if schema != SCHEMA_REQUEST:
        raise RequestError(
            f"unsupported schema {schema!r}; this server speaks "
            f"{SCHEMA_REQUEST}")
    kind = _choice(raw, "kind", KINDS, "simulate")
    norm: dict = {"schema": SCHEMA_REQUEST, "kind": kind}
    lookahead = _field(raw, "lookahead", int, 64)
    if not 1 <= lookahead <= MAX_LOOKAHEAD:
        raise RequestError(
            f"field 'lookahead' must be in [1, {MAX_LOOKAHEAD}], "
            f"got {lookahead}")
    if kind == "simulate":
        norm["workload"] = _canon_workload(raw.get("workload"))
        norm["small"] = _field(raw, "small", bool, False)
        norm["variant"] = _choice(raw, "variant", VARIANTS, "auto")
        norm["machine"] = _canon_machine(raw.get("machine", "Haswell"))
        norm["lookahead"] = lookahead
        norm["options"] = _canon_options(raw)
        norm["validate"] = _field(raw, "validate", bool, True)
        norm["tier"] = _choice(raw, "tier", TIERS, "auto")
        norm["include"] = _canon_include(raw)
    elif kind == "compile":
        source = raw.get("source")
        if not isinstance(source, str) or not source.strip():
            raise RequestError(
                "field 'source' must be non-empty kernel source")
        norm["source"] = source
        norm["prefetch"] = _field(raw, "prefetch", bool, True)
        norm["optimize"] = _field(raw, "optimize", bool, False)
        norm["lookahead"] = lookahead
        norm["options"] = _canon_options(raw)
        norm["include"] = _canon_include(raw)
    else:  # sleep
        if not debug:
            raise RequestError(
                "kind 'sleep' is only accepted by debug servers")
        seconds = raw.get("seconds", 0.1)
        if isinstance(seconds, bool) or \
                not isinstance(seconds, (int, float)) or \
                not 0 <= seconds <= MAX_SLEEP_S:
            raise RequestError(
                f"field 'seconds' must be a number in "
                f"[0, {MAX_SLEEP_S}], got {seconds!r}")
        norm["seconds"] = float(seconds)
        norm["include"] = _canon_include(raw)
    return norm


def request_key(norm: dict) -> str:
    """CAS / coalescing key of a canonical request.

    Folds in the simulator code hash, so — exactly like the bench
    run-cache — any engine change invalidates every stored result.
    """
    from ..bench.cache import simulator_code_hash
    return store_key({"code": simulator_code_hash(), "request": norm})


# ---------------------------------------------------------------------------
# Worker-side execution.


class _TierEnv:
    """Set the execution-tier gate variables for one request."""

    def __init__(self, tier: str):
        self.tier = tier
        self._saved: dict = {}

    def __enter__(self):
        import os
        for key, value in _TIER_ENV.get(self.tier, {}).items():
            self._saved[key] = os.environ.get(key)
            os.environ[key] = value
        return self

    def __exit__(self, *exc):
        import os
        for key, value in self._saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        return False


def _execute_simulate(norm: dict, include: list[str]) -> dict:
    from ..bench.runner import run_variant
    from ..machine.configs import system_by_name
    from ..passes.prefetch import PrefetchOptions
    from ..workloads import workload_by_name

    workload = workload_by_name(norm["workload"], small=norm["small"])
    machine = system_by_name(norm["machine"])
    options = PrefetchOptions(
        lookahead=norm["lookahead"],
        emit_stride_prefetch=norm["options"]["stride"],
        enable_hoisting=norm["options"]["hoist"])
    with _TierEnv(norm["tier"]):
        result = run_variant(
            workload, norm["variant"], machine,
            lookahead=norm["lookahead"], options=options,
            validate=norm["validate"], cache=False,
            telemetry="telemetry" in include,
            timeline="timeline" in include)
    return dataclasses.asdict(result)


def _execute_compile(norm: dict) -> dict:
    from ..frontend import compile_source
    from ..ir import print_module, verify_module
    from ..passes import (CommonSubexpressionEliminationPass,
                          DeadCodeEliminationPass, IndirectPrefetchPass,
                          LoopInvariantCodeMotionPass, PassManager,
                          PrefetchOptions, SimplifyCFGPass)

    module = compile_source(norm["source"], name="<request>")
    out: dict = {}
    if norm["prefetch"]:
        options = PrefetchOptions(
            lookahead=norm["lookahead"],
            emit_stride_prefetch=norm["options"]["stride"],
            enable_hoisting=norm["options"]["hoist"])
        report = IndirectPrefetchPass(options).run(module)
        out["prefetch_report"] = report.summary()
    if norm["optimize"]:
        pipeline = PassManager()
        pipeline.add(SimplifyCFGPass())
        pipeline.add(LoopInvariantCodeMotionPass())
        pipeline.add(CommonSubexpressionEliminationPass())
        pipeline.add(DeadCodeEliminationPass())
        pipeline.run(module)
    verify_module(module)
    out["ir"] = print_module(module)
    return out


def execute_request(norm: dict, recorder=None) -> dict:
    """Run one canonical request to completion (worker process).

    Returns the ``repro-serve-result-v1`` payload.  Compile errors in
    client-supplied source are reported as ``status: "error"`` with
    ``code: 400`` (the client's fault); anything else unexpected is the
    caller's job to catch.

    ``recorder`` optionally supplies an external
    :class:`~repro.telemetry.spans.SpanRecorder` (the pool passes one
    for traced requests) — it is installed for the run but its records
    are *not* added to the payload unless the request also asked for
    ``include: ["spans"]``, so the client-visible result is identical
    with and without tracing.
    """
    from contextlib import ExitStack

    from ..remarks import RemarkEmitter, collecting
    from ..remarks.serialize import remark_to_dict
    from ..telemetry.spans import SpanRecorder, recording, span

    include = norm.get("include", [])
    want_spans = "spans" in include
    start = time.perf_counter()
    payload: dict = {"schema": SCHEMA_RESULT, "status": "ok",
                     "kind": norm["kind"]}
    emitter = RemarkEmitter() if "remarks" in include else None
    if recorder is None and want_spans:
        recorder = SpanRecorder()

    def body():
        if norm["kind"] == "sleep":
            time.sleep(norm["seconds"])
            return {"slept_s": norm["seconds"]}
        if norm["kind"] == "compile":
            return _execute_compile(norm)
        return _execute_simulate(norm, include)

    try:
        with ExitStack() as stack:
            if emitter is not None:
                stack.enter_context(collecting(emitter))
            if recorder is not None:
                stack.enter_context(recording(recorder))
                # A top-level span guarantees every traced job shows at
                # least one worker-side record (sleep jobs have no
                # instrumented interior).
                stack.enter_context(
                    span("serve", "execute", kind=norm["kind"]))
            payload["result"] = body()
    except Exception as exc:
        if norm["kind"] == "compile":
            # Lexer/parser/lowering errors are the client's source.
            return {"schema": SCHEMA_RESULT, "status": "error",
                    "code": 400, "kind": norm["kind"],
                    "error": f"{type(exc).__name__}: {exc}"}
        raise
    if emitter is not None:
        payload["remarks"] = [remark_to_dict(r) for r in emitter]
    if want_spans:
        payload["spans"] = recorder.snapshot()
    payload["wall_ms"] = round(
        (time.perf_counter() - start) * 1e3, 3)
    return payload
