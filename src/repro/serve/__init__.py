"""``repro serve`` — the multi-tenant compile-and-simulate service.

The package wraps the whole compile→optimize→simulate pipeline behind
a long-running asyncio HTTP/JSON service so many clients share one
simulation substrate:

* :mod:`repro.serve.cas` — the content-addressed result store (CAS),
  promoted from the bench run-cache's disk layer: atomic writes,
  corrupt-entry tolerance, LRU garbage collection (``repro cache gc``);
* :mod:`repro.serve.protocol` — the versioned request schema
  (``repro-serve-request-v1``), request canonicalisation and content
  keys, and the worker-side executor;
* :mod:`repro.serve.http` — a minimal HTTP/1.1 layer over asyncio
  streams (no external dependencies);
* :mod:`repro.serve.pool` — the sharded process worker pool with
  per-request timeouts (a hung worker is killed and its slot
  reclaimed);
* :mod:`repro.serve.server` — the service itself: request coalescing,
  CAS probe/store, bounded-queue back-pressure (429 + Retry-After),
  and the ``/metrics`` endpoint;
* :mod:`repro.serve.client` — stdlib-only sync and async clients used
  by ``repro submit`` and ``tools/load_test.py``.

Only :mod:`cas` is imported eagerly — it is also a dependency of
:mod:`repro.bench.cache`, and keeping the rest lazy avoids a cycle.
"""

from .cas import ContentStore, store_key

__all__ = ["ContentStore", "store_key"]
