"""Content-addressed store (CAS) of JSON results.

Promoted from the disk layer of the bench run-cache (PR 1): one
JSON-serialised result per file under ``<root>/<key[:2]>/<key>.json``,
where ``key`` is a SHA-256 content hash of everything that determines
the result.  The store is safe for many concurrent writers — every
write goes through a same-directory temp file plus an atomic
``os.replace`` — and *forgiving* readers: a corrupt, truncated, or
concurrently-vanishing entry is a miss, never an exception.

:class:`ContentStore` is the base used both by
:class:`repro.bench.cache.RunCache` (which adds an in-memory layer and
simulation-specific keying) and by the serve subsystem's result store.
Garbage collection (:meth:`ContentStore.gc`) evicts least-recently-used
entries by file mtime until the store fits a byte budget; ``repro
cache gc`` exposes it on the command line.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from pathlib import Path

#: The only shape a content key can have: a full SHA-256 hexdigest.
#: Everything else — in particular anything containing ``/`` or ``..``
#: — must be rejected *before* it is joined into a filesystem path.
KEY_RE = re.compile(r"[0-9a-f]{64}")


def valid_key(key) -> bool:
    """Whether ``key`` is a well-formed content key."""
    return isinstance(key, str) and KEY_RE.fullmatch(key) is not None


def store_key(value) -> str:
    """SHA-256 content key of a JSON-serialisable value.

    The value is canonicalised (sorted keys, compact separators) so two
    structurally-equal requests produce the same key regardless of dict
    insertion order.
    """
    text = json.dumps(value, sort_keys=True, separators=(",", ":"),
                      default=repr)
    return hashlib.sha256(text.encode()).hexdigest()


class ContentStore:
    """Content-addressed store of JSON dicts with atomic writes.

    :param root: store directory (created lazily on first write).
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> Path:
        """Filesystem location of ``key`` — which must be a validated
        content key: an unvalidated key containing ``/`` or ``..``
        would escape the store root (path traversal)."""
        if not valid_key(key):
            raise ValueError(f"invalid content key {key[:80]!r}")
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The stored dict for ``key``, or ``None``.

        Any unreadable entry — missing, truncated, non-JSON, non-dict,
        deleted between stat and read by a concurrent GC, or addressed
        by a malformed key — counts as a miss: readers never crash on
        another process's half-state (or a hostile key).
        """
        try:
            data = json.loads(self._path(key).read_bytes())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(data, dict):
            self.misses += 1
            return None
        self.hits += 1
        return data

    def contains(self, key: str) -> bool:
        """Whether an entry exists (without reading or counting it)."""
        return valid_key(key) and self._path(key).is_file()

    def put(self, key: str, data: dict) -> None:
        """Store ``data`` under ``key``, atomically.

        The temp file lives in the destination directory so the final
        ``os.replace`` is a same-filesystem rename: concurrent readers
        see either the old entry or the new one, never a torn write.
        Racing writers of the same key are both writing the same
        content-addressed bytes, so the last rename wins harmlessly.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(data, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    def entries(self) -> list[dict]:
        """All entries as ``{key, path, bytes, mtime}`` rows.

        Entries that vanish mid-scan (a concurrent GC or writer) are
        skipped.  Leftover ``*.tmp`` files from crashed writers are not
        entries — :meth:`gc` sweeps them.
        """
        rows = []
        if not self.root.is_dir():
            return rows
        for path in self.root.glob("??/*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            rows.append({"key": path.stem, "path": path,
                         "bytes": stat.st_size, "mtime": stat.st_mtime})
        return rows

    def total_bytes(self) -> int:
        """Total payload bytes currently stored."""
        return sum(row["bytes"] for row in self.entries())

    def gc(self, max_bytes: int, dry_run: bool = False) -> dict:
        """Evict least-recently-used entries until ≤ ``max_bytes``.

        LRU is by file mtime (a hit does not touch the file, so this
        approximates insertion order unless callers ``os.utime`` on
        use).  Orphaned ``*.tmp`` files older than an hour are removed
        too.  Returns a report dict::

            {"entries": n, "bytes": total, "removed": [keys...],
             "removed_bytes": n, "kept_bytes": n, "dry_run": bool}

        With ``dry_run`` nothing is deleted; the report shows what
        would go.  Missing files during deletion are ignored (another
        process won the race).
        """
        rows = sorted(self.entries(), key=lambda r: r["mtime"])
        total = sum(r["bytes"] for r in rows)
        report = {"entries": len(rows), "bytes": total, "removed": [],
                  "removed_bytes": 0, "kept_bytes": total,
                  "dry_run": bool(dry_run)}
        excess = total - max(0, int(max_bytes))
        for row in rows:
            if excess <= 0:
                break
            report["removed"].append(row["key"])
            report["removed_bytes"] += row["bytes"]
            excess -= row["bytes"]
            if not dry_run:
                try:
                    os.unlink(row["path"])
                except OSError:
                    pass
        report["kept_bytes"] = total - report["removed_bytes"]
        if not dry_run:
            self._sweep_tmp()
        return report

    def _sweep_tmp(self, min_age_s: float = 3600.0) -> None:
        """Remove stale temp files left by crashed writers."""
        import time
        cutoff = time.time() - min_age_s
        if not self.root.is_dir():
            return
        for tmp in self.root.glob("??/*.tmp"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    os.unlink(tmp)
            except OSError:
                pass
