"""The compile-and-simulate service: coalescing, CAS, back-pressure.

Request lifecycle (``POST /v1/jobs``):

1. **Parse + validate** — malformed JSON or schema violations answer
   400 without touching a worker.
2. **CAS probe** — the canonical request hashes to a content key
   (:func:`repro.serve.protocol.request_key`); a stored result answers
   immediately (``cached: true``).
3. **Coalesce** — if an identical request is already in flight, the
   handler awaits the *same* future (``coalesced: true``): N clients
   asking for one simulation cost one simulation.  The job is owned by
   a detached task, so a client that disconnects mid-wait never cancels
   the work the others are waiting on.
4. **Admit or shed** — at most ``queue_limit`` distinct jobs may be in
   flight; beyond that the server sheds load with 429 + ``Retry-After``
   instead of queueing unboundedly.
5. **Execute** — a pool worker runs the job under a per-request
   deadline; a blown deadline kills the worker (slot reclaimed) and
   answers 504.  Successful results are stored to the CAS before the
   waiters are woken.

Observability (docs/OBSERVABILITY.md):

* ``GET /metrics`` — the JSON snapshot (``repro-serve-metrics-v1``);
  ``GET /metrics?format=prometheus`` — the same registry in Prometheus
  text exposition.  Both are views over one labeled
  :class:`~repro.obs.metrics.Registry` (per-{workload, tier, status}
  request counters, per-stage latency histograms).
* Every HTTP exchange gets a request id (``X-Request-Id``); job
  submissions additionally record a cross-process span tree —
  server-side stage spans merged with the pool worker's spans —
  served as a Perfetto-loadable document by
  ``GET /v1/trace/<request_id>``.
* One structured access-log line per exchange plus lifecycle events
  (``--log-format json|text|off``), on stderr.

``GET /healthz`` is a liveness probe; ``GET /v1/store/<key>`` reads a
stored result back by key.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..envcfg import env_int
from ..obs.logs import AccessLogger
from ..obs.metrics import LATENCY_BUCKETS_MS, Registry
from ..obs.trace import (DEFAULT_CAPACITY, RequestSpans, TraceBuffer,
                         make_record, new_request_id, worker_stage_ms)
from .cas import ContentStore, valid_key
from .http import (ProtocolError, error_body, read_request,
                   render_response, wants_close)
from .pool import JobTimeout, WorkerCrash, WorkerPool
from .protocol import RequestError, normalize_request, request_key

#: Default store root for the service (distinct from the bench cache's
#: ``.sim-cache`` default; override with ``--cache-dir`` or the same
#: ``REPRO_SIM_CACHE_DIR`` variable the bench honours).
DEFAULT_STORE_DIR = ".serve-cas"


def default_workers() -> int:
    """Pool size: ``REPRO_SERVE_WORKERS`` (validated) or the CPUs."""
    workers = env_int("REPRO_SERVE_WORKERS", 0, minimum=0, maximum=256)
    if workers:
        return workers
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass
class ServeConfig:
    """Operator-facing service configuration (see docs/SERVING.md)."""

    host: str = "127.0.0.1"
    port: int = 0
    workers: int | None = None
    #: Max distinct jobs in flight before load shedding (429).
    queue_limit: int = 64
    #: Per-request execution deadline, seconds.
    timeout_s: float = 300.0
    cache_dir: str | None = None
    #: CAS byte budget; GC runs opportunistically after stores.
    cas_max_bytes: int | None = None
    #: Multiprocessing start method override for the pool.
    mp_context: str | None = None
    #: Accept debug 'sleep' jobs (tests only).
    debug: bool = False
    #: Access/event log format: ``text`` | ``json`` | ``off``.
    log_format: str = "text"
    #: Request-trace buffer capacity (``GET /v1/trace/<id>``).
    trace_capacity: int = DEFAULT_CAPACITY

    def resolved_store_dir(self) -> str:
        return (self.cache_dir
                or os.environ.get("REPRO_SIM_CACHE_DIR")
                or DEFAULT_STORE_DIR)


#: Pipeline stages with their own latency histogram series.
STAGES = ("admission", "probe", "queue", "worker", "compile",
          "simulate", "store")

#: Path → bounded ``route`` label (raw paths would be unbounded
#: cardinality — every bad URL a new series).
_ROUTES = {"/healthz": "/healthz", "/metrics": "/metrics",
           "/v1/jobs": "/v1/jobs"}


def route_label(path: str) -> str:
    if path in _ROUTES:
        return _ROUTES[path]
    if path.startswith("/v1/store/"):
        return "/v1/store/:key"
    if path.startswith("/v1/trace/"):
        return "/v1/trace/:id"
    return "other"


class ServeMetrics:
    """The service's labeled metrics registry plus snapshot assembly.

    Replaces the old bounded-reservoir ``Metrics``: histograms are
    fixed bucket vectors with an **all-time running max** (the
    reservoir forgot its max once 8192 newer samples displaced it),
    nothing is sorted at scrape time, and ``uptime_s`` counts on the
    monotonic clock (wall-clock steps used to show up as uptime
    jumps).  The legacy integer attributes (``cas_hits``,
    ``coalesce_hits``, …) remain readable as plain ints.
    """

    def __init__(self):
        self.started = time.time()          # wall, informational only
        self._started_monotonic = time.monotonic()
        r = self.registry = Registry()
        self.uptime_gauge = r.gauge(
            "repro_serve_uptime_seconds",
            "Seconds since server start (monotonic clock).",
            unit="seconds")
        self.http_requests = r.counter(
            "repro_serve_http_requests_total",
            "HTTP exchanges by method, route, and status.",
            labels=("method", "route", "status"))
        self.job_requests = r.counter(
            "repro_serve_requests_total",
            "Job submissions by workload, execution tier, and status.",
            labels=("workload", "tier", "status"))
        self.latency = r.histogram(
            "repro_serve_request_latency_ms",
            "End-to-end HTTP request latency.",
            unit="milliseconds", buckets=LATENCY_BUCKETS_MS)
        self.stage_latency = r.histogram(
            "repro_serve_stage_latency_ms",
            "Per-stage request latency (admission, probe, queue, "
            "worker, compile, simulate, store).",
            labels=("stage",), unit="milliseconds",
            buckets=LATENCY_BUCKETS_MS)
        self._coalesce = r.counter(
            "repro_serve_coalesce_hits_total",
            "Requests answered by joining an identical in-flight job.")
        self._cas_hits = r.counter(
            "repro_serve_cas_hits_total",
            "Requests answered from the content-addressed store.")
        self._cas_misses = r.counter(
            "repro_serve_cas_misses_total",
            "Store probes that found nothing.")
        self._cas_stores = r.counter(
            "repro_serve_cas_stores_total",
            "Results written to the content-addressed store.")
        self._executed = r.counter(
            "repro_serve_jobs_executed_total",
            "Jobs run to completion on a pool worker.")
        self._job_errors = r.counter(
            "repro_serve_job_errors_total",
            "Jobs that failed (worker crash or error payload).")
        self._timeouts = r.counter(
            "repro_serve_job_timeouts_total",
            "Jobs killed for exceeding the per-request deadline.")
        self._shed = r.counter(
            "repro_serve_jobs_shed_total",
            "Submissions rejected with 429 at the queue limit.")
        self._restarts = r.counter(
            "repro_serve_worker_restarts_total",
            "Pool workers killed and respawned.")
        self.queue_depth = r.gauge(
            "repro_serve_queue_depth", "Distinct jobs in flight.")
        self.queue_limit = r.gauge(
            "repro_serve_queue_limit",
            "Max distinct jobs in flight before load shedding.")
        self.workers_gauge = r.gauge(
            "repro_serve_workers", "Pool worker processes.")
        self.traces_gauge = r.gauge(
            "repro_serve_traces_buffered",
            "Request traces currently held in the trace buffer.")
        for stage in STAGES:  # pre-create: catalogue check sees all
            self.stage_latency.labels(stage=stage)

    # -- observation hooks --------------------------------------------

    def observe(self, status: int, latency_ms: float,
                method: str = "-", route: str = "-") -> None:
        self.http_requests.labels(method=method, route=route,
                                  status=str(status)).inc()
        self.latency.labels().observe(latency_ms)

    def observe_job(self, norm: dict, status: int) -> None:
        self.job_requests.labels(
            workload=norm.get("workload", "-"),
            tier=norm.get("tier", "-"), status=str(status)).inc()

    def observe_stages(self, stage_ms: dict) -> None:
        for stage, ms in stage_ms.items():
            if stage in STAGES:
                self.stage_latency.labels(stage=stage).observe(ms)

    def coalesce_hit(self) -> None:
        self._coalesce.inc()

    def cas_hit(self) -> None:
        self._cas_hits.inc()

    def job_executed(self) -> None:
        self._executed.inc()

    def job_error(self) -> None:
        self._job_errors.inc()

    def timeout(self) -> None:
        self._timeouts.inc()

    def shed_one(self) -> None:
        self._shed.inc()

    # -- legacy integer views (tests, tools/load_test.py) -------------

    @property
    def requests_total(self) -> int:
        return int(self.http_requests.value)

    @property
    def by_status(self) -> dict:
        out: dict[str, int] = {}
        for child in self.http_requests.children():
            status = child.labelvalues[2]
            out[status] = out.get(status, 0) + child.value
        return out

    @property
    def coalesce_hits(self) -> int:
        return int(self._coalesce.value)

    @property
    def cas_hits(self) -> int:
        return int(self._cas_hits.value)

    @property
    def jobs_executed(self) -> int:
        return int(self._executed.value)

    @property
    def job_errors(self) -> int:
        return int(self._job_errors.value)

    @property
    def timeouts(self) -> int:
        return int(self._timeouts.value)

    @property
    def shed(self) -> int:
        return int(self._shed.value)

    def uptime_s(self) -> float:
        return time.monotonic() - self._started_monotonic

    # -- exposition ---------------------------------------------------

    def sync(self, server: "Server") -> None:
        """Refresh scrape-time values: gauges, plus counters whose
        source of truth lives elsewhere (store, pool)."""
        self.uptime_gauge.set(round(self.uptime_s(), 3))
        self.queue_depth.set(len(server._inflight))
        self.queue_limit.set(server.config.queue_limit)
        self.workers_gauge.set(server.pool.size if server.pool else 0)
        self.traces_gauge.set(len(server.traces))
        self._cas_misses.labels().set_from(server.store.misses)
        self._cas_stores.labels().set_from(server.store.stores)
        if server.pool is not None:
            self._restarts.labels().set_from(server.pool.restarts)

    def _histogram_row(self, child) -> dict:
        return {"count": child.count,
                "p50": round(child.quantile(0.50), 3),
                "p99": round(child.quantile(0.99), 3),
                "max": round(child.max, 3)}

    def snapshot(self, server: "Server") -> dict:
        self.sync(server)
        by_label = [
            {"workload": c.labelvalues[0], "tier": c.labelvalues[1],
             "status": c.labelvalues[2], "count": c.value}
            for c in self.job_requests.children()]
        latency = self.latency.labels()
        stages = {
            child.labelvalues[0]: self._histogram_row(child)
            for child in self.stage_latency.children()
            if child.count}
        return {
            "schema": "repro-serve-metrics-v1",
            "uptime_s": round(self.uptime_s(), 3),
            "requests": {"total": self.requests_total,
                         "by_status": dict(sorted(
                             self.by_status.items())),
                         "by_label": by_label},
            "coalesce_hits": self.coalesce_hits,
            "cas": {"hits": self.cas_hits,
                    "misses": server.store.misses,
                    "stores": server.store.stores},
            "jobs": {"executed": self.jobs_executed,
                     "errors": self.job_errors,
                     "timeouts": self.timeouts,
                     "shed": self.shed},
            "queue": {"depth": len(server._inflight),
                      "limit": server.config.queue_limit},
            "workers": {"count": server.pool.size if server.pool else 0,
                        "restarts": (server.pool.restarts
                                     if server.pool else 0)},
            "latency_ms": self._histogram_row(latency),
            "stages": stages,
            "traces": {"buffered": len(server.traces),
                       "capacity": server.traces.capacity},
        }

    def render_prometheus(self, server: "Server") -> str:
        self.sync(server)
        return self.registry.render_prometheus()


@dataclass
class _Inflight:
    """One admitted job: the future every coalesced waiter awaits."""

    future: asyncio.Future
    #: Request id of the admitting waiter (names the shared job).
    request_id: str = ""
    #: ``time.perf_counter()`` at job creation — coalesced waiters
    #: place the job section on their own timelines from this.
    started: float = 0.0
    waiters: int = 1
    task: asyncio.Task | None = field(default=None, compare=False)
    #: Filled by the job task on completion: the shared trace section
    #: (server-side job spans + worker spans) every waiter merges.
    job_info: dict | None = field(default=None, compare=False)


class Server:
    """The asyncio service.  Use :meth:`start` / :meth:`close`, or
    :func:`serve_forever` from the CLI."""

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self.store = ContentStore(self.config.resolved_store_dir())
        self.metrics = ServeMetrics()
        self.traces = TraceBuffer(self.config.trace_capacity)
        self.log = AccessLogger(self.config.log_format)
        self.pool: WorkerPool | None = None
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._inflight: dict[str, _Inflight] = {}
        # CAS disk I/O runs on these threads, never on the event loop:
        # a slow disk or a full-store GC scan must not stall /healthz.
        self._io = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-serve-cas")

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        workers = self.config.workers or default_workers()
        self.pool = WorkerPool(workers, context=self.config.mp_context,
                               on_event=self.log.emit)
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self.log.emit("server_start", host=self.config.host,
                      port=self.port, workers=self.pool.size)

    async def close(self) -> None:
        self.log.emit("server_stop", uptime_s=round(
            self.metrics.uptime_s(), 3))
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for entry in list(self._inflight.values()):
            if entry.task is not None:
                entry.task.cancel()
        if self.pool is not None:
            self.pool.close()
        self._io.shutdown(wait=False)

    async def _store_io(self, fn, *args):
        """Run one blocking ContentStore call off the event loop."""
        return await asyncio.get_running_loop().run_in_executor(
            self._io, fn, *args)

    # -- connection handling ------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    self.metrics.observe(exc.status, 0.0)
                    writer.write(render_response(
                        exc.status, error_body(exc.status, exc.message),
                        close=True))
                    await writer.drain()
                    break
                if request is None:
                    break
                close = wants_close(request)
                status, body, headers = await self._route(request)
                writer.write(render_response(status, body,
                                             headers=headers,
                                             close=close))
                await writer.drain()
                if close:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # CancelledError here means the loop is tearing down
                # mid-cleanup; the handler is finished either way.
                pass

    async def _route(self, request: dict):
        """Dispatch one parsed request → (status, body, headers)."""
        method, path = request["method"], request["path"]
        request_id = new_request_id()
        start = time.perf_counter()
        headers: dict = {}
        log_ctx: dict = {}
        try:
            if path == "/healthz" and method == "GET":
                status, body = 200, {"status": "ok"}
            elif path == "/metrics" and method == "GET":
                if request["query"].get("format") == "prometheus":
                    status = 200
                    body = self.metrics.render_prometheus(self)
                else:
                    status, body = 200, self.metrics.snapshot(self)
            elif path.startswith("/v1/trace/") and method == "GET":
                status, body = self._get_trace(
                    path[len("/v1/trace/"):])
            elif path.startswith("/v1/store/") and method == "GET":
                status, body = await self._get_store(
                    path[len("/v1/store/"):])
            elif path == "/v1/jobs" and method == "POST":
                status, body, headers = await self._submit(
                    request, request_id, log_ctx)
            elif path in ("/healthz", "/metrics", "/v1/jobs") or \
                    path.startswith(("/v1/store/", "/v1/trace/")):
                status = 405
                body = error_body(405, f"{method} not allowed on {path}")
            else:
                status = 404
                body = error_body(404, f"no route for {path}")
        except Exception as exc:  # never drop a connection unanswered
            status = 500
            body = error_body(500, f"{type(exc).__name__}: {exc}")
        latency_ms = (time.perf_counter() - start) * 1e3
        self.metrics.observe(status, latency_ms, method=method,
                             route=route_label(path))
        if isinstance(body, dict) and body.get("status") == "ok":
            body["latency_ms"] = round(latency_ms, 3)
            body["request_id"] = request_id
        headers = dict(headers, **{"X-Request-Id": request_id})
        self.log.request(request_id=request_id, method=method,
                         path=path, status=status,
                         latency_ms=round(latency_ms, 3), **log_ctx)
        return status, body, headers

    def _get_trace(self, request_id: str):
        from ..telemetry.perfetto import build_request_trace

        record = self.traces.get(request_id)
        if record is None:
            return 404, error_body(
                404, f"no trace for request {request_id[:32]!r} "
                     f"(buffer holds {len(self.traces)})")
        return 200, build_request_trace(record)

    async def _get_store(self, key: str):
        # The key arrives verbatim from the URL (it may contain ``/``
        # and ``..``); only a well-formed content hash may ever reach
        # the filesystem, else ``GET /v1/store/../../etc/x`` would
        # read arbitrary .json files outside the store root.
        if not valid_key(key):
            return 404, error_body(
                404, f"not a content key: {key[:32]!r}")
        data = await self._store_io(self.store.get, key)
        if data is None:
            return 404, error_body(404, f"no stored result {key[:16]}…")
        return 200, data

    # -- job submission -----------------------------------------------

    def _finish_submit(self, request_id: str, spans: RequestSpans,
                       norm: dict, key: str | None, status: int,
                       outcome: str, log_ctx: dict,
                       entry: _Inflight | None = None) -> None:
        """Register the waiter's trace record and per-stage samples.

        Called once per submission, on every outcome.  Coalesced
        waiters each get their own record (distinct request ids) that
        embeds the *shared* job section, offset onto this waiter's
        timeline (clamped at 0 for waiters that joined after the job
        started)."""
        job = None
        if entry is not None and entry.job_info is not None:
            offset = max(0, int((entry.started - spans.epoch) * 1e6))
            job = dict(entry.job_info, start_offset_us=offset)
        self.metrics.observe_job(norm, status)
        self.metrics.observe_stages(spans.stage_ms())
        self.traces.put(make_record(
            request_id, key=key, kind=norm["kind"],
            workload=norm.get("workload", "-"),
            tier=norm.get("tier", "-"), status=status,
            outcome=outcome, server_spans=spans.records, job=job))
        log_ctx.update(outcome=outcome, key=key,
                       workload=norm.get("workload"),
                       tier=norm.get("tier"))

    async def _submit(self, request: dict, request_id: str,
                      log_ctx: dict):
        spans = RequestSpans()
        admit_start = spans.now_us()
        try:
            raw = json.loads(request["body"] or b"")
        except ValueError:
            return 400, error_body(400, "request body is not valid "
                                        "JSON"), {}
        if isinstance(raw, dict) and "include" in request["query"]:
            # ?include=telemetry,remarks overrides the body field.
            raw = dict(raw, include=request["query"]["include"])
        try:
            norm = normalize_request(raw, debug=self.config.debug)
        except RequestError as exc:
            return 400, error_body(400, str(exc)), {}
        spans.span("admission", admit_start,
                   {"kind": norm["kind"]})

        key = request_key(norm)
        storable = norm["kind"] != "sleep"
        if storable:
            probe_start = spans.now_us()
            hit = await self._store_io(self.store.get, key)
            spans.span("probe", probe_start, {"hit": hit is not None})
            if hit is not None:
                self.metrics.cas_hit()
                self._finish_submit(request_id, spans, norm, key,
                                    200, "cached", log_ctx)
                return 200, dict(hit, cached=True, coalesced=False,
                                 key=key), {}

        entry = self._inflight.get(key)
        if entry is not None:
            self.metrics.coalesce_hit()
            entry.waiters += 1
            coalesced = True
        else:
            if len(self._inflight) >= self.config.queue_limit:
                self.metrics.shed_one()
                self._finish_submit(request_id, spans, norm, key,
                                    429, "shed", log_ctx)
                return 429, error_body(
                    429, f"server saturated ({self.config.queue_limit} "
                         f"jobs in flight); retry shortly"), \
                    {"Retry-After": "1"}
            loop = asyncio.get_running_loop()
            entry = _Inflight(future=loop.create_future(),
                              request_id=request_id,
                              started=time.perf_counter())
            self._inflight[key] = entry
            # The job task is detached from every client connection:
            # a disconnecting waiter can never cancel the simulation
            # for the others (or for the CAS).
            entry.task = loop.create_task(
                self._run_job(key, norm, storable, entry))
            coalesced = False

        wait_start = spans.now_us()

        def finish(status: int, outcome: str) -> None:
            spans.span("job_wait", wait_start,
                       {"coalesced": coalesced,
                        "job_request_id": entry.request_id})
            self._finish_submit(request_id, spans, norm, key, status,
                                outcome, log_ctx, entry=entry)

        try:
            payload = await asyncio.shield(entry.future)
        except JobTimeout as exc:
            finish(504, "timeout")
            return 504, error_body(504, str(exc)), {}
        except WorkerCrash as exc:
            finish(500, "crash")
            return 500, error_body(500, str(exc)), {}
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            finish(500, "error")
            return 500, error_body(500, f"{type(exc).__name__}: "
                                        f"{exc}"), {}
        if payload.get("status") != "ok":
            code = int(payload.get("code", 500))
            finish(code, "error")
            return code, dict(payload, key=key), {}
        finish(200, "coalesced" if coalesced else "fresh")
        return 200, dict(payload, cached=False, coalesced=coalesced,
                         key=key), {}

    async def _run_job(self, key: str, norm: dict, storable: bool,
                       entry: _Inflight) -> None:
        # Whatever happens — timeout, crash, a store/GC failure, even
        # cancellation — the finally block always reclaims the inflight
        # slot and completes the future.  An entry that outlived its job
        # would poison the key (new requests attach to a dead future so
        # every waiter hangs) and permanently burn a queue_limit slot.
        future = entry.future
        payload: dict | None = None
        error: BaseException | None = None
        jspans = RequestSpans()  # job timeline: zero = job creation
        obs: dict = {"trace": True, "request_id": entry.request_id}
        worker_trace: dict | None = None
        queue_end = 0
        try:
            queue_start = jspans.now_us()
            try:
                payload = await self.pool.run(
                    norm, timeout=self.config.timeout_s, obs=obs)
            except JobTimeout as exc:
                self.metrics.timeout()
                error = exc
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                self.metrics.job_error()
                error = exc
            queue_end = queue_start + int(
                obs.get("queue_ms", 0.0) * 1e3)
            jspans.span("queue", queue_start, end_us=queue_end)
            jspans.span("worker", queue_end,
                        {"ok": error is None,
                         "request_id": entry.request_id})
            if payload is not None:
                # The worker's span records ride out-of-band and are
                # stripped here: neither the CAS nor any client may
                # see them (results stay byte-identical with tracing
                # on or off).
                worker_trace = payload.pop("_trace", None)
            if error is None and payload is not None:
                self.metrics.job_executed()
                if payload.get("status") != "ok":
                    self.metrics.job_error()
                elif storable:
                    store_start = jspans.now_us()
                    try:
                        await self._store_io(self.store.put, key,
                                             payload)
                        jspans.span("store", store_start, {"key": key})
                        await self._maybe_gc()
                    except asyncio.CancelledError:
                        raise
                    except Exception:
                        # A full disk (or an unserialisable payload
                        # field) degrades to cache-miss behaviour; it
                        # must never fail the finished simulation.
                        pass
        finally:
            job_info = {"request_id": entry.request_id,
                        "spans": jspans.records,
                        "worker_anchor_us": queue_end}
            if worker_trace:
                job_info["worker_spans"] = \
                    worker_trace.get("worker_spans", [])
                job_info["worker"] = worker_trace.get("worker")
                job_info["pid"] = worker_trace.get("pid")
            entry.job_info = job_info
            self.metrics.observe_stages(
                {**jspans.stage_ms(),
                 **worker_stage_ms(
                     (worker_trace or {}).get("worker_spans", []))})
            self._inflight.pop(key, None)
            if not future.done():
                if error is not None:
                    future.set_exception(error)
                elif payload is not None:
                    future.set_result(payload)
                else:  # the job task itself was cancelled (shutdown)
                    future.cancel()

    async def _maybe_gc(self) -> None:
        """Opportunistic CAS GC: every 32 stores, trim to budget."""
        budget = self.config.cas_max_bytes
        if budget and self.store.stores % 32 == 0:
            await self._store_io(self.store.gc, budget)
            self.log.emit("cas_gc", budget_bytes=budget)


async def serve_forever(config: ServeConfig) -> None:
    """CLI entry: start, announce, and run until signalled.

    SIGTERM/SIGINT trigger a graceful shutdown — crucially including
    :meth:`WorkerPool.close`: the forked workers inherit each other's
    pipe ends, so without an explicit stop a plain ``terminate()`` of
    the server process would orphan the whole pool.
    """
    import signal

    server = Server(config)
    await server.start()
    print(f"repro serve listening on {config.host}:{server.port} "
          f"(workers={server.pool.size}, "
          f"queue={config.queue_limit}, "
          f"timeout={config.timeout_s:g}s, "
          f"store={server.store.root})", flush=True)
    loop = asyncio.get_running_loop()
    stopping = asyncio.Event()
    hooked = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stopping.set)
            hooked.append(sig)
        except (NotImplementedError, RuntimeError):
            pass  # pragma: no cover - non-Unix event loops
    try:
        # start_server is already accepting connections; just wait.
        await stopping.wait()
    finally:
        for sig in hooked:
            loop.remove_signal_handler(sig)
        await server.close()
