"""The compile-and-simulate service: coalescing, CAS, back-pressure.

Request lifecycle (``POST /v1/jobs``):

1. **Parse + validate** — malformed JSON or schema violations answer
   400 without touching a worker.
2. **CAS probe** — the canonical request hashes to a content key
   (:func:`repro.serve.protocol.request_key`); a stored result answers
   immediately (``cached: true``).
3. **Coalesce** — if an identical request is already in flight, the
   handler awaits the *same* future (``coalesced: true``): N clients
   asking for one simulation cost one simulation.  The job is owned by
   a detached task, so a client that disconnects mid-wait never cancels
   the work the others are waiting on.
4. **Admit or shed** — at most ``queue_limit`` distinct jobs may be in
   flight; beyond that the server sheds load with 429 + ``Retry-After``
   instead of queueing unboundedly.
5. **Execute** — a pool worker runs the job under a per-request
   deadline; a blown deadline kills the worker (slot reclaimed) and
   answers 504.  Successful results are stored to the CAS before the
   waiters are woken.

``GET /metrics`` exports the counters (requests by status, coalesce and
CAS hits, queue depth, worker restarts, p50/p99 latency);
``GET /healthz`` is a liveness probe; ``GET /v1/store/<key>`` reads a
stored result back by key.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..envcfg import env_int
from .cas import ContentStore, valid_key
from .http import (ProtocolError, error_body, read_request,
                   render_response, wants_close)
from .pool import JobTimeout, WorkerCrash, WorkerPool
from .protocol import RequestError, normalize_request, request_key

#: Default store root for the service (distinct from the bench cache's
#: ``.sim-cache`` default; override with ``--cache-dir`` or the same
#: ``REPRO_SIM_CACHE_DIR`` variable the bench honours).
DEFAULT_STORE_DIR = ".serve-cas"


def default_workers() -> int:
    """Pool size: ``REPRO_SERVE_WORKERS`` (validated) or the CPUs."""
    workers = env_int("REPRO_SERVE_WORKERS", 0, minimum=0, maximum=256)
    if workers:
        return workers
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass
class ServeConfig:
    """Operator-facing service configuration (see docs/SERVING.md)."""

    host: str = "127.0.0.1"
    port: int = 0
    workers: int | None = None
    #: Max distinct jobs in flight before load shedding (429).
    queue_limit: int = 64
    #: Per-request execution deadline, seconds.
    timeout_s: float = 300.0
    cache_dir: str | None = None
    #: CAS byte budget; GC runs opportunistically after stores.
    cas_max_bytes: int | None = None
    #: Multiprocessing start method override for the pool.
    mp_context: str | None = None
    #: Accept debug 'sleep' jobs (tests only).
    debug: bool = False

    def resolved_store_dir(self) -> str:
        return (self.cache_dir
                or os.environ.get("REPRO_SIM_CACHE_DIR")
                or DEFAULT_STORE_DIR)


class Metrics:
    """Service counters plus a bounded latency reservoir."""

    def __init__(self, reservoir: int = 8192):
        self.started = time.time()
        self.requests_total = 0
        self.by_status: dict[str, int] = {}
        self.coalesce_hits = 0
        self.cas_hits = 0
        self.jobs_executed = 0
        self.job_errors = 0
        self.timeouts = 0
        self.shed = 0
        self._latencies: deque[float] = deque(maxlen=reservoir)

    def observe(self, status: int, latency_ms: float) -> None:
        self.requests_total += 1
        self.by_status[str(status)] = \
            self.by_status.get(str(status), 0) + 1
        self._latencies.append(latency_ms)

    def percentile(self, pct: float) -> float:
        if not self._latencies:
            return 0.0
        ordered = sorted(self._latencies)
        rank = max(0, min(len(ordered) - 1,
                          round(pct / 100.0 * len(ordered)) - 1))
        return ordered[rank]

    def snapshot(self, server: "Server") -> dict:
        return {
            "schema": "repro-serve-metrics-v1",
            "uptime_s": round(time.time() - self.started, 3),
            "requests": {"total": self.requests_total,
                         "by_status": dict(sorted(
                             self.by_status.items()))},
            "coalesce_hits": self.coalesce_hits,
            "cas": {"hits": self.cas_hits,
                    "misses": server.store.misses,
                    "stores": server.store.stores},
            "jobs": {"executed": self.jobs_executed,
                     "errors": self.job_errors,
                     "timeouts": self.timeouts,
                     "shed": self.shed},
            "queue": {"depth": len(server._inflight),
                      "limit": server.config.queue_limit},
            "workers": {"count": server.pool.size if server.pool else 0,
                        "restarts": (server.pool.restarts
                                     if server.pool else 0)},
            "latency_ms": {"count": len(self._latencies),
                           "p50": round(self.percentile(50), 3),
                           "p99": round(self.percentile(99), 3),
                           "max": round(max(self._latencies), 3)
                                  if self._latencies else 0.0},
        }


@dataclass
class _Inflight:
    """One admitted job: the future every coalesced waiter awaits."""

    future: asyncio.Future
    waiters: int = 1
    task: asyncio.Task | None = field(default=None, compare=False)


class Server:
    """The asyncio service.  Use :meth:`start` / :meth:`close`, or
    :func:`serve_forever` from the CLI."""

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self.store = ContentStore(self.config.resolved_store_dir())
        self.metrics = Metrics()
        self.pool: WorkerPool | None = None
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._inflight: dict[str, _Inflight] = {}
        # CAS disk I/O runs on these threads, never on the event loop:
        # a slow disk or a full-store GC scan must not stall /healthz.
        self._io = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-serve-cas")

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        workers = self.config.workers or default_workers()
        self.pool = WorkerPool(workers, context=self.config.mp_context)
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for entry in list(self._inflight.values()):
            if entry.task is not None:
                entry.task.cancel()
        if self.pool is not None:
            self.pool.close()
        self._io.shutdown(wait=False)

    async def _store_io(self, fn, *args):
        """Run one blocking ContentStore call off the event loop."""
        return await asyncio.get_running_loop().run_in_executor(
            self._io, fn, *args)

    # -- connection handling ------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    self.metrics.observe(exc.status, 0.0)
                    writer.write(render_response(
                        exc.status, error_body(exc.status, exc.message),
                        close=True))
                    await writer.drain()
                    break
                if request is None:
                    break
                close = wants_close(request)
                status, body, headers = await self._route(request)
                writer.write(render_response(status, body,
                                             headers=headers,
                                             close=close))
                await writer.drain()
                if close:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # CancelledError here means the loop is tearing down
                # mid-cleanup; the handler is finished either way.
                pass

    async def _route(self, request: dict):
        """Dispatch one parsed request → (status, body, headers)."""
        method, path = request["method"], request["path"]
        start = time.perf_counter()
        headers: dict = {}
        try:
            if path == "/healthz" and method == "GET":
                status, body = 200, {"status": "ok"}
            elif path == "/metrics" and method == "GET":
                status, body = 200, self.metrics.snapshot(self)
            elif path.startswith("/v1/store/") and method == "GET":
                status, body = await self._get_store(
                    path[len("/v1/store/"):])
            elif path == "/v1/jobs" and method == "POST":
                status, body, headers = await self._submit(request)
            elif path in ("/healthz", "/metrics", "/v1/jobs") or \
                    path.startswith("/v1/store/"):
                status = 405
                body = error_body(405, f"{method} not allowed on {path}")
            else:
                status = 404
                body = error_body(404, f"no route for {path}")
        except Exception as exc:  # never drop a connection unanswered
            status = 500
            body = error_body(500, f"{type(exc).__name__}: {exc}")
        latency_ms = (time.perf_counter() - start) * 1e3
        self.metrics.observe(status, latency_ms)
        if isinstance(body, dict) and body.get("status") == "ok":
            body["latency_ms"] = round(latency_ms, 3)
        return status, body, headers

    async def _get_store(self, key: str):
        # The key arrives verbatim from the URL (it may contain ``/``
        # and ``..``); only a well-formed content hash may ever reach
        # the filesystem, else ``GET /v1/store/../../etc/x`` would
        # read arbitrary .json files outside the store root.
        if not valid_key(key):
            return 404, error_body(
                404, f"not a content key: {key[:32]!r}")
        data = await self._store_io(self.store.get, key)
        if data is None:
            return 404, error_body(404, f"no stored result {key[:16]}…")
        return 200, data

    # -- job submission -----------------------------------------------

    async def _submit(self, request: dict):
        try:
            raw = json.loads(request["body"] or b"")
        except ValueError:
            return 400, error_body(400, "request body is not valid "
                                        "JSON"), {}
        if isinstance(raw, dict) and "include" in request["query"]:
            # ?include=telemetry,remarks overrides the body field.
            raw = dict(raw, include=request["query"]["include"])
        try:
            norm = normalize_request(raw, debug=self.config.debug)
        except RequestError as exc:
            return 400, error_body(400, str(exc)), {}

        key = request_key(norm)
        storable = norm["kind"] != "sleep"
        if storable:
            hit = await self._store_io(self.store.get, key)
            if hit is not None:
                self.metrics.cas_hits += 1
                return 200, dict(hit, cached=True, coalesced=False,
                                 key=key), {}

        entry = self._inflight.get(key)
        if entry is not None:
            self.metrics.coalesce_hits += 1
            entry.waiters += 1
            coalesced = True
        else:
            if len(self._inflight) >= self.config.queue_limit:
                self.metrics.shed += 1
                return 429, error_body(
                    429, f"server saturated ({self.config.queue_limit} "
                         f"jobs in flight); retry shortly"), \
                    {"Retry-After": "1"}
            loop = asyncio.get_running_loop()
            entry = _Inflight(future=loop.create_future())
            self._inflight[key] = entry
            # The job task is detached from every client connection:
            # a disconnecting waiter can never cancel the simulation
            # for the others (or for the CAS).
            entry.task = loop.create_task(
                self._run_job(key, norm, storable, entry.future))
            coalesced = False

        try:
            payload = await asyncio.shield(entry.future)
        except JobTimeout as exc:
            return 504, error_body(504, str(exc)), {}
        except WorkerCrash as exc:
            return 500, error_body(500, str(exc)), {}
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            return 500, error_body(500, f"{type(exc).__name__}: "
                                        f"{exc}"), {}
        if payload.get("status") != "ok":
            code = int(payload.get("code", 500))
            return code, dict(payload, key=key), {}
        return 200, dict(payload, cached=False, coalesced=coalesced,
                         key=key), {}

    async def _run_job(self, key: str, norm: dict, storable: bool,
                       future: asyncio.Future) -> None:
        # Whatever happens — timeout, crash, a store/GC failure, even
        # cancellation — the finally block always reclaims the inflight
        # slot and completes the future.  An entry that outlived its job
        # would poison the key (new requests attach to a dead future so
        # every waiter hangs) and permanently burn a queue_limit slot.
        payload: dict | None = None
        error: BaseException | None = None
        try:
            try:
                payload = await self.pool.run(
                    norm, timeout=self.config.timeout_s)
            except JobTimeout as exc:
                self.metrics.timeouts += 1
                error = exc
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                self.metrics.job_errors += 1
                error = exc
            else:
                self.metrics.jobs_executed += 1
                if payload.get("status") != "ok":
                    self.metrics.job_errors += 1
                elif storable:
                    try:
                        await self._store_io(self.store.put, key,
                                             payload)
                        await self._maybe_gc()
                    except asyncio.CancelledError:
                        raise
                    except Exception:
                        # A full disk (or an unserialisable payload
                        # field) degrades to cache-miss behaviour; it
                        # must never fail the finished simulation.
                        pass
        finally:
            self._inflight.pop(key, None)
            if not future.done():
                if error is not None:
                    future.set_exception(error)
                elif payload is not None:
                    future.set_result(payload)
                else:  # the job task itself was cancelled (shutdown)
                    future.cancel()

    async def _maybe_gc(self) -> None:
        """Opportunistic CAS GC: every 32 stores, trim to budget."""
        budget = self.config.cas_max_bytes
        if budget and self.store.stores % 32 == 0:
            await self._store_io(self.store.gc, budget)


async def serve_forever(config: ServeConfig) -> None:
    """CLI entry: start, announce, and run until signalled.

    SIGTERM/SIGINT trigger a graceful shutdown — crucially including
    :meth:`WorkerPool.close`: the forked workers inherit each other's
    pipe ends, so without an explicit stop a plain ``terminate()`` of
    the server process would orphan the whole pool.
    """
    import signal

    server = Server(config)
    await server.start()
    print(f"repro serve listening on {config.host}:{server.port} "
          f"(workers={server.pool.size}, "
          f"queue={config.queue_limit}, "
          f"timeout={config.timeout_s:g}s, "
          f"store={server.store.root})", flush=True)
    loop = asyncio.get_running_loop()
    stopping = asyncio.Event()
    hooked = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stopping.set)
            hooked.append(sig)
        except (NotImplementedError, RuntimeError):
            pass  # pragma: no cover - non-Unix event loops
    try:
        # start_server is already accepting connections; just wait.
        await stopping.wait()
    finally:
        for sig in hooked:
            loop.remove_signal_handler(sig)
        await server.close()
