"""Minimal HTTP/1.1 over asyncio streams — just enough for the service.

No external dependencies and no ``http.server``: requests are parsed
directly from the stream (request line, headers, ``Content-Length``
body) and responses rendered to bytes.  Supported deliberately small:

* methods GET / POST, HTTP/1.0 and 1.1;
* keep-alive by default (1.1 semantics), ``Connection: close`` honored;
* bodies require ``Content-Length`` (no chunked transfer);
* bounded request line, header count/size, and body size — a
  misbehaving client gets a 400/413, never an unbounded buffer.

Malformed traffic raises :class:`ProtocolError` carrying the HTTP
status to answer with; clean EOF between requests returns ``None``.
"""

from __future__ import annotations

import asyncio
import json
from urllib.parse import parse_qsl, urlsplit

#: Protocol bounds (per request).
MAX_REQUEST_LINE = 8192
MAX_HEADERS = 100
MAX_HEADER_LINE = 8192
MAX_BODY = 8 << 20

STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(Exception):
    """Malformed request; ``status`` is the HTTP answer to send."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


async def read_request(reader: asyncio.StreamReader) -> dict | None:
    """Parse one request from the stream.

    Returns ``{"method", "path", "query", "headers", "body"}`` or
    ``None`` on clean EOF before any request bytes.  ``query`` maps
    each parameter to its (first) value; header names are lowercased.
    """
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(400, "truncated request line") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError(400, "request line too long") from exc
    if len(line) > MAX_REQUEST_LINE:
        raise ProtocolError(400, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise ProtocolError(400, f"malformed request line: "
                                 f"{line[:80]!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise ProtocolError(400, f"unsupported version {version!r}")

    headers: dict[str, str] = {}
    for _ in range(MAX_HEADERS + 1):
        try:
            line = await reader.readuntil(b"\n")
        except (asyncio.IncompleteReadError,
                asyncio.LimitOverrunError) as exc:
            raise ProtocolError(400, "truncated headers") from exc
        if len(line) > MAX_HEADER_LINE:
            raise ProtocolError(400, "header line too long")
        text = line.decode("latin-1").strip()
        if not text:
            break
        if ":" not in text:
            raise ProtocolError(400, f"malformed header {text[:80]!r}")
        name, _, value = text.partition(":")
        headers[name.strip().lower()] = value.strip()
    else:
        raise ProtocolError(400, "too many headers")

    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError:
            raise ProtocolError(400, f"bad Content-Length "
                                     f"{raw_length!r}") from None
        if length < 0:
            raise ProtocolError(400, "negative Content-Length")
        if length > MAX_BODY:
            raise ProtocolError(413, "request body too large")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError(400, "truncated request body") from exc

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return {"method": method.upper(), "path": split.path,
            "query": query, "headers": headers, "body": body}


def render_response(status: int, body, *, headers: dict | None = None,
                    close: bool = False) -> bytes:
    """Render a full HTTP/1.1 response.

    ``body`` may be a dict (serialised as JSON) or raw bytes.
    """
    if isinstance(body, (dict, list)):
        payload = (json.dumps(body, indent=1) + "\n").encode()
        content_type = "application/json"
    else:
        payload = body if isinstance(body, bytes) else str(body).encode()
        content_type = "text/plain; charset=utf-8"
    lines = [f"HTTP/1.1 {status} {STATUS_TEXT.get(status, 'Unknown')}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(payload)}",
             f"Connection: {'close' if close else 'keep-alive'}"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + payload


def error_body(status: int, message: str) -> dict:
    """Uniform JSON error payload."""
    return {"schema": "repro-serve-error-v1", "status": "error",
            "code": status, "error": message}


def wants_close(request: dict) -> bool:
    """Whether the client asked to drop the connection after this
    exchange."""
    return request["headers"].get("connection", "").lower() == "close"
