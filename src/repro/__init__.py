"""repro — a reproduction of *Software Prefetching for Indirect Memory
Accesses* (Ainsworth & Jones, CGO 2017).

The package provides:

* :mod:`repro.ir` — a small SSA intermediate representation;
* :mod:`repro.analysis` — loops, dominators, induction variables, aliasing;
* :mod:`repro.passes` — the automatic indirect-prefetch pass (the paper's
  contribution), an ICC-like stride-indirect baseline, and generic
  cleanups;
* :mod:`repro.frontend` — a C-like language that lowers to the IR;
* :mod:`repro.machine` — an execution-driven timing simulator with cache,
  TLB, DRAM, and hardware-prefetcher models, configured as the paper's
  four systems (Haswell, Xeon Phi, Cortex-A57, Cortex-A53);
* :mod:`repro.workloads` — the paper's seven benchmarks expressed in IR;
* :mod:`repro.bench` — the experiment harness that regenerates every
  table and figure of the evaluation.
"""

__version__ = "1.0.0"

__all__ = ["ir", "analysis", "passes", "frontend", "machine", "workloads",
           "bench"]
