"""Hash Join (HJ-2 / HJ-8) — database probe kernel (§5.1).

Buckets and overflow nodes are padded 4-word records
``[key0, key1, next, pad]`` (32 bytes, so records never straddle cache
lines);
``next`` is an index into the node pool (0 = end of chain, slot 0 is a
zeroed sentinel).  With two elements per bucket (HJ-2) both keys are
inline and no chain is walked; with eight (HJ-8) each probe walks the
bucket plus three chained nodes — four dependent irregular accesses.

The probe loop hashes each key of the outer relation and counts matches
in the bucket's chain, storing the per-probe count.  The hash is a
multiplicative one, so the automatic pass must carry arithmetic (not just
a direct index) into the prefetch code — the pattern the ICC-like
baseline cannot match.

The chain walk is a data-dependent ``while`` loop: the automatic pass
correctly refuses to prefetch through its non-induction phi, while the
*manual* variant exploits the runtime knowledge that every HJ-8 bucket
has exactly three chained nodes, staggering prefetches across the chain
(``stagger_depth`` reproduces Fig. 7).
"""

from __future__ import annotations

import numpy as np

from ..ir.builder import IRBuilder
from ..ir.module import Module
from ..ir.types import INT64, VOID, pointer
from ..ir.values import Constant, Value
from ..ir.verifier import verify_module
from ..machine.memory import Memory
from .base import PreparedRun, Workload
from .looputil import counted_loop

#: Words per bucket/node record (padded to 32 bytes).
REC = 4
#: Odd multiplier: multiplicative hashing, invertible mod 2^bits.
HASH_MULT = 0x9E3779B97F4A7C15
#: Slack elements on the probe-key array for unclamped manual look-ahead.
KEY_SLACK = 2 * 256 + 8


class HashJoin(Workload):
    """Hash-join probe with a configurable bucket occupancy.

    :param elements_per_bucket: 2 (HJ-2, all inline) or 8 (HJ-8, bucket
        plus three chained nodes); other even values in [2, 8] work too.
    :param num_buckets: power-of-two bucket count.
    :param num_probes: probes of the outer relation.
    """

    def __init__(self, elements_per_bucket: int = 2,
                 num_buckets: int = 1 << 19, num_probes: int = 20_000,
                 seed: int = 45):
        super().__init__(seed)
        if num_buckets & (num_buckets - 1):
            raise ValueError("num_buckets must be a power of two")
        if not 2 <= elements_per_bucket <= 8 or elements_per_bucket % 2:
            raise ValueError("elements_per_bucket must be even, in [2, 8]")
        self.epb = elements_per_bucket
        self.num_buckets = num_buckets
        self.num_probes = num_probes
        self.nodes_per_bucket = (elements_per_bucket - 2) // 2
        # Slot 0 of the pool is the zeroed end-of-chain sentinel.
        self.pool_size = 1 + self.num_buckets * self.nodes_per_bucket
        self.name = f"HJ-{elements_per_bucket}"

    # -- IR ---------------------------------------------------------------

    def _new_module(self) -> tuple[Module, IRBuilder]:
        module = Module(self.name.lower())
        func = module.create_function(
            "kernel", VOID,
            [("keys", pointer(INT64)), ("table", pointer(INT64)),
             ("nodes", pointer(INT64)), ("out", pointer(INT64)),
             ("n", INT64)])
        sizes = {"keys": self.num_probes, "table": self.num_buckets * REC,
                 "nodes": self.pool_size * REC, "out": self.num_probes}
        for name, size in sizes.items():
            arg = func.arg(name)
            arg.array_size = Constant(INT64, size)
            arg.noalias = True
        builder = IRBuilder()
        builder.set_insert_point(func.add_block("entry"))
        return module, builder

    def _emit_hash(self, b: IRBuilder, key: Value, tag: str) -> Value:
        """Bucket index: ``(key * HASH_MULT) & (num_buckets - 1)``."""
        mixed = b.mul(key, b.const(HASH_MULT), f"{tag}.mul")
        return b.and_(mixed, b.const(self.num_buckets - 1), f"{tag}.h")

    def _emit_match_count(self, b: IRBuilder, key: Value, k0: Value,
                          k1: Value, tag: str) -> Value:
        m0 = b.select(b.cmp("eq", k0, key, f"{tag}.e0"), b.const(1),
                      b.const(0), f"{tag}.m0")
        m1 = b.select(b.cmp("eq", k1, key, f"{tag}.e1"), b.const(1),
                      b.const(0), f"{tag}.m1")
        return b.add(m0, m1, f"{tag}.cnt")

    def _build(self, manual_lookahead: int | None,
               stagger_depth: int,
               uniform_offsets: bool = False) -> Module:
        module, b = self._new_module()
        func = module.function("kernel")
        keys, table = func.arg("keys"), func.arg("table")
        nodes, out = func.arg("nodes"), func.arg("out")
        n = func.arg("n")

        def probe_body(b: IRBuilder, i) -> None:
            if manual_lookahead is not None:
                self._emit_manual_prefetches(
                    b, keys, table, nodes, i, manual_lookahead,
                    stagger_depth, uniform_offsets)
            key = b.load(b.gep(keys, i, "kp"), "k")
            h = self._emit_hash(b, key, "h")
            bidx = b.mul(h, b.const(REC), "bidx")
            k0 = b.load(b.gep(table, bidx, "b0p"), "b0")
            k1 = b.load(b.gep(table, b.add(bidx, b.const(1), "bidx1"),
                              "b1p"), "b1")
            cnt0 = self._emit_match_count(b, key, k0, k1, "bucket")
            nidx0 = b.load(b.gep(table, b.add(bidx, b.const(2), "bidx2"),
                                 "nxp"), "nidx0")

            probe_blk = b.block
            walk = func.add_block(f"walk{i.name}")
            done = func.add_block(f"probe.done{i.name}")
            has_chain = b.cmp("ne", nidx0, b.const(0), "haschain")
            b.br(has_chain, walk, done)

            b.set_insert_point(walk)
            nidx = b.phi(INT64, "nidx")
            wcnt = b.phi(INT64, "wcnt")
            base = b.mul(nidx, b.const(REC), "nbase")
            nk0 = b.load(b.gep(nodes, base, "n0p"), "nk0")
            nk1 = b.load(b.gep(nodes, b.add(base, b.const(1), "nb1"),
                               "n1p"), "nk1")
            add = self._emit_match_count(b, key, nk0, nk1, "node")
            wcnt_next = b.add(wcnt, add, "wcnt.next")
            nn = b.load(b.gep(nodes, b.add(base, b.const(2), "nb2"),
                              "nnp"), "nn")
            more = b.cmp("ne", nn, b.const(0), "more")
            b.br(more, walk, done)
            nidx.add_incoming(nidx0, probe_blk)
            nidx.add_incoming(nn, walk)
            wcnt.add_incoming(cnt0, probe_blk)
            wcnt.add_incoming(wcnt_next, walk)

            b.set_insert_point(done)
            total = b.phi(INT64, "total")
            total.add_incoming(cnt0, probe_blk)
            total.add_incoming(wcnt_next, walk)
            b.store(total, b.gep(out, i, "op"))

        counted_loop(b, func, 0, n, probe_body, "probe")
        b.ret()
        verify_module(module)
        return module

    def _emit_manual_prefetches(self, b: IRBuilder, keys, table, nodes,
                                i, lookahead: int, depth: int,
                                uniform_offsets: bool = False) -> None:
        """Staggered manual prefetches (HJ-8 description in §5.1).

        The chain has up to five loads (probe key, bucket, three nodes);
        the prefetch for chain position ``l`` runs ``c*(t-l)/t``
        iterations ahead, re-walking the chain prefix with real loads
        that hit the cache thanks to the earlier, farther prefetches.
        ``depth`` counts the dependent (non-stride) loads prefetched —
        the Fig. 7 x-axis.
        """
        chain = 1 + self.nodes_per_bucket  # bucket + chained nodes
        depth = min(depth, chain)
        t = 1 + chain  # plus the probe-key stride load
        if uniform_offsets:
            # Ablation: every prefetch at the same distance — the
            # re-walked intermediate loads then race their own fills.
            offsets = [lookahead] * t
        else:
            offsets = [max(1, lookahead * (t - l) // t) for l in range(t)]

        # Stride prefetch of the probe-key array.
        ahead0 = b.add(i, b.const(offsets[0]), "pfk.i")
        b.prefetch(b.gep(keys, ahead0, "pfk.p"))

        for level in range(1, depth + 1):
            off = offsets[level]
            ahead = b.add(i, b.const(off), f"pf{level}.i")
            key = b.load(b.gep(keys, ahead, f"pf{level}.kp"),
                         f"pf{level}.k")
            h = self._emit_hash(b, key, f"pf{level}")
            bidx = b.mul(h, b.const(REC), f"pf{level}.bidx")
            if level == 1:
                b.prefetch(b.gep(table, bidx, f"pf{level}.p"))
                continue
            # Re-walk level-2 chain links with real (cached) loads.
            cursor = b.load(
                b.gep(table, b.add(bidx, b.const(2), f"pf{level}.b2"),
                      f"pf{level}.nxp"), f"pf{level}.n0")
            for hop in range(level - 2):
                nbase = b.mul(cursor, b.const(REC), f"pf{level}.h{hop}b")
                cursor = b.load(
                    b.gep(nodes, b.add(nbase, b.const(2),
                                       f"pf{level}.h{hop}o"),
                          f"pf{level}.h{hop}p"), f"pf{level}.h{hop}n")
            nbase = b.mul(cursor, b.const(REC), f"pf{level}.nb")
            b.prefetch(b.gep(nodes, nbase, f"pf{level}.p"))

    def build(self) -> Module:
        return self._build(None, 0)

    def build_manual(self, lookahead: int = 64,
                     stagger_depth: int | None = None,
                     uniform_offsets: bool = False,
                     **_unused) -> Module:
        if stagger_depth is None:
            # Fig. 7: three of HJ-8's four dependent loads is optimal.
            stagger_depth = 1 if self.nodes_per_bucket == 0 else 3
        return self._build(lookahead, stagger_depth, uniform_offsets)

    # -- data -----------------------------------------------------------------

    def prepare(self, memory: Memory) -> PreparedRun:
        rng = self.rng
        nb, per = self.num_buckets, self.epb
        bits = nb.bit_length() - 1
        # Multiplicative hashing on the low bits is invertible: pick key
        # low bits so each bucket receives exactly ``per`` keys.
        inv = pow(HASH_MULT, -1, nb)
        low = (np.arange(nb, dtype=np.uint64) * np.uint64(inv)) % nb
        stored = np.empty((nb, per), dtype=np.uint64)
        high = rng.integers(1, 1 << 40, size=(nb, per)).astype(np.uint64)
        stored[:, :] = (high << np.uint64(bits)) | low[:, None]

        table = memory.allocate(8, nb * REC, "table")
        nodes = memory.allocate(8, self.pool_size * REC, "nodes")
        table_np = np.zeros(nb * REC, dtype=np.uint64)
        nodes_np = np.zeros(self.pool_size * REC, dtype=np.uint64)
        table_np[0::REC] = stored[:, 0]
        table_np[1::REC] = stored[:, 1]
        if self.nodes_per_bucket:
            # Scatter chain nodes across the pool with a permutation so
            # pointer-chasing is genuinely irregular.
            perm = rng.permutation(self.pool_size - 1) + 1
            perm = perm.reshape(nb, self.nodes_per_bucket)
            table_np[2::REC] = perm[:, 0]
            for hop in range(self.nodes_per_bucket):
                slots = perm[:, hop]
                nodes_np[slots * REC] = stored[:, 2 + 2 * hop]
                nodes_np[slots * REC + 1] = stored[:, 3 + 2 * hop]
                if hop + 1 < self.nodes_per_bucket:
                    nodes_np[slots * REC + 2] = perm[:, hop + 1]
        table.fill(table_np.astype(np.int64))
        nodes.fill(nodes_np.astype(np.int64))

        # Probe keys: hit a random stored element of a random bucket.
        probe_bucket = rng.integers(0, nb, self.num_probes)
        probe_slot = rng.integers(0, per, self.num_probes)
        probe = stored[probe_bucket, probe_slot]
        keys = memory.allocate(8, self.num_probes + KEY_SLACK, "keys")
        keys.fill(np.concatenate(
            [probe.astype(np.int64),
             np.zeros(KEY_SLACK, dtype=np.int64)]))
        out = memory.allocate(8, self.num_probes, "out")

        expected = (stored[probe_bucket, :] ==
                    probe[:, None]).sum(axis=1).astype(np.int64)

        def validate() -> None:
            got = out.as_numpy()
            if not np.array_equal(got, expected):
                raise AssertionError(f"{self.name} match counts are wrong")

        return PreparedRun(
            args=[keys.base, table.base, nodes.base, out.base,
                  self.num_probes],
            validate=validate,
            iterations=self.num_probes)


def hj2(num_probes: int = 14_000, seed: int = 45, **kw) -> HashJoin:
    """HJ-2: two elements per bucket, no chain walk."""
    return HashJoin(2, num_probes=num_probes, seed=seed, **kw)


def hj8(num_probes: int = 8_000, seed: int = 46,
        num_buckets: int = 1 << 17, **kw) -> HashJoin:
    """HJ-8: eight elements per bucket — bucket plus three chained
    nodes per probe."""
    return HashJoin(8, num_probes=num_probes, num_buckets=num_buckets,
                    seed=seed, **kw)
