"""Conjugate Gradient (CG) — NAS Parallel Benchmarks kernel (§5.1).

The timed kernel is the CSR sparse matrix-vector product at the heart of
CG's eigenvalue estimation::

    for (i = 0; i < nrows; i++) {
        sum = 0.0;
        for (k = rowstr[i]; k < rowstr[i+1]; k++)
            sum += a[k] * x[colidx[k]];
        y[i] = sum;
    }

The irregular access is ``x[colidx[k]]``: ``colidx`` streams sequentially
(hardware-prefetchable) while ``x`` is hit data-dependently.  The dense
vector is deliberately smaller than the other benchmarks' targets — the
paper notes CG's irregular dataset "is more likely to fit in the L2
cache, and presents less of a challenge for the TLB system".

The inner loop exercises the pass on non-canonical induction variables
(``k`` starts at ``rowstr[i]``) and on float accumulator phis that must
*not* end up in the prefetch chain.
"""

from __future__ import annotations

import numpy as np

from ..ir.builder import IRBuilder
from ..ir.module import Module
from ..ir.types import FLOAT64, INT64, VOID, pointer
from ..ir.values import Constant
from ..ir.verifier import verify_module
from ..machine.memory import Memory
from .base import PreparedRun, Workload


class ConjugateGradient(Workload):
    """CG sparse matrix-vector multiply.

    :param nrows: matrix rows.
    :param row_nnz: nonzeros per row (uniform, like NAS CG's generator's
        target density).
    :param x_size: dense-vector length; ~1 MiB by default so it thrashes
        the smaller L2s but lives comfortably in Haswell's L3.
    :param repeats: times the mat-vec runs inside the timed kernel.  CG
        iterates, so after the first pass the dense vector is
        cache-warm on machines whose LLC holds it — exactly the regime
        the paper measures.
    """

    name = "CG"

    def __init__(self, nrows: int = 1_500, row_nnz: int = 14,
                 x_size: int = 1 << 17, repeats: int = 3, seed: int = 43):
        super().__init__(seed)
        self.nrows = nrows
        self.row_nnz = row_nnz
        self.x_size = x_size
        self.repeats = repeats
        self.nnz = nrows * row_nnz

    def _new_module(self) -> tuple[Module, IRBuilder]:
        module = Module("cg")
        func = module.create_function(
            "kernel", VOID,
            [("rowstr", pointer(INT64)), ("colidx", pointer(INT64)),
             ("a", pointer(FLOAT64)), ("x", pointer(FLOAT64)),
             ("y", pointer(FLOAT64)), ("nrows", INT64)])
        sizes = {"rowstr": self.nrows + 1, "colidx": self.nnz,
                 "a": self.nnz, "x": self.x_size, "y": self.nrows}
        for name, size in sizes.items():
            arg = func.arg(name)
            arg.array_size = Constant(INT64, size)
            arg.noalias = True
        builder = IRBuilder()
        builder.set_insert_point(func.add_block("entry"))
        return module, builder

    def _build(self, manual_lookahead: int | None) -> Module:
        module, b = self._new_module()
        func = module.function("kernel")
        rowstr, colidx = func.arg("rowstr"), func.arg("colidx")
        a, x, y = func.arg("a"), func.arg("x"), func.arg("y")
        nrows = func.arg("nrows")

        # Outer repeat loop: CG re-runs the mat-vec every iteration.
        rep_body = func.add_block("rep.body")
        rep_done = func.add_block("rep.done")
        rep_guard = b.cmp("slt", b.const(0), b.const(self.repeats),
                          "rep.guard")
        b.br(rep_guard, rep_body, rep_done)
        kernel_entry = b.block
        b.set_insert_point(rep_body)
        rep = b.phi(INT64, "rep")

        rows = func.add_block("rows")
        rows_done = func.add_block("rows.done")
        inner = func.add_block("inner")
        inner_done = func.add_block("inner.done")

        guard = b.cmp("slt", b.const(0), nrows, "rows.guard")
        b.br(guard, rows, rows_done)
        entry = b.block

        # Row loop.
        b.set_insert_point(rows)
        i = b.phi(INT64, "i")
        lo = b.load(b.gep(rowstr, i, "lop"), "lo")
        i1 = b.add(i, b.const(1), "i1")
        hi = b.load(b.gep(rowstr, i1, "hip"), "hi")
        inner_guard = b.cmp("slt", lo, hi, "inner.guard")
        b.br(inner_guard, inner, inner_done)

        # Inner nonzero loop with a float accumulator phi.
        b.set_insert_point(inner)
        k = b.phi(INT64, "k")
        acc = b.phi(FLOAT64, "acc")
        if manual_lookahead is not None:
            # Manual scheme: staggered prefetches of the column stream
            # and the dense vector, with the paper's c and c/2 spacing.
            k_far = b.add(k, b.const(manual_lookahead), "k.pf2")
            b.prefetch(b.gep(colidx, k_far, "cp.pf2"))
            k_near = b.add(k, b.const(max(1, manual_lookahead // 2)),
                           "k.pf")
            col_ahead = b.load(b.gep(colidx, k_near, "cp.pf"), "c.pf")
            b.prefetch(b.gep(x, col_ahead, "xp.pf"))
            b.prefetch(b.gep(a, k_near, "ap.pf"))
        col = b.load(b.gep(colidx, k, "cp"), "c")
        av = b.load(b.gep(a, k, "ap"), "av")
        xv = b.load(b.gep(x, col, "xp"), "xv")
        prod = b.fmul(av, xv, "prod")
        acc_next = b.fadd(acc, prod, "acc.next")
        k_next = b.add(k, b.const(1), "k.next")
        inner_cond = b.cmp("slt", k_next, hi, "inner.cond")
        b.br(inner_cond, inner, inner_done)
        k.add_incoming(lo, rows)
        k.add_incoming(k_next, inner)
        acc.add_incoming(b.const(0.0, FLOAT64), rows)
        acc.add_incoming(acc_next, inner)

        # Row epilogue: store the dot product.
        b.set_insert_point(inner_done)
        total = b.phi(FLOAT64, "total")
        total.add_incoming(b.const(0.0, FLOAT64), rows)
        total.add_incoming(acc_next, inner)
        b.store(total, b.gep(y, i, "yp"))
        i_next = b.add(i, b.const(1), "i.next")
        rows_cond = b.cmp("slt", i_next, nrows, "rows.cond")
        b.br(rows_cond, rows, rows_done)
        i.add_incoming(b.const(0), entry)
        i.add_incoming(i_next, inner_done)

        b.set_insert_point(rows_done)
        rep_next = b.add(rep, b.const(1), "rep.next")
        rep_cond = b.cmp("slt", rep_next, b.const(self.repeats),
                         "rep.cond")
        b.br(rep_cond, rep_body, rep_done)
        rep.add_incoming(b.const(0), kernel_entry)
        rep.add_incoming(rep_next, rows_done)

        b.set_insert_point(rep_done)
        b.ret()
        verify_module(module)
        return module

    def build(self) -> Module:
        return self._build(None)

    def build_manual(self, lookahead: int = 64, **_unused) -> Module:
        return self._build(lookahead)

    def prepare(self, memory: Memory) -> PreparedRun:
        # Column slack keeps the manual variant's unclamped look-ahead
        # loads in bounds (allocation slack, as in the C original).
        slack = 2 * 256 + 8
        cols = self.rng.integers(0, self.x_size, self.nnz)
        values = self.rng.random(self.nnz)
        xvals = self.rng.random(self.x_size)
        rowstr_np = np.arange(self.nrows + 1, dtype=np.int64) * self.row_nnz

        rowstr = memory.allocate(8, self.nrows + 1, "rowstr")
        rowstr.fill(rowstr_np)
        colidx = memory.allocate(8, self.nnz + slack, "colidx")
        colidx.fill(np.concatenate(
            [cols, np.zeros(slack, dtype=np.int64)]))
        a = memory.allocate(8, self.nnz + slack, "a", is_float=True)
        a.fill(np.concatenate([values, np.zeros(slack)]))
        x = memory.allocate(8, self.x_size, "x", is_float=True)
        x.fill(xvals)
        y = memory.allocate(8, self.nrows, "y", is_float=True)

        gathered = values * xvals[cols]
        expected = gathered.reshape(self.nrows, self.row_nnz).sum(axis=1)

        def validate() -> None:
            got = y.as_numpy()
            if not np.allclose(got, expected, rtol=1e-9, atol=1e-12):
                raise AssertionError("CG dot products are wrong")

        return PreparedRun(
            args=[rowstr.base, colidx.base, a.base, x.base, y.base,
                  self.nrows],
            validate=validate,
            iterations=self.nnz * self.repeats)
