"""Integer Sort (IS) — NAS Parallel Benchmarks kernel (§5.1).

The timed kernel is the bucket-counting loop::

    for (i = 0; i < n; i++)
        key_buff1[key_buff2[i]]++;

a pure stride-indirect: sequential walk of ``key_buff2`` with a
data-dependent increment into ``key_buff1``.  The manual variant inserts
the two staggered prefetches of the paper's code listing 1 — the
"intuitive" indirect prefetch *and* the stride prefetch of the key array
itself — with configurable offsets (Fig. 2 sweeps them).

Arrays carry compile-time size annotations, mirroring the NAS reference
implementation's statically sized global arrays (this is what lets the
ICC-like baseline pass prove safety on IS).
"""

from __future__ import annotations

import numpy as np

from ..ir.builder import IRBuilder
from ..ir.module import Module
from ..ir.types import INT64, VOID, pointer
from ..ir.values import Constant
from ..ir.verifier import verify_module
from ..machine.memory import Memory
from .base import PreparedRun, Workload
from .looputil import counted_loop

#: Slack elements appended to the key array so *manual* (unclamped)
#: look-ahead loads stay in bounds, as C programs rely on allocation
#: slack.  The compiler passes never use the slack: their size
#: annotations cover only the first ``n`` elements.
KEY_SLACK = 2 * 256 + 8


class IntegerSort(Workload):
    """NAS IS bucket counting.

    :param num_keys: keys processed (NAS class B uses 2^25; scaled down
        to keep simulation time reasonable — the access pattern, not the
        trip count, is what matters).
    :param num_buckets: bucket-array length; sized so the bucket array
        exceeds every simulated last-level cache (16 MiB by default).
    """

    name = "IS"

    def __init__(self, num_keys: int = 20_000,
                 num_buckets: int = 1 << 21, seed: int = 42):
        super().__init__(seed)
        self.num_keys = num_keys
        self.num_buckets = num_buckets

    # -- IR ----------------------------------------------------------------

    def _new_module(self) -> tuple[Module, IRBuilder]:
        module = Module("is")
        func = module.create_function(
            "kernel", VOID,
            [("keys", pointer(INT64)), ("buckets", pointer(INT64)),
             ("n", INT64)])
        keys = func.arg("keys")
        keys.array_size = Constant(INT64, self.num_keys)
        keys.noalias = True
        buckets = func.arg("buckets")
        buckets.array_size = Constant(INT64, self.num_buckets)
        buckets.noalias = True
        builder = IRBuilder()
        builder.set_insert_point(func.add_block("entry"))
        return module, builder

    def build(self) -> Module:
        module, b = self._new_module()
        func = module.function("kernel")
        keys, n = func.arg("keys"), func.arg("n")
        buckets = func.arg("buckets")

        def body(b: IRBuilder, i) -> None:
            key = b.load(b.gep(keys, i, "p"), "k")
            slot = b.gep(buckets, key, "bp")
            b.store(b.add(b.load(slot, "bv"), b.const(1), "inc"), slot)

        counted_loop(b, func, 0, n, body, "count")
        b.ret()
        verify_module(module)
        return module

    def build_manual(self, lookahead: int = 64, *,
                     include_stride: bool = True,
                     include_indirect: bool = True) -> Module:
        """Code listing 1: staggered manual prefetches.

        :param include_stride: emit ``SWPF(key_buff2[i + c])`` (line 6 of
            the listing; dropping it gives Fig. 2's "intuitive" scheme).
        :param include_indirect: emit
            ``SWPF(key_buff1[key_buff2[i + c/2]])`` (line 4).
        """
        module, b = self._new_module()
        func = module.function("kernel")
        keys, n = func.arg("keys"), func.arg("n")
        buckets = func.arg("buckets")
        indirect_off = max(1, lookahead // 2)

        def body(b: IRBuilder, i) -> None:
            if include_indirect:
                # SWPF(key_buff1[key_buff2[i + offset]]); the look-ahead
                # read relies on allocation slack, as the paper's manual
                # code does.
                ahead = b.add(i, b.const(indirect_off), "i.pf")
                future_key = b.load(b.gep(keys, ahead, "p.pf"), "k.pf")
                b.prefetch(b.gep(buckets, future_key, "bp.pf"))
            if include_stride:
                # SWPF(key_buff2[i + offset*2]);
                ahead2 = b.add(i, b.const(lookahead), "i.pf2")
                b.prefetch(b.gep(keys, ahead2, "p.pf2"))
            key = b.load(b.gep(keys, i, "p"), "k")
            slot = b.gep(buckets, key, "bp")
            b.store(b.add(b.load(slot, "bv"), b.const(1), "inc"), slot)

        counted_loop(b, func, 0, n, body, "count")
        b.ret()
        verify_module(module)
        return module

    # -- data ----------------------------------------------------------------

    def prepare(self, memory: Memory) -> PreparedRun:
        keys_values = self.rng.integers(
            0, self.num_buckets, self.num_keys)
        keys = memory.allocate(8, self.num_keys + KEY_SLACK, "keys")
        keys.fill(np.concatenate(
            [keys_values, np.zeros(KEY_SLACK, dtype=np.int64)]))
        buckets = memory.allocate(8, self.num_buckets, "buckets")
        expected = np.bincount(keys_values, minlength=self.num_buckets)

        def validate() -> None:
            got = buckets.as_numpy()
            if not np.array_equal(got, expected):
                raise AssertionError("IS bucket counts are wrong")

        return PreparedRun(
            args=[keys.base, buckets.base, self.num_keys],
            validate=validate,
            iterations=self.num_keys)
