"""Workload protocol shared by all seven benchmarks.

A workload knows how to

* build its kernel as IR (``build()``), including a hand-optimised
  variant with the paper's best manual prefetches (``build_manual()``);
* allocate and initialise its inputs in a :class:`Memory`
  (``prepare()``), mirroring the paper's untimed "data generation and
  initialisation";
* validate the kernel's architectural results against a host-side
  reference (``PreparedRun.validate``).

Variants (plain / auto / manual / icc) are materialised by
:func:`build_variant`, which re-builds the module fresh and applies the
corresponding pass, so pass-inserted code never leaks between variants.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..ir.module import Module
from ..machine.memory import Memory
from ..passes.prefetch import IndirectPrefetchPass, PrefetchOptions
from ..passes.stride_indirect_baseline import StrideIndirectBaselinePass

#: The pass variants every experiment can request.
VARIANTS = ("plain", "auto", "manual", "icc")


@dataclass
class PreparedRun:
    """Inputs of one run: entry arguments plus a result validator."""

    args: list
    validate: Callable[[], None]
    iterations: int = 0
    metadata: dict = field(default_factory=dict)


class Workload(ABC):
    """Base class for the paper's benchmarks.

    :param seed: RNG seed for input generation (runs are deterministic).
    """

    #: Short name used in reports ("IS", "CG", ...).
    name: str = "?"
    #: Entry function interpreted by the machine.
    entry: str = "kernel"

    def __init__(self, seed: int = 42):
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    @abstractmethod
    def build(self) -> Module:
        """Build the plain (no software prefetch) kernel module."""

    @abstractmethod
    def build_manual(self, lookahead: int = 64, **knobs) -> Module:
        """Build the kernel with the paper's best *manual* prefetches.

        Manual variants may exploit runtime knowledge the compiler pass
        cannot see (e.g. HJ-8's fixed bucket-chain length, RA's repeated
        128-iteration inner loop).
        """

    @abstractmethod
    def prepare(self, memory: Memory) -> PreparedRun:
        """Allocate and initialise inputs; returns args + validator."""

    # -- variant construction (shared) ---------------------------------------

    def build_variant(self, variant: str, lookahead: int = 64,
                      options: PrefetchOptions | None = None,
                      **manual_knobs) -> Module:
        """Materialise one of ``plain``/``auto``/``manual``/``icc``."""
        if variant == "plain":
            return self.build()
        if variant == "manual":
            return self.build_manual(lookahead=lookahead, **manual_knobs)
        if variant == "auto":
            module = self.build()
            opts = options or PrefetchOptions(lookahead=lookahead)
            IndirectPrefetchPass(opts).run(module)
            return module
        if variant == "icc":
            module = self.build()
            StrideIndirectBaselinePass(lookahead=lookahead).run(module)
            return module
        raise ValueError(
            f"unknown variant {variant!r}; choose from {VARIANTS}")
