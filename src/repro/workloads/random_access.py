"""HPCC RandomAccess (RA) — §5.1.

The benchmark generates blocks of 128 pseudo-random values, then applies
each as an XOR update to a data-dependent slot of a huge table::

    for (block = 0; block < nblocks; block++) {
        for (j = 0; j < 128; j++)            /* fill, stride-only   */
            ran[j] = mix(block_seed ^ j);
        for (j = 0; j < 128; j++) {          /* update, timed focus */
            v = ran[j];
            T[hash(v) & (tsize-1)] ^= v;
        }
    }

Each prefetch needs the hash computation repeated, so "each prefetch
involves more computation than in IS or CG".  The automatic pass covers
the update loop but cannot see that the 128-iteration inner loop repeats
(§6.1: "our compiler analysis is unable to observe this"), so the first
elements of every block miss.  The manual variant prefetches the table
slot *from the fill loop*, a full block (128 iterations) early —
exactly the runtime knowledge the compiler lacks.
"""

from __future__ import annotations

import numpy as np

from ..ir.builder import IRBuilder
from ..ir.module import Module
from ..ir.types import INT64, VOID, pointer
from ..ir.values import Constant, Value
from ..ir.verifier import verify_module
from ..machine.memory import Memory
from .base import PreparedRun, Workload
from .looputil import counted_loop

#: Inner block length, as in HPCC RandomAccess.
BLOCK = 128

#: Multiplier of the 64-bit mix function (splitmix64's constant).
_MIX_MULT = -49064778989728563  # 0xFF51AFD7ED558CCD as a signed 64-bit int


def _mix64(v: int) -> int:
    """Host-side reference of the IR mix/hash function."""
    mask = (1 << 64) - 1
    v &= mask
    v ^= v >> 33
    v = (v * (_MIX_MULT & mask)) & mask
    v ^= v >> 29
    return v


class RandomAccess(Workload):
    """HPCC RandomAccess GUPS kernel.

    :param nblocks: number of 128-element blocks.
    :param table_size: table length; must be a power of two (16 MiB of
        8-byte words by default, exceeding every simulated LLC).
    """

    name = "RA"

    def __init__(self, nblocks: int = 120, table_size: int = 1 << 21,
                 seed: int = 44):
        super().__init__(seed)
        if table_size & (table_size - 1):
            raise ValueError("table_size must be a power of two")
        self.nblocks = nblocks
        self.table_size = table_size

    def _new_module(self) -> tuple[Module, IRBuilder]:
        module = Module("ra")
        func = module.create_function(
            "kernel", VOID,
            [("table", pointer(INT64)), ("ran", pointer(INT64)),
             ("nblocks", INT64), ("seed", INT64)])
        table = func.arg("table")
        table.array_size = Constant(INT64, self.table_size)
        table.noalias = True
        ran = func.arg("ran")
        ran.array_size = Constant(INT64, BLOCK)
        ran.noalias = True
        builder = IRBuilder()
        builder.set_insert_point(func.add_block("entry"))
        return module, builder

    def _emit_mix(self, b: IRBuilder, value: Value, tag: str) -> Value:
        """Emit the mix/hash: v ^= v>>33; v *= M; v ^= v>>29."""
        s1 = b.lshr(value, b.const(33), f"{tag}.s1")
        x1 = b.xor(value, s1, f"{tag}.x1")
        m = b.mul(x1, b.const(_MIX_MULT), f"{tag}.m")
        s2 = b.lshr(m, b.const(29), f"{tag}.s2")
        return b.xor(m, s2, f"{tag}.x2")

    def _build(self, manual: bool) -> Module:
        module, b = self._new_module()
        func = module.function("kernel")
        table, ran = func.arg("table"), func.arg("ran")
        nblocks, seed = func.arg("nblocks"), func.arg("seed")
        mask = b.const(self.table_size - 1)

        def block_body(b: IRBuilder, blk) -> None:
            blk_seed = b.mul(blk, b.const(0x9E3779B9), "blk.scaled")
            base = b.add(blk_seed, seed, "blk.seed")

            def fill_body(b: IRBuilder, j) -> None:
                raw = b.add(base, j, "raw")
                value = self._emit_mix(b, raw, "gen")
                b.store(value, b.gep(ran, j, "ranp"))
                if manual:
                    # Prefetch the table slot this value will hit in the
                    # *update* loop — a whole block of look-ahead, which
                    # only runtime knowledge of the loop structure allows.
                    h = self._emit_mix(b, value, "pf")
                    slot = b.and_(h, mask, "pf.slot")
                    b.prefetch(b.gep(table, slot, "pf.tp"))

            def update_body(b: IRBuilder, j) -> None:
                v = b.load(b.gep(ran, j, "rp"), "v")
                h = self._emit_mix(b, v, "h")
                slot = b.and_(h, mask, "slot")
                tp = b.gep(table, slot, "tp")
                b.store(b.xor(b.load(tp, "tv"), v, "newv"), tp)

            counted_loop(b, func, 0, b.const(BLOCK), fill_body, "fill")
            counted_loop(b, func, 0, b.const(BLOCK), update_body,
                         "update")

        counted_loop(b, func, 0, nblocks, block_body, "blocks")
        b.ret()
        verify_module(module)
        return module

    def build(self) -> Module:
        return self._build(manual=False)

    def build_manual(self, lookahead: int = 64, **_unused) -> Module:
        # The manual scheme's look-ahead is structural (one full block),
        # not offset-based; ``lookahead`` is accepted for interface parity.
        return self._build(manual=True)

    def prepare(self, memory: Memory) -> PreparedRun:
        table = memory.allocate(8, self.table_size, "table")
        initial = self.rng.integers(0, 1 << 30, self.table_size)
        table.fill(initial)
        ran = memory.allocate(8, BLOCK, "ran")
        seed = int(self.rng.integers(1, 1 << 31))

        expected = initial.copy()
        mask = self.table_size - 1
        wrap = 1 << 64
        for blk in range(self.nblocks):
            base = (blk * 0x9E3779B9 + seed) % wrap
            for j in range(BLOCK):
                v = _mix64(base + j)
                slot = _mix64(v) & mask
                expected[slot] ^= np.int64(
                    v - wrap if v >= wrap // 2 else v)

        def validate() -> None:
            got = table.as_numpy()
            if not np.array_equal(got, expected):
                raise AssertionError("RA table contents are wrong")

        return PreparedRun(
            args=[table.base, ran.base, self.nblocks, seed],
            validate=validate,
            iterations=self.nblocks * BLOCK)
