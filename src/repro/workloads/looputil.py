"""Helpers for building the common counted-loop shape in IR.

Kernels use the guarded rotated form Clang emits at ``-O3``::

    pre:   if (n <= start) goto exit
    loop:  i = phi [start, pre], [i+1, loop]
           <body>
           i.next = i + 1
           if (i.next < n) goto loop
    exit:

which gives the induction-variable analysis a canonical IV with a single
exit condition — the shape §4.2's loop-bound fallback requires.
"""

from __future__ import annotations

from typing import Callable

from ..ir.basicblock import BasicBlock
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.instructions import Phi
from ..ir.types import INT64
from ..ir.values import Value


def counted_loop(builder: IRBuilder, func: Function, start: Value | int,
                 end: Value, body: Callable[[IRBuilder, Phi], None],
                 name: str = "loop",
                 after: BasicBlock | None = None) -> BasicBlock:
    """Emit a counted loop at the builder's current position.

    :param start: first induction value (int or i64 value).
    :param end: exclusive upper bound (i64 value).
    :param body: callback invoked with (builder, iv) to fill the body;
        the builder is positioned inside the loop block.
    :param name: prefix for the generated block names.
    :param after: the block control falls into once the loop exits; a new
        one is created if omitted.
    :returns: the block following the loop (insert point is moved there).
    """
    if isinstance(start, int):
        start = builder.const(start)
    loop = func.add_block(f"{name}.body")
    done = after if after is not None else func.add_block(f"{name}.done")

    guard = builder.cmp("slt", start, end, f"{name}.guard")
    builder.br(guard, loop, done)
    pre = builder.block

    builder.set_insert_point(loop)
    iv = builder.phi(INT64, f"{name}.i")
    body(builder, iv)
    # The body may have moved the insert point (nested loops); the latch
    # lives wherever construction ended up.
    iv_next = builder.add(iv, builder.const(1), f"{name}.i.next")
    cond = builder.cmp("slt", iv_next, end, f"{name}.cond")
    builder.br(cond, loop, done)
    latch = builder.block

    iv.add_incoming(start, pre)
    iv.add_incoming(iv_next, latch)

    builder.set_insert_point(done)
    return done
