"""The paper's seven benchmarks (§5.1), expressed as IR kernels.

Each workload builds plain / auto-prefetched / manually-prefetched /
ICC-baseline variants of its kernel and prepares validated inputs.  The
default constructor arguments use simulation-scale sizes; pass smaller
ones in unit tests and larger ones for longer experiments.
"""

from .base import PreparedRun, Workload, VARIANTS
from .conjugate_gradient import ConjugateGradient
from .graph500 import Graph500
from .hash_join import HashJoin, hj2, hj8
from .integer_sort import IntegerSort
from .kronecker import CSRGraph, bfs_reference, generate_kronecker
from .random_access import RandomAccess

__all__ = [
    "PreparedRun", "Workload", "VARIANTS",
    "ConjugateGradient", "Graph500", "HashJoin", "hj2", "hj8",
    "IntegerSort", "RandomAccess",
    "CSRGraph", "bfs_reference", "generate_kronecker",
    "canonical_name", "paper_benchmarks", "workload_by_name",
]


def canonical_name(name: str) -> str:
    """Case- and punctuation-insensitive workload-name form, so user
    spellings like ``hj2`` or ``g500_s16`` match ``HJ-2`` / ``G500-s16``."""
    return name.lower().replace("-", "").replace("_", "")


def workload_by_name(name: str, small: bool = False):
    """A fresh instance of the suite workload called ``name``, or
    ``None`` if no workload matches (see :func:`canonical_name`).

    A *fresh* instance matters: each one carries its own RNG at the
    seed state, so two calls build identical inputs — the property the
    serve subsystem's content-addressed result keys rely on.
    """
    for workload in paper_benchmarks(small=small):
        if canonical_name(workload.name) == canonical_name(name):
            return workload
    return None


def paper_benchmarks(small: bool = False) -> list[Workload]:
    """The seven-benchmark suite of Fig. 4, in the paper's order.

    :param small: shrink inputs for quick runs (tests); the default sizes
        are the calibrated simulation-scale ones used by ``benchmarks/``.
    """
    if small:
        return [
            IntegerSort(num_keys=2_000, num_buckets=1 << 16),
            ConjugateGradient(nrows=200, row_nnz=10, x_size=1 << 13),
            RandomAccess(nblocks=10, table_size=1 << 15),
            hj2(num_probes=2_000, num_buckets=1 << 13),
            hj8(num_probes=1_000, num_buckets=1 << 11),
            Graph500(scale=9, edge_factor=8, label="G500-s16"),
            Graph500(scale=11, edge_factor=8, label="G500-s21"),
        ]
    return [
        IntegerSort(),
        ConjugateGradient(),
        RandomAccess(),
        hj2(),
        hj8(),
        # Proxies for the paper's -s16/-s21 graphs: the small one mostly
        # fits in a Haswell LLC (like the paper's 10 MiB graph), the
        # large one's edge list decisively exceeds it.
        Graph500(scale=14, edge_factor=10, label="G500-s16"),
        Graph500(scale=16, edge_factor=8, label="G500-s21"),
    ]
