"""Kronecker (R-MAT) graph generation, as used by Graph500.

Generates edges with the Graph500 reference initiator probabilities
(A=0.57, B=0.19, C=0.19, D=0.05), fully vectorised with numpy, then
builds a compressed-sparse-row adjacency (``xoff``/``xadj``).  Vertex
labels are randomly permuted so vertex degree does not correlate with
vertex id — the same step the reference generator performs to stop
locality from leaking into the CSR layout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CSRGraph:
    """A graph in compressed-sparse-row form.

    :ivar xoff: vertex offsets, length ``num_vertices + 1``.
    :ivar xadj: edge targets, length ``2 * num_edges`` (undirected).
    """

    num_vertices: int
    xoff: np.ndarray
    xadj: np.ndarray

    @property
    def num_directed_edges(self) -> int:
        """Entries in ``xadj``."""
        return int(self.xadj.shape[0])

    def degree(self, v: int) -> int:
        """Out-degree of vertex ``v``."""
        return int(self.xoff[v + 1] - self.xoff[v])


def generate_kronecker(scale: int, edge_factor: int = 10,
                       seed: int = 1, a: float = 0.57, b: float = 0.19,
                       c: float = 0.19) -> CSRGraph:
    """Generate an R-MAT graph with ``2**scale`` vertices.

    :param edge_factor: undirected edges per vertex (Graph500 uses 16;
        the paper runs ``-e 10``).
    :returns: the CSR form with both edge directions present.
    """
    rng = np.random.default_rng(seed)
    n = 1 << scale
    num_edges = n * edge_factor

    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    ab = a + b
    c_norm = c / (1.0 - ab)
    a_norm = a / ab
    for bit in range(scale):
        r1 = rng.random(num_edges)
        r2 = rng.random(num_edges)
        src_bit = (r1 > ab).astype(np.int64)
        dst_bit = np.where(src_bit == 1,
                           (r2 > c_norm).astype(np.int64),
                           (r2 > a_norm).astype(np.int64))
        src |= src_bit << bit
        dst |= dst_bit << bit

    # Permute vertex labels (de-correlates degree and id).
    perm = rng.permutation(n)
    src, dst = perm[src], perm[dst]

    # Drop self-loops, symmetrise, and build CSR.
    keep = src != dst
    src, dst = src[keep], dst[keep]
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])
    order = np.argsort(all_src, kind="stable")
    all_src, all_dst = all_src[order], all_dst[order]
    counts = np.bincount(all_src, minlength=n)
    xoff = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=xoff[1:])
    return CSRGraph(num_vertices=n, xoff=xoff,
                    xadj=all_dst.astype(np.int64))


def bfs_reference(graph: CSRGraph, root: int) -> np.ndarray:
    """Host-side BFS producing the parent array (−1 = unreached).

    Matches the kernel's traversal order (FIFO frontier, edges scanned in
    CSR order), so parents agree exactly, not just level-wise.
    """
    parent = np.full(graph.num_vertices, -1, dtype=np.int64)
    parent[root] = root
    frontier = [root]
    xoff, xadj = graph.xoff, graph.xadj
    while frontier:
        next_frontier = []
        for v in frontier:
            for e in range(xoff[v], xoff[v + 1]):
                w = int(xadj[e])
                if parent[w] < 0:
                    parent[w] = v
                    next_frontier.append(w)
        frontier = next_frontier
    return parent
