"""Graph500 Seq-CSR (G500) — breadth-first search (§5.1).

BFS over a Kronecker graph in CSR form, structured as the reference
implementation's per-level scan: a driver walks levels, calling
``bfs_level`` to expand the current frontier queue into the next one::

    for (k = 0; k < cnt; k++) {      /* work list   */
        v = qa[k];
        for (e = xoff[v]; e < xoff[v+1]; e++) {   /* edge list   */
            w = xadj[e];
            if (parent[w] < 0) { parent[w] = v; qb[nc++] = w; }
        }
    }

Four prefetch opportunities exist (work→vertex, work→edge, work→parent
staggered; and edge→parent in the inner loop).  The automatic pass picks
up work→vertex (t=2) and the inner-loop edge→parent (t=2) — but *not*
the edge-list prefetch, because the DFS prefers the innermost induction
variable ``e``, under which ``xadj[e]`` is a plain stride (exactly the
"complicated control flow" limitation §6.1 describes).  The manual
variant staggers the full work-list chain across all four structures.
"""

from __future__ import annotations

import numpy as np

from ..ir.builder import IRBuilder
from ..ir.module import Module
from ..ir.types import INT64, VOID, pointer
from ..ir.verifier import verify_module
from ..machine.memory import Memory
from .base import PreparedRun, Workload
from .kronecker import CSRGraph, bfs_reference, generate_kronecker

#: Queue slack for unclamped manual look-ahead reads.
QUEUE_SLACK = 2 * 256 + 8


class Graph500(Workload):
    """Graph500 seq-csr BFS.

    :param scale: log2 of the vertex count (the paper runs -s 16 and
        -s 21; scaled down by default for simulation time).
    :param edge_factor: undirected edges per vertex (paper: -e 10).
    """

    def __init__(self, scale: int = 14, edge_factor: int = 10,
                 seed: int = 47, label: str | None = None):
        super().__init__(seed)
        self.scale = scale
        self.edge_factor = edge_factor
        self.name = label or f"G500-s{scale}"
        self.graph: CSRGraph | None = None

    # -- IR ---------------------------------------------------------------

    def _signature(self, module: Module):
        func = module.create_function(
            "bfs_level", INT64,
            [("xoff", pointer(INT64)), ("xadj", pointer(INT64)),
             ("parent", pointer(INT64)), ("qa", pointer(INT64)),
             ("qb", pointer(INT64)), ("cnt", INT64), ("nv", INT64),
             ("ne", INT64)])
        # Graph500's arrays are heap-allocated with runtime sizes the
        # compiler cannot see (no ``array_size`` annotations), so the
        # prefetch pass must fall back to loop bounds: inner-loop parent
        # prefetches stay within the current vertex's edge run — the
        # "short-distance" pattern §6.1 calls suboptimal on Haswell.
        # ``noalias`` reflects the distinct malloc'd buffers.
        for name in ("xoff", "xadj", "parent", "qa", "qb"):
            func.arg(name).noalias = True
        return func

    def _build(self, manual_lookahead: int | None,
               inner_parent_prefetch_manual: bool = True) -> Module:
        module = Module("g500")
        level_fn = self._signature(module)
        b = IRBuilder()

        xoff, xadj = level_fn.arg("xoff"), level_fn.arg("xadj")
        parent = level_fn.arg("parent")
        qa, qb = level_fn.arg("qa"), level_fn.arg("qb")
        cnt = level_fn.arg("cnt")

        entry = level_fn.add_block("entry")
        kbody = level_fn.add_block("kbody")
        ebody = level_fn.add_block("ebody")
        visit = level_fn.add_block("visit")
        emerge = level_fn.add_block("emerge")
        klatch = level_fn.add_block("klatch")
        kdone = level_fn.add_block("kdone")

        b.set_insert_point(entry)
        kguard = b.cmp("slt", b.const(0), cnt, "kguard")
        b.br(kguard, kbody, kdone)

        # Work-list loop.
        b.set_insert_point(kbody)
        k = b.phi(INT64, "k")
        nck = b.phi(INT64, "nck")
        if manual_lookahead is not None:
            c = manual_lookahead
            # Staggered prefetches of the whole work-list chain
            # (offsets c, 3c/4, c/2, c/4 — eq. (1) with t = 4).
            kc = b.add(k, b.const(c), "pfq.k")
            b.prefetch(b.gep(qa, kc, "pfq.p"))
            k3 = b.add(k, b.const(max(1, 3 * c // 4)), "pfo.k")
            v3 = b.load(b.gep(qa, k3, "pfo.qp"), "pfo.v")
            b.prefetch(b.gep(xoff, v3, "pfo.p"))
            k2 = b.add(k, b.const(max(1, c // 2)), "pfe.k")
            v2 = b.load(b.gep(qa, k2, "pfe.qp"), "pfe.v")
            lo2 = b.load(b.gep(xoff, v2, "pfe.op"), "pfe.lo")
            b.prefetch(b.gep(xadj, lo2, "pfe.p"))
            # Cover the first few lines of the vertex's edge run.
            for line in (8, 16):
                ahead = b.add(lo2, b.const(line), f"pfe.lo{line}")
                b.prefetch(b.gep(xadj, ahead, f"pfe.p{line}"))
            k1 = b.add(k, b.const(max(1, c // 4)), "pfp.k")
            v1 = b.load(b.gep(qa, k1, "pfp.qp"), "pfp.v")
            lo1 = b.load(b.gep(xoff, v1, "pfp.op"), "pfp.lo")
            w1 = b.load(b.gep(xadj, lo1, "pfp.ep"), "pfp.w")
            b.prefetch(b.gep(parent, w1, "pfp.p"))
        v = b.load(b.gep(qa, k, "qp"), "v")
        lo = b.load(b.gep(xoff, v, "lop"), "lo")
        v_plus = b.add(v, b.const(1), "v1")
        hi = b.load(b.gep(xoff, v_plus, "hip"), "hi")
        eguard = b.cmp("slt", lo, hi, "eguard")
        b.br(eguard, ebody, klatch)

        # Edge loop.
        b.set_insert_point(ebody)
        e = b.phi(INT64, "e")
        nce = b.phi(INT64, "nce")
        if manual_lookahead is not None and inner_parent_prefetch_manual:
            # Short-distance parent prefetch off each edge, clamped to
            # the current vertex's edge run ("provided the look-ahead
            # distance is small enough to be within the same vertex's
            # edges", §5.1).
            e_ahead = b.add(e, b.const(max(1, manual_lookahead // 8)),
                            "pfi.e")
            limit = b.sub(hi, b.const(1), "pfi.lim")
            e_cl = b.smin(e_ahead, limit, "pfi.ecl")
            w_ahead = b.load(b.gep(xadj, e_cl, "pfi.ep"), "pfi.w")
            b.prefetch(b.gep(parent, w_ahead, "pfi.p"))
        w = b.load(b.gep(xadj, e, "ep"), "w")
        pw = b.load(b.gep(parent, w, "pp"), "pw")
        unvisited = b.cmp("slt", pw, b.const(0), "unvisited")
        b.br(unvisited, visit, emerge)

        b.set_insert_point(visit)
        b.store(v, b.gep(parent, w, "pset"))
        b.store(w, b.gep(qb, nce, "qbp"))
        nc_v = b.add(nce, b.const(1), "nc.v")
        b.jmp(emerge)

        b.set_insert_point(emerge)
        nc_m = b.phi(INT64, "nc.m")
        nc_m.add_incoming(nce, ebody)
        nc_m.add_incoming(nc_v, visit)
        e_next = b.add(e, b.const(1), "e.next")
        econd = b.cmp("slt", e_next, hi, "econd")
        b.br(econd, ebody, klatch)
        e.add_incoming(lo, kbody)
        e.add_incoming(e_next, emerge)
        nce.add_incoming(nck, kbody)
        nce.add_incoming(nc_m, emerge)

        b.set_insert_point(klatch)
        nc_out = b.phi(INT64, "nc.out")
        nc_out.add_incoming(nck, kbody)
        nc_out.add_incoming(nc_m, emerge)
        k_next = b.add(k, b.const(1), "k.next")
        kcond = b.cmp("slt", k_next, cnt, "kcond")
        b.br(kcond, kbody, kdone)
        k.add_incoming(b.const(0), entry)
        k.add_incoming(k_next, klatch)
        nck.add_incoming(b.const(0), entry)
        nck.add_incoming(nc_out, klatch)

        b.set_insert_point(kdone)
        result = b.phi(INT64, "result")
        result.add_incoming(b.const(0), entry)
        result.add_incoming(nc_out, klatch)
        b.ret(result)

        # Driver: the level loop, swapping queues each level.
        driver = module.create_function(
            "kernel", VOID,
            [("xoff", pointer(INT64)), ("xadj", pointer(INT64)),
             ("parent", pointer(INT64)), ("q1", pointer(INT64)),
             ("q2", pointer(INT64)), ("count0", INT64), ("nv", INT64),
             ("ne", INT64)])
        dentry = driver.add_block("entry")
        dlevel = driver.add_block("level")
        dexit = driver.add_block("exit")
        b.set_insert_point(dentry)
        b.jmp(dlevel)
        b.set_insert_point(dlevel)
        cur_a = b.phi(pointer(INT64), "cur.a")
        cur_b = b.phi(pointer(INT64), "cur.b")
        cur_n = b.phi(INT64, "cur.n")
        nc = b.call(level_fn,
                    [driver.arg("xoff"), driver.arg("xadj"),
                     driver.arg("parent"), cur_a, cur_b, cur_n,
                     driver.arg("nv"), driver.arg("ne")], "nc")
        more = b.cmp("sgt", nc, b.const(0), "more")
        b.br(more, dlevel, dexit)
        cur_a.add_incoming(driver.arg("q1"), dentry)
        cur_a.add_incoming(cur_b, dlevel)
        cur_b.add_incoming(driver.arg("q2"), dentry)
        cur_b.add_incoming(cur_a, dlevel)
        cur_n.add_incoming(driver.arg("count0"), dentry)
        cur_n.add_incoming(nc, dlevel)
        b.set_insert_point(dexit)
        b.ret()

        verify_module(module)
        return module

    def build(self) -> Module:
        return self._build(None)

    def build_manual(self, lookahead: int = 64, *,
                     inner_parent_prefetch: bool = True,
                     **_unused) -> Module:
        return self._build(lookahead, inner_parent_prefetch)

    # -- data ----------------------------------------------------------------

    def prepare(self, memory: Memory) -> PreparedRun:
        if self.graph is None:
            self.graph = generate_kronecker(
                self.scale, self.edge_factor, seed=self.seed)
        graph = self.graph
        nv = graph.num_vertices
        ne = graph.num_directed_edges
        # Root: a vertex with edges (Graph500 requires non-isolated keys).
        degrees = np.diff(graph.xoff)
        root = int(np.argmax(degrees > 0))

        xoff = memory.allocate(8, nv + 1, "xoff")
        xoff.fill(graph.xoff)
        xadj = memory.allocate(8, max(ne, 1), "xadj")
        xadj.fill(graph.xadj)
        parent = memory.allocate(8, nv, "parent")
        parent.fill(np.full(nv, -1, dtype=np.int64))
        q1 = memory.allocate(8, nv + QUEUE_SLACK, "q1")
        q2 = memory.allocate(8, nv + QUEUE_SLACK, "q2")

        parent.data[root] = root
        q1.data[0] = root

        expected = bfs_reference(graph, root)

        def validate() -> None:
            got = parent.as_numpy()
            if not np.array_equal(got, expected):
                raise AssertionError(f"{self.name} BFS parents are wrong")

        return PreparedRun(
            args=[xoff.base, xadj.base, parent.base, q1.base, q2.base,
                  1, nv, ne],
            validate=validate,
            iterations=ne)
