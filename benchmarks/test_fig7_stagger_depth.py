"""Fig. 7: prefetching progressively more of HJ-8's dependent loads.

The paper: staggering deeper into the chain helps, but each level costs
quadratically more re-walked loads; on the authors' hardware the fourth
prefetch no longer paid for itself ("it is optimal to prefetch only the
first three").  Our simulator reproduces the rising shape of the first
three levels; the depth-3/4 crossover does not reproduce (the simulated
loop is leaner than the compiled original, so the fourth level's extra
instructions stay cheaper than the serial miss they remove — see
EXPERIMENTS.md).
"""

from repro.bench import fig7_stagger_depth, format_series

from conftest import SMALL, archive, run_once

DEPTHS = (1, 2, 3, 4)


def test_fig7_stagger_depth(benchmark, results_dir):
    results = run_once(benchmark, fig7_stagger_depth, small=SMALL)
    text = format_series(
        "Fig. 7: HJ-8 speedup vs number of dependent loads prefetched",
        "depth", DEPTHS, results)
    archive(results_dir, "fig7_stagger_depth.txt", text)

    if SMALL:
        return
    for machine, series in results.items():
        # Staggering deeper into the chain keeps helping through the
        # third level on every machine, as in the paper.
        assert series[2] > series[1], (machine, series)
        assert series[3] > series[2], (machine, series)
        # Known deviation: the paper's depth-3/4 crossover does not
        # reproduce (depth 4 keeps winning in the simulator); we only
        # require depth 4 not to collapse.
        assert series[4] > series[1], (machine, series)
