"""Ablations of the design choices DESIGN.md calls out.

* eq. (1) staggered offsets vs a uniform offset for every prefetch in a
  chain;
* runtime cost of the min-clamp fault guard (clamped auto code vs the
  unclamped manual code that relies on allocation slack).
"""

from repro.bench import (ablation_guard_cost, ablation_scheduling,
                         format_table)

from conftest import SMALL, archive, run_once


def test_ablation_scheduling(benchmark, results_dir):
    results = run_once(benchmark, ablation_scheduling, small=SMALL)
    table = format_table(
        ["Schedule", "HJ-8 speedup"],
        [[k, v] for k, v in results.items()],
        "Ablation: eq. (1) staggering vs uniform offsets (Haswell)")
    archive(results_dir, "ablation_scheduling.txt", table)
    if SMALL:
        return
    # Staggering is the point of eq. (1): with uniform offsets every
    # intermediate look-ahead load misses, shrinking the benefit.
    assert results["staggered (eq. 1)"] >= \
        results["uniform offsets"] * 0.98, results


def test_ablation_guard_cost(benchmark, results_dir):
    results = run_once(benchmark, ablation_guard_cost, small=SMALL)
    table = format_table(
        ["Variant", "IS speedup"],
        [[k, v] for k, v in results.items()],
        "Ablation: cost of the min-clamp fault guard (Haswell)")
    archive(results_dir, "ablation_guard_cost.txt", table)
    # The clamp costs a couple of instructions per prefetch; the guarded
    # code must stay within a few percent of the unguarded manual code.
    clamped = results["with clamp (auto)"]
    unclamped = results["without clamp (manual)"]
    assert clamped > 1.0
    assert clamped >= unclamped * 0.85, results
