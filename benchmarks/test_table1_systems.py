"""Table 1: the four simulated systems and their model parameters."""

from repro.bench import format_table, table1_rows

from conftest import archive, run_once


def test_table1_systems(benchmark, results_dir):
    rows = run_once(benchmark, table1_rows)
    headers = list(rows[0])
    table = format_table(headers, [[r[h] for h in headers] for r in rows],
                         "Table 1: simulated systems")
    archive(results_dir, "table1_systems.txt", table)

    names = [r["System"] for r in rows]
    assert names == ["Haswell", "A57", "A53", "Xeon Phi"]
    cores = {r["System"]: r["Core"] for r in rows}
    assert cores["Haswell"] == "out-of-order"
    assert cores["A57"] == "out-of-order"
    assert cores["A53"] == "in-order"
    assert cores["Xeon Phi"] == "in-order"
    # The A57's single-page-walk limitation (§6.1) is modelled.
    assert next(r for r in rows if r["System"] == "A57")["TLB walks"] == 1
