"""Fig. 2: manual prefetch schemes for IS on Haswell.

The paper's point: the intuitive single prefetch leaves performance on
the table; too-small and too-large offsets also underperform; the
optimal scheme staggers both prefetches at c = 64.
"""

from repro.bench import fig2_prefetch_schemes, format_table

from conftest import archive, run_once


def test_fig2_prefetch_schemes(benchmark, results_dir):
    speedups = run_once(benchmark, fig2_prefetch_schemes)
    table = format_table(
        ["Scheme", "Speedup"],
        [[name, value] for name, value in speedups.items()],
        "Fig. 2: IS prefetching schemes on Haswell")
    archive(results_dir, "fig2_prefetch_schemes.txt", table)

    # Shape: optimal wins; every scheme is ordered below it as in the
    # paper's bars.
    assert speedups["Optimal"] >= speedups["Intuitive"]
    assert speedups["Optimal"] > speedups["Offset too small"]
    assert speedups["Optimal"] > speedups["Offset too big"]
    # The optimal scheme shows a solid speedup (paper: 1.30x).
    assert speedups["Optimal"] > 1.1
    # A too-small offset barely prefetches anything in time.
    assert speedups["Offset too small"] < speedups["Optimal"] * 0.9
