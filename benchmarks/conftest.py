"""Shared helpers for the figure-regeneration benchmarks.

Each benchmark runs its experiment exactly once (simulations are
deterministic), archives the resulting table under
``benchmarks/results/``, and asserts the qualitative shape the paper
reports.  Set ``REPRO_BENCH_SMALL=1`` to run scaled-down experiments
(used by CI smoke runs); the default sizes reproduce the shapes
described in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Scaled-down mode for quick runs.
SMALL = os.environ.get("REPRO_BENCH_SMALL", "0") == "1"

# Benchmark runs default to the run-result disk cache: re-running a
# figure with unchanged inputs (and unchanged simulator source — the
# key hashes it) replays archived results instead of re-simulating.
# Override with REPRO_SIM_CACHE=0 / a different REPRO_SIM_CACHE_DIR.
os.environ.setdefault("REPRO_SIM_CACHE", "1")
os.environ.setdefault(
    "REPRO_SIM_CACHE_DIR",
    str(pathlib.Path(__file__).parent.parent / ".sim-cache"))


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory where figure tables are archived."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def archive(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Write one figure's table (and echo it for -s runs)."""
    path = results_dir / name
    path.write_text(text)
    print(f"\n{text}")


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
