"""Fig. 9: IS throughput on 1/2/4 Haswell cores sharing one DRAM
channel.

The paper: four concurrent copies achieve *less* total throughput than
one core running them back-to-back (normalised throughput below 1), yet
software prefetching still helps at every core count.
"""

from repro.bench import fig9_bandwidth, format_series

from conftest import SMALL, archive, run_once

CORES = (1, 2, 4)


def test_fig9_bandwidth(benchmark, results_dir):
    results = run_once(benchmark, fig9_bandwidth, small=SMALL)
    series = {
        "No Prefetching": {n: results[(n, "No Prefetching")]
                           for n in CORES},
        "Prefetching": {n: results[(n, "Prefetching")] for n in CORES},
    }
    text = format_series(
        "Fig. 9: IS normalised throughput vs core count (Haswell)",
        "cores", CORES, series)
    archive(results_dir, "fig9_bandwidth.txt", text)

    no_pf = series["No Prefetching"]
    pf = series["Prefetching"]
    # Single-core without prefetching is the normalisation baseline.
    assert abs(no_pf[1] - 1.0) < 0.01
    # Prefetching helps at every core count.
    for n in CORES:
        assert pf[n] > no_pf[n], results
    if SMALL:
        return
    # The shared memory system is the bottleneck: 4 cores without
    # prefetching fall below 1.0 (the paper's headline observation).
    assert no_pf[4] < 1.05, results
    # Scaling is far from linear in either mode.
    assert no_pf[4] < 2.0 and pf[4] < 4.0
