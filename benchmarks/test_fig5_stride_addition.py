"""Fig. 5: staggered stride prefetches added to the indirect prefetch,
for the automated scheme on Haswell."""

from repro.bench import fig5_stride_contribution, format_table, \
    geometric_mean

from conftest import SMALL, archive, run_once


def test_fig5_stride_addition(benchmark, results_dir):
    rows = run_once(benchmark, fig5_stride_contribution, small=SMALL)
    table = format_table(
        ["Benchmark", "Indirect Only", "Indirect + Stride"],
        [[r["benchmark"], r["indirect_only"],
          r["indirect_plus_stride"]] for r in rows],
        "Fig. 5: adding the stride prefetch (Haswell, automated scheme)")
    archive(results_dir, "fig5_stride_addition.txt", table)

    if SMALL:
        return
    both = geometric_mean([r["indirect_plus_stride"] for r in rows])
    indirect = geometric_mean([r["indirect_only"] for r in rows])
    # Despite the hardware stride prefetcher, adding the staggered
    # stride prefetch helps overall (paper: "performance improvements
    # are observed across the board").
    assert both >= indirect * 0.99
    improved = sum(1 for r in rows
                   if r["indirect_plus_stride"] >= r["indirect_only"])
    assert improved >= len(rows) - 2
