"""Fig. 6: speedup vs look-ahead distance c for IS, CG, RA and HJ-2 on
all four machines.

The paper's findings: the optimum is consistent across machines, c = 64
is close to optimal everywhere, and being generous (too early) costs far
less than being late.
"""

from repro.bench import LOOKAHEAD_SWEEP, fig6_lookahead_sweep, \
    format_series
from repro.machine import ALL_SYSTEMS

from conftest import SMALL, archive, run_once


def test_fig6_lookahead(benchmark, results_dir):
    results = run_once(benchmark, fig6_lookahead_sweep, small=SMALL)

    benchmarks = sorted({b for b, _ in results})
    chunks = []
    for bench in benchmarks:
        series = {machine.name: results[(bench, machine.name)]
                  for machine in ALL_SYSTEMS}
        chunks.append(format_series(
            f"Fig. 6: {bench} speedup vs look-ahead distance c",
            "c", LOOKAHEAD_SWEEP, series))
    text = "\n".join(chunks)
    archive(results_dir, "fig6_lookahead.txt", text)

    if SMALL:
        return
    for (bench, machine), series in results.items():
        best_c = max(series, key=series.get)
        best = series[best_c]
        at_64 = series[64]
        if bench == "RA":
            # Known structural difference: our RA variant clamps the
            # look-ahead within each 128-element block (the automated
            # pass's fault guard), so very large c degenerates to
            # prefetching the block's last line.  Check the
            # early-peak shape (in-order cores can peak at the very
            # smallest c: their long iterations make 4 iterations of
            # lead sufficient) and that c = 64 still wins.
            assert best_c <= 32, (bench, machine, series)
            assert at_64 > 1.25, (bench, machine, series)
            assert series[256] < best, (bench, machine, series)
            continue
        # c = 64 is close to optimal for every benchmark x machine
        # (paper: "Setting c = 64 is close to optimal for every
        # benchmark and microarchitecture combination").
        assert at_64 >= 0.72 * best, (bench, machine, series)
        # Too late (c = 4) hurts more than the largest distance tested:
        # "it is more detrimental to be too late issuing prefetches
        # than too early".
        assert series[4] <= series[256] * 1.3, (bench, machine, series)
