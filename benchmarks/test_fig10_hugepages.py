"""Fig. 10: prefetch speedup with transparent huge pages on vs off
(IS, RA, HJ-2 on Haswell), each normalised to no-prefetching under the
same page policy.

The paper: huge pages slightly shrink the prefetch win for IS and RA
(the TLB-warming side effect of prefetching matters less), trends stay
consistent, and gains remain positive everywhere.
"""

from repro.bench import fig10_huge_pages, format_table

from conftest import SMALL, archive, run_once


def test_fig10_hugepages(benchmark, results_dir):
    results = run_once(benchmark, fig10_huge_pages, small=SMALL)
    table = format_table(
        ["Benchmark", "Small Pages", "Huge Pages"],
        [[name, row["Small Pages"], row["Huge Pages"]]
         for name, row in results.items()],
        "Fig. 10: prefetch speedup vs page size (Haswell)")
    archive(results_dir, "fig10_hugepages.txt", table)

    for name, row in results.items():
        # Prefetching helps under both page policies.
        assert row["Small Pages"] > 1.0, results
        assert row["Huge Pages"] > 1.0, results
    if SMALL:
        return
    # For IS and RA huge pages reduce the relative win (part of the
    # 4KiB-page win was free TLB warming).
    assert results["IS"]["Huge Pages"] <= \
        results["IS"]["Small Pages"] * 1.05, results
    assert results["RA"]["Huge Pages"] <= \
        results["RA"]["Small Pages"] * 1.05, results
