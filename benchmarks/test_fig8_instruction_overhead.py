"""Fig. 8: % increase in dynamic instruction count (Haswell, best
scheme per benchmark).

The paper: dramatic overheads for the simple kernels (up to ~80%) but
only small ones for Graph500, whose best Haswell scheme keeps prefetches
out of the innermost loop.
"""

from repro.bench import fig8_instruction_overhead, format_table

from conftest import SMALL, archive, run_once


def test_fig8_instruction_overhead(benchmark, results_dir):
    overheads = run_once(benchmark, fig8_instruction_overhead,
                         small=SMALL)
    table = format_table(
        ["Benchmark", "% extra instructions"],
        [[name, pct] for name, pct in overheads.items()],
        "Fig. 8: dynamic instruction overhead on Haswell (best scheme)")
    archive(results_dir, "fig8_instruction_overhead.txt", table)

    if SMALL:
        return
    # Simple kernels pay a large instruction tax...
    for name in ("IS", "CG", "RA"):
        assert overheads[name] > 30.0, overheads
    # ...while the graph benchmarks stay comparatively cheap.
    for name in ("G500-s16", "G500-s21"):
        assert overheads[name] < min(overheads["IS"], overheads["CG"]), \
            overheads
    # Everything still runs *faster* despite the extra instructions —
    # that is Fig. 4's assertion, checked there.
