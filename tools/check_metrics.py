#!/usr/bin/env python
"""Validate a ``repro serve`` metrics endpoint against the catalogue.

Fetches both expositions from a running (or ``--spawn``-ed) server and
cross-checks them against the authoritative catalogue — the
:class:`repro.serve.server.ServeMetrics` registry itself
(``registry.describe()``), the same object documented in
docs/OBSERVABILITY.md:

* **Prometheus text** (``/metrics?format=prometheus``): every
  registered family present with matching ``# TYPE``; every sample
  name accounted for (``<name>`` or, for histograms,
  ``<name>_bucket``/``_sum``/``_count``); label sets exactly the
  declared ones (plus ``le`` on bucket series); bucket counts
  cumulative non-decreasing with ``le="+Inf"`` equal to ``_count``;
  no stray or duplicate series.
* **JSON snapshot** (``/metrics``): schema tag, required keys, stage
  names drawn from the catalogue's stage label series, non-negative
  counts, and p50 <= p99 <= max per histogram row.

Exit 0 when both pass; prints each failure and exits 1 otherwise.

Usage::

    PYTHONPATH=src python tools/check_metrics.py --spawn
    PYTHONPATH=src python tools/check_metrics.py --host H --port P
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.serve.client import (get_metrics,  # noqa: E402
                                get_metrics_text)
from repro.serve.server import STAGES, ServeMetrics  # noqa: E402

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$")
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_exposition(text: str) -> tuple[dict, list, list]:
    """Parse the text format into (families, samples, errors)."""
    families: dict[str, dict] = {}
    samples: list[dict] = []
    errors: list[str] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(name, {})["help"] = help_text
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            families.setdefault(name, {})["type"] = kind.strip()
        elif line.startswith("#"):
            continue
        else:
            match = _SAMPLE.match(line)
            if not match:
                errors.append(f"line {lineno}: unparseable sample "
                              f"{line!r}")
                continue
            labels = dict(_LABEL.findall(match.group("labels") or ""))
            try:
                value = float(match.group("value"))
            except ValueError:
                if match.group("value") not in ("+Inf", "-Inf", "NaN"):
                    errors.append(f"line {lineno}: bad value "
                                  f"{match.group('value')!r}")
                    continue
                value = float(match.group("value").replace("Inf",
                                                           "inf"))
            samples.append({"name": match.group("name"),
                            "labels": labels, "value": value,
                            "line": lineno})
    return families, samples, errors


def check_prometheus(text: str, catalogue: list[dict]) -> list[str]:
    """All catalogue violations in one exposition; empty = pass."""
    failures: list[str] = []
    families, samples, errors = parse_exposition(text)
    failures.extend(errors)
    by_name = {row["name"]: row for row in catalogue}

    for row in catalogue:
        seen = families.get(row["name"])
        if seen is None:
            failures.append(f"{row['name']}: missing HELP/TYPE header")
        elif seen.get("type") != row["type"]:
            failures.append(
                f"{row['name']}: TYPE {seen.get('type')!r} != "
                f"catalogue {row['type']!r}")
    for name in families:
        if name not in by_name:
            failures.append(f"{name}: exposed but not in catalogue")

    def family_of(sample_name: str):
        if sample_name in by_name:
            return by_name[sample_name], ""
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name.removesuffix(suffix)
            if sample_name.endswith(suffix) and base in by_name:
                return by_name[base], suffix
        return None, ""

    series: dict[tuple, int] = {}
    hist: dict[tuple, list] = {}
    for sample in samples:
        row, suffix = family_of(sample["name"])
        if row is None:
            failures.append(f"line {sample['line']}: sample "
                            f"{sample['name']} matches no family")
            continue
        if suffix and row["type"] != "histogram":
            failures.append(f"line {sample['line']}: {sample['name']} "
                            f"has a histogram suffix but "
                            f"{row['name']} is a {row['type']}")
            continue
        expected = set(row["labels"])
        if suffix == "_bucket":
            expected = expected | {"le"}
        got = set(sample["labels"])
        if got != expected:
            failures.append(
                f"line {sample['line']}: {sample['name']} labels "
                f"{sorted(got)} != declared {sorted(expected)}")
        key = (sample["name"],
               tuple(sorted(sample["labels"].items())))
        series[key] = series.get(key, 0) + 1
        if suffix == "_bucket":
            group = tuple(sorted((k, v)
                                 for k, v in sample["labels"].items()
                                 if k != "le"))
            hist.setdefault((row["name"], group), []).append(
                (sample["labels"].get("le"), sample["value"]))
        if row["type"] == "counter" and not suffix and \
                sample["value"] < 0:
            failures.append(f"{sample['name']}: negative counter "
                            f"{sample['value']}")
    for (name, labels), count in series.items():
        if count > 1:
            failures.append(f"{name}{dict(labels)}: duplicate series "
                            f"({count} samples)")

    counts = {(row_name, grp): s["value"]
              for s in samples
              for row_name, grp in [((s["name"].removesuffix("_count")),
                                     tuple(sorted(s["labels"].items())))]
              if s["name"].endswith("_count")}
    for (name, group), buckets in hist.items():
        def le_key(pair):
            le = pair[0]
            return float("inf") if le == "+Inf" else float(le)
        ordered = sorted(buckets, key=le_key)
        values = [v for _, v in ordered]
        if any(b > a for a, b in zip(values[1:], values)):
            failures.append(f"{name}_bucket{dict(group)}: bucket "
                            f"counts not cumulative: {values}")
        if ordered and ordered[-1][0] != "+Inf":
            failures.append(f"{name}_bucket{dict(group)}: no le=\"+Inf\" "
                            f"bucket")
        total = counts.get((name, group))
        if total is not None and ordered and \
                ordered[-1][1] != total:
            failures.append(
                f"{name}{dict(group)}: +Inf bucket {ordered[-1][1]} "
                f"!= _count {total}")
    return failures


def check_snapshot(snapshot: dict) -> list[str]:
    """JSON snapshot structure checks; empty = pass."""
    failures: list[str] = []
    if snapshot.get("schema") != "repro-serve-metrics-v1":
        failures.append(f"snapshot schema {snapshot.get('schema')!r}")
    for key in ("uptime_s", "requests", "coalesce_hits", "cas",
                "jobs", "queue", "workers", "latency_ms", "stages",
                "traces"):
        if key not in snapshot:
            failures.append(f"snapshot missing key {key!r}")
    if failures:
        return failures
    if snapshot["uptime_s"] < 0:
        failures.append(f"negative uptime {snapshot['uptime_s']}")
    for stage in snapshot["stages"]:
        if stage not in STAGES:
            failures.append(f"snapshot stage {stage!r} not in "
                            f"catalogue stages {list(STAGES)}")
    rows = list(snapshot["stages"].values()) + [snapshot["latency_ms"]]
    for row in rows:
        if not (0 <= row["p50"] <= row["p99"] <= row["max"]):
            failures.append(f"histogram row out of order: {row}")
        if row["count"] < 0:
            failures.append(f"negative count: {row}")
    for section, fields in (("cas", ("hits", "misses", "stores")),
                            ("jobs", ("executed", "errors",
                                      "timeouts", "shed")),
                            ("queue", ("depth", "limit")),
                            ("workers", ("count", "restarts"))):
        for name in fields:
            value = snapshot[section].get(name)
            if not isinstance(value, (int, float)) or value < 0:
                failures.append(
                    f"snapshot {section}.{name} = {value!r}")
    for label_row in snapshot["requests"].get("by_label", []):
        if set(label_row) != {"workload", "tier", "status", "count"}:
            failures.append(f"by_label row keys {sorted(label_row)}")
    return failures


def spawn_server(store_dir: str) -> tuple:
    cmd = [sys.executable, "-m", "repro", "serve", "--port", "0",
           "--workers", "2", "--cache-dir", store_dir, "--debug"]
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(Path(__file__).resolve().parent.parent
                             / "src")
                         + os.pathsep + env.get("PYTHONPATH", ""))
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE, text=True,
                            env=env)
    line = proc.stdout.readline()
    try:
        address = line.split("listening on ")[1].split()[0]
        host, port = address.rsplit(":", 1)
        return proc, host, int(port)
    except (IndexError, ValueError):
        proc.terminate()
        raise SystemExit(f"could not parse server banner: {line!r}")


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787)
    parser.add_argument("--spawn", action="store_true",
                        help="start a repro serve subprocess on a "
                             "free port, exercise it briefly, and "
                             "check its expositions")
    args = parser.parse_args()

    proc = None
    host, port = args.host, args.port
    if args.spawn:
        import tempfile
        store_dir = tempfile.mkdtemp(prefix="repro-serve-cas-")
        proc, host, port = spawn_server(store_dir)
        # A little traffic so label series and histograms are
        # populated, not just registered.
        from repro.serve.client import ServeHTTPError, submit
        try:
            submit(host, port, {"kind": "sleep", "seconds": 0.01})
            submit(host, port, {"kind": "sleep", "seconds": 0.01})
        except (OSError, ServeHTTPError) as exc:
            print(f"check_metrics: warm-up submit failed: {exc}",
                  file=sys.stderr)
    try:
        text = get_metrics_text(host, port)
        snapshot = get_metrics(host, port)
    except OSError as exc:
        print(f"check_metrics: cannot reach {host}:{port}: {exc}",
              file=sys.stderr)
        return 1
    finally:
        if proc is not None:
            proc.terminate()
            proc.wait(timeout=10)

    catalogue = ServeMetrics().registry.describe()
    failures = check_prometheus(text, catalogue)
    failures += check_snapshot(snapshot)
    if failures:
        for failure in failures:
            print(f"check_metrics: FAIL — {failure}", file=sys.stderr)
        return 1
    _, samples, _ = parse_exposition(text)
    names = sorted({sample["name"] for sample in samples})
    print(f"check_metrics: PASS — {len(catalogue)} families, "
          f"{len(names)} sample names, snapshot OK "
          f"({snapshot['requests']['total']} requests observed)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
