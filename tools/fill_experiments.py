"""Insert the archived benchmark tables into EXPERIMENTS.md.

Run after ``pytest benchmarks/ --benchmark-only``; replaces each
``MEASURED_*`` placeholder (or a previously inserted tagged block) with
the corresponding table from ``benchmarks/results/``.  Idempotent:
re-running refreshes the blocks in place.
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"
TARGET = ROOT / "EXPERIMENTS.md"

#: placeholder -> result files (concatenated in order).
BLOCKS = {
    "MEASURED_FIG2": ["fig2_prefetch_schemes.txt"],
    "MEASURED_FIG4": ["fig4a_haswell.txt", "fig4b_a57.txt",
                      "fig4c_a53.txt", "fig4d_xeon phi.txt"],
    "MEASURED_FIG5": ["fig5_stride_addition.txt"],
    "MEASURED_FIG6": ["fig6_lookahead.txt"],
    "MEASURED_FIG7": ["fig7_stagger_depth.txt"],
    "MEASURED_FIG8": ["fig8_instruction_overhead.txt"],
    "MEASURED_FIG9": ["fig9_bandwidth.txt"],
    "MEASURED_FIG10": ["fig10_hugepages.txt"],
    "MEASURED_ABLATIONS": ["ablation_scheduling.txt",
                           "ablation_guard_cost.txt"],
}


def render(tag: str) -> str:
    chunks = []
    for name in BLOCKS[tag]:
        path = RESULTS / name
        if not path.exists():
            chunks.append(f"(not yet measured: {name})")
        else:
            chunks.append(path.read_text().rstrip())
    body = "\n\n".join(chunks)
    return f"```text meas:{tag}\n{body}\n```"


def main() -> int:
    text = TARGET.read_text()
    for tag in BLOCKS:
        replacement = render(tag)
        tagged = re.compile(
            rf"```text meas:{tag}\n.*?\n```", re.S)
        if tagged.search(text):
            text = tagged.sub(replacement.replace("\\", r"\\"), text)
        elif re.search(rf"^{tag}$", text, re.M):
            text = re.sub(rf"^{tag}$", replacement.replace("\\", r"\\"),
                          text, flags=re.M)
        else:
            print(f"warning: no slot for {tag} in EXPERIMENTS.md",
                  file=sys.stderr)
    TARGET.write_text(text)
    print(f"updated {TARGET}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
