#!/usr/bin/env python
"""Prefetch-effectiveness report: telemetry over the quick suite.

Runs ``plain`` and ``auto`` with telemetry enabled for every quick-suite
benchmark on every Table 1 machine and archives the per-prefetch
outcome counts, accuracy/timeliness ratios, and stall-cycle attribution
under ``benchmarks/results/telemetry_effectiveness.{txt,json}``.

``--check-identity`` additionally asserts the telemetry contract: for a
sample of (workload, machine) pairs, cycles with telemetry on equal
cycles with telemetry off, under both engine paths.

Usage::

    PYTHONPATH=src python tools/telemetry_report.py --quick
    PYTHONPATH=src python tools/telemetry_report.py --quick --check-identity
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

RESULTS_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / \
    "results"


def check_identity(small: bool) -> None:
    """Assert telemetry never changes measured cycles (both engines)."""
    from repro.bench.runner import run_variant
    from repro.machine.configs import A53, HASWELL
    from repro.workloads import IntegerSort, hj2

    def make_pairs():
        return [(IntegerSort(num_keys=2_000, num_buckets=1 << 16)
                 if small else IntegerSort(), HASWELL),
                (hj2(num_probes=2_000, num_buckets=1 << 13)
                 if small else hj2(), A53)]

    saved = os.environ.get("REPRO_SIM_FASTPATH")
    try:
        for variant in ("plain", "auto"):
            for fastpath in ("0", "1"):
                os.environ["REPRO_SIM_FASTPATH"] = fastpath
                cycles = {}
                for telemetry in (False, True):
                    for workload, machine in make_pairs():
                        result = run_variant(workload, variant, machine,
                                             cache=False,
                                             telemetry=telemetry)
                        key = (workload.name, machine.name)
                        if telemetry:
                            assert cycles[key] == result.cycles, (
                                f"telemetry changed cycles for {key} "
                                f"{variant} fastpath={fastpath}: "
                                f"{cycles[key]} != {result.cycles}")
                            assert result.telemetry is not None
                        else:
                            cycles[key] = result.cycles
                            assert result.telemetry is None
    finally:
        if saved is None:
            os.environ.pop("REPRO_SIM_FASTPATH", None)
        else:
            os.environ["REPRO_SIM_FASTPATH"] = saved
    print("identity check passed: telemetry on/off cycles bit-identical "
          "under both engine paths")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down workloads (CI smoke mode)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for independent runs")
    parser.add_argument("--check-identity", action="store_true",
                        help="assert telemetry-on cycles == telemetry-off")
    parser.add_argument("--output-dir", default=str(RESULTS_DIR),
                        help="directory for the .txt/.json reports")
    args = parser.parse_args(argv)

    if args.check_identity:
        check_identity(small=args.quick)

    from repro.machine.configs import ALL_SYSTEMS
    from repro.telemetry.report import (effectiveness_rows,
                                        render_effectiveness, report_dict)
    from repro.workloads import paper_benchmarks

    rows = effectiveness_rows(paper_benchmarks(small=args.quick),
                              machines=ALL_SYSTEMS, jobs=args.jobs)
    title = ("Prefetch effectiveness (auto vs plain, telemetry"
             + (", quick suite)" if args.quick else ")"))
    table = render_effectiveness(rows, title=title)
    report = report_dict(rows)
    report["quick"] = args.quick

    out_dir = Path(args.output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "telemetry_effectiveness.txt").write_text(table)
    (out_dir / "telemetry_effectiveness.json").write_text(
        json.dumps(report, indent=2) + "\n")
    print(table)
    print(f"wrote {out_dir / 'telemetry_effectiveness.txt'} and .json")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
