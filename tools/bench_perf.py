#!/usr/bin/env python
"""Benchmark-suite throughput harness: fast engine vs slow reference.

Times the figure experiments three ways and writes
``BENCH_sim_throughput.json``:

* **slow** — ``REPRO_SIM_FASTPATH=0`` (reference interpreter and full
  hierarchy walks), no result cache;
* **fast cold** — fast path on, run-result disk cache enabled but
  starting empty (within the run, figures that re-simulate identical
  runs — e.g. Fig. 8 reuses Fig. 4(a)'s Haswell runs — already dedup);
* **fast warm** — the same suite again against the now-populated cache,
  i.e. the steady-state "re-run after changing nothing" developer loop.

The headline ``suite.speedup`` is ``slow_s / fast_warm_s`` (the shipped
configuration end to end, cache included); ``engine_speedup_cold``
isolates the simulation-engine gain without any cache reuse across
invocations.  Simulated-instruction throughput comes from the runner's
telemetry counters.

Usage::

    PYTHONPATH=src python tools/bench_perf.py --quick
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def build_suite(small: bool, jobs: int):
    """The timed figure experiments (Fig. 9 is excluded: multicore runs
    share a DRAM channel and are neither cached nor parallelised)."""
    from repro.bench import experiments as E
    from repro.machine import A53, A57, HASWELL, XEON_PHI
    suite = [
        ("fig2", lambda: E.fig2_prefetch_schemes(small=small)),
        ("fig4a", lambda: E.fig4_system(HASWELL, small=small,
                                        jobs=jobs)),
        ("fig4b", lambda: E.fig4_system(A57, small=small, jobs=jobs)),
        ("fig4c", lambda: E.fig4_system(A53, small=small, jobs=jobs)),
        ("fig4d", lambda: E.fig4_system(XEON_PHI, include_icc=True,
                                        small=small, jobs=jobs)),
        ("fig5", lambda: E.fig5_stride_contribution(small=small,
                                                    jobs=jobs)),
        ("fig6", lambda: E.fig6_lookahead_sweep(small=small,
                                                jobs=jobs)),
        ("fig7", lambda: E.fig7_stagger_depth(small=small, jobs=jobs)),
        ("fig8", lambda: E.fig8_instruction_overhead(small=small)),
        ("fig10", lambda: E.fig10_huge_pages(small=small)),
    ]
    return suite


def run_phase(suite, fastpath: bool, cache_dir: str | None) -> dict:
    """Run every figure once under one engine configuration."""
    from repro.bench.runner import TELEMETRY, reset_telemetry
    os.environ["REPRO_SIM_FASTPATH"] = "1" if fastpath else "0"
    if cache_dir is None:
        os.environ["REPRO_SIM_CACHE"] = "0"
    else:
        os.environ["REPRO_SIM_CACHE"] = "1"
        os.environ["REPRO_SIM_CACHE_DIR"] = cache_dir
    reset_telemetry()
    walls = {}
    total = 0.0
    for name, fn in suite:
        t0 = time.perf_counter()
        fn()
        walls[name] = round(time.perf_counter() - t0, 3)
        total += walls[name]
        print(f"  {name:6s} {walls[name]:8.2f}s", flush=True)
    return {"figures": walls, "total_s": round(total, 3),
            "telemetry": dict(TELEMETRY)}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down workloads (CI smoke mode)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for independent runs "
                             "(default 1: keeps telemetry in-process)")
    parser.add_argument("--output", default="BENCH_sim_throughput.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    suite = build_suite(small=args.quick, jobs=args.jobs)
    saved = {k: os.environ.get(k) for k in
             ("REPRO_SIM_FASTPATH", "REPRO_SIM_CACHE",
              "REPRO_SIM_CACHE_DIR")}
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        print("slow path (REPRO_SIM_FASTPATH=0, no cache):", flush=True)
        slow = run_phase(suite, fastpath=False, cache_dir=None)
        print("fast path, cold cache:", flush=True)
        cold = run_phase(suite, fastpath=True, cache_dir=cache_dir)
        print("fast path, warm cache:", flush=True)
        warm = run_phase(suite, fastpath=True, cache_dir=cache_dir)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value

    sim_insts = slow["telemetry"]["simulated_instructions"]
    report = {
        "generated_by": "tools/bench_perf.py",
        "quick": args.quick,
        "jobs": args.jobs,
        "figures": {
            name: {"slow_s": slow["figures"][name],
                   "fast_cold_s": cold["figures"][name],
                   "fast_warm_s": warm["figures"][name]}
            for name, _ in suite},
        "suite": {
            "slow_s": slow["total_s"],
            "fast_cold_s": cold["total_s"],
            "fast_warm_s": warm["total_s"],
            "engine_speedup_cold": round(
                slow["total_s"] / cold["total_s"], 2),
            "speedup": round(slow["total_s"] / warm["total_s"], 2),
            "speedup_definition": (
                "slow_s / fast_warm_s: end-to-end wall time of the "
                "figure suite under the shipped fast configuration "
                "(fast path + populated run cache) vs the slow path"),
        },
        "simulated_instructions": {
            "suite": sim_insts,
            "per_sec_slow": round(sim_insts / slow["total_s"]),
            "per_sec_fast_cold": round(
                cold["telemetry"]["simulated_instructions"]
                / cold["total_s"]),
            "cached_runs_cold": cold["telemetry"]["cached_runs"],
            "simulated_runs_cold": cold["telemetry"]["simulated_runs"],
            "cached_runs_warm": warm["telemetry"]["cached_runs"],
            "simulated_runs_warm": warm["telemetry"]["simulated_runs"],
        },
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    s = report["suite"]
    print(f"\nsuite: slow {s['slow_s']}s | fast cold {s['fast_cold_s']}s "
          f"(engine {s['engine_speedup_cold']}x) | fast warm "
          f"{s['fast_warm_s']}s ({s['speedup']}x end-to-end)")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
