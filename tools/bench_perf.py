#!/usr/bin/env python
"""Benchmark-suite throughput harness: engine tiers vs slow reference.

Times the figure experiments under each execution tier and writes
``BENCH_sim_throughput.json``:

* **slow** — ``REPRO_SIM_FASTPATH=0`` (reference interpreter and full
  hierarchy walks), no result cache;
* **fast cold** — fused-segment fast path on, trace JIT off, **no
  result cache** (cold phases always bypass the disk cache, so every
  figure's time reflects real simulation — previously Fig. 8 appeared
  ~90x faster cold because it re-used Fig. 4(a)'s cached runs);
* **jit cold** — fast path + ``REPRO_SIM_TRACEJIT=1``, no cache: the
  trace-JIT tier compiling hot loops to specialized Python;
* **vector cold** — fast path + trace JIT + ``REPRO_SIM_VECTOR=1``, no
  cache: hot single-block loops whose address streams are dependence-
  free run as numpy batches (``repro.machine.vectorsim``);
* **populate / warm** — the shipped configuration (fast path + disk
  cache) run twice: once against an empty cache, then again fully warm,
  i.e. the steady-state "re-run after changing nothing" developer loop.

Each phase records wall time and simulated instructions per figure, so
the report carries instructions/s for every engine tier plus per-figure
speedup ratios: ``engine_speedup_cold`` (slow / fast cold),
``tracejit_speedup_cold`` (fast cold / jit cold), and
``vector_speedup_cold`` (jit cold / vector cold).

``--check BASELINE.json`` re-validates the speedup *ratios* against a
committed baseline (20% tolerance by default).  Ratios — not absolute
seconds — are compared because both sides of each ratio are measured on
the same machine in the same invocation, which makes the check portable
across differently-provisioned CI runners.

Usage::

    PYTHONPATH=src python tools/bench_perf.py --quick
    PYTHONPATH=src python tools/bench_perf.py --quick \
        --figures fig2,fig5,fig8 --check BENCH_sim_throughput.json
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

#: Ratio metrics validated by ``--check`` (per figure and suite-wide;
#: metrics absent on one side are skipped, so the per-figure checks
#: ignore the suite-only ``total_engine_speedup_cold``).
CHECK_METRICS = ("engine_speedup_cold", "tracejit_speedup_cold",
                 "vector_speedup_cold", "total_engine_speedup_cold")


def build_suite(small: bool, jobs: int):
    """The timed figure experiments (Fig. 9 is excluded: multicore runs
    share a DRAM channel and are neither cached nor parallelised)."""
    from repro.bench import experiments as E
    from repro.machine import A53, A57, HASWELL, XEON_PHI
    suite = [
        ("fig2", lambda: E.fig2_prefetch_schemes(small=small)),
        ("fig4a", lambda: E.fig4_system(HASWELL, small=small,
                                        jobs=jobs)),
        ("fig4b", lambda: E.fig4_system(A57, small=small, jobs=jobs)),
        ("fig4c", lambda: E.fig4_system(A53, small=small, jobs=jobs)),
        ("fig4d", lambda: E.fig4_system(XEON_PHI, include_icc=True,
                                        small=small, jobs=jobs)),
        ("fig5", lambda: E.fig5_stride_contribution(small=small,
                                                    jobs=jobs)),
        ("fig6", lambda: E.fig6_lookahead_sweep(small=small,
                                                jobs=jobs)),
        ("fig7", lambda: E.fig7_stagger_depth(small=small, jobs=jobs)),
        ("fig8", lambda: E.fig8_instruction_overhead(small=small)),
        ("fig10", lambda: E.fig10_huge_pages(small=small)),
    ]
    return suite


def run_phase(suite, fastpath: bool, tracejit: bool,
              cache_dir: str | None, vector: bool = False) -> dict:
    """Run every figure once under one engine configuration.

    Returns per-figure wall seconds and simulated-instruction deltas
    (the latter are zero for runs served from the disk cache).
    """
    from repro.bench.runner import TELEMETRY, reset_telemetry
    os.environ["REPRO_SIM_FASTPATH"] = "1" if fastpath else "0"
    os.environ["REPRO_SIM_TRACEJIT"] = "1" if tracejit else "0"
    os.environ["REPRO_SIM_VECTOR"] = "1" if vector else "0"
    if cache_dir is None:
        os.environ["REPRO_SIM_CACHE"] = "0"
    else:
        os.environ["REPRO_SIM_CACHE"] = "1"
        os.environ["REPRO_SIM_CACHE_DIR"] = cache_dir
    reset_telemetry()
    walls = {}
    insts = {}
    total = 0.0
    for name, fn in suite:
        before = TELEMETRY["simulated_instructions"]
        t0 = time.perf_counter()
        fn()
        walls[name] = round(time.perf_counter() - t0, 3)
        insts[name] = TELEMETRY["simulated_instructions"] - before
        total += walls[name]
        print(f"  {name:6s} {walls[name]:8.2f}s", flush=True)
    return {"figures": walls, "instructions": insts,
            "total_s": round(total, 3), "telemetry": dict(TELEMETRY)}


def host_metadata() -> dict:
    """Who/where/when stamp for the report.

    The bench trajectory is only comparable across boxes when each
    report says what produced it: interpreter version, platform, CPU
    count, the measured commit, and a UTC timestamp.
    """
    import datetime
    import platform
    import subprocess
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent.parent,
            capture_output=True, text=True, timeout=10,
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        sha = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git_sha": sha,
        "timestamp_utc": datetime.datetime.now(
            datetime.timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        # Ambient tier gates at report time (the phases above pin their
        # own values; this records what the *caller's* environment was,
        # so a report produced under unusual gate settings says so).
        "tier_env": {key: os.environ.get(key) for key in
                     ("REPRO_SIM_FASTPATH", "REPRO_SIM_TRACEJIT",
                      "REPRO_SIM_TRACEJIT_THRESHOLD",
                      "REPRO_SIM_VECTOR")},
    }


def _ratio(num: float, den: float) -> float:
    return round(num / den, 2) if den else 0.0


def _ips(insts: int, wall: float) -> int:
    return round(insts / wall) if wall else 0


def build_report(suite, args, slow, cold, jit, vec, populate,
                 warm) -> dict:
    """Assemble the JSON report from the six phase results."""
    figures = {}
    for name, _ in suite:
        insts = slow["instructions"][name]
        figures[name] = {
            "slow_s": slow["figures"][name],
            "fast_cold_s": cold["figures"][name],
            "jit_cold_s": jit["figures"][name],
            "vector_cold_s": vec["figures"][name],
            "fast_warm_s": warm["figures"][name],
            "simulated_instructions": insts,
            "ips_slow": _ips(insts, slow["figures"][name]),
            "ips_fast_cold": _ips(cold["instructions"][name],
                                  cold["figures"][name]),
            "ips_jit_cold": _ips(jit["instructions"][name],
                                 jit["figures"][name]),
            "ips_vector_cold": _ips(vec["instructions"][name],
                                    vec["figures"][name]),
            "engine_speedup_cold": _ratio(slow["figures"][name],
                                          cold["figures"][name]),
            "tracejit_speedup_cold": _ratio(cold["figures"][name],
                                            jit["figures"][name]),
            "vector_speedup_cold": _ratio(jit["figures"][name],
                                          vec["figures"][name]),
        }
    sim_insts = slow["telemetry"]["simulated_instructions"]
    return {
        "generated_by": "tools/bench_perf.py",
        "host": host_metadata(),
        "quick": args.quick,
        "jobs": args.jobs,
        "figures": figures,
        "suite": {
            "slow_s": slow["total_s"],
            "fast_cold_s": cold["total_s"],
            "jit_cold_s": jit["total_s"],
            "vector_cold_s": vec["total_s"],
            "populate_s": populate["total_s"],
            "fast_warm_s": warm["total_s"],
            "engine_speedup_cold": _ratio(slow["total_s"],
                                          cold["total_s"]),
            "tracejit_speedup_cold": _ratio(cold["total_s"],
                                            jit["total_s"]),
            "vector_speedup_cold": _ratio(jit["total_s"],
                                          vec["total_s"]),
            "vector_note": (
                "the vectorized batch tier was sized for 3x over jit "
                "cold on fig4a-d; the measured ratio above falls "
                "short structurally — the paper's indirect-access "
                "workloads are dominated by pointer-chasing, "
                "multi-block, and short-row loops that stay on (or "
                "adaptively retire to) the scalar trace tier; see "
                "EXPERIMENTS.md 'Simulator throughput'"),
            "total_engine_speedup_cold": _ratio(slow["total_s"],
                                                vec["total_s"]),
            "speedup": _ratio(slow["total_s"], warm["total_s"]),
            "speedup_definition": (
                "slow_s / fast_warm_s: end-to-end wall time of the "
                "figure suite under the shipped fast configuration "
                "(fast path + populated run cache) vs the slow path; "
                "engine_speedup_cold, tracejit_speedup_cold, and "
                "vector_speedup_cold isolate the fused tier, the "
                "trace-JIT tier, and the vectorized batch tier with "
                "the disk cache bypassed"),
        },
        "simulated_instructions": {
            "suite": sim_insts,
            "per_sec_slow": _ips(sim_insts, slow["total_s"]),
            "per_sec_fast_cold": _ips(
                cold["telemetry"]["simulated_instructions"],
                cold["total_s"]),
            "per_sec_jit_cold": _ips(
                jit["telemetry"]["simulated_instructions"],
                jit["total_s"]),
            "per_sec_vector_cold": _ips(
                vec["telemetry"]["simulated_instructions"],
                vec["total_s"]),
            "simulated_runs_cold": cold["telemetry"]["simulated_runs"],
            "cached_runs_warm": warm["telemetry"]["cached_runs"],
            "simulated_runs_warm": warm["telemetry"]["simulated_runs"],
        },
    }


def check_report(report: dict, baseline: dict, tolerance: float) -> int:
    """Compare speedup ratios against a committed baseline.

    A metric regresses when it falls below ``baseline * (1 -
    tolerance)``; improvements never fail.  When both reports cover the
    same figure set, the *suite-level* aggregates are the gate (they
    average out per-figure wall noise) and per-figure regressions only
    warn; with a ``--figures`` subset there is no suite aggregate, so
    the per-figure checks gate directly (noisier — prefer long-running
    figures for subsets).  Returns the number of gating failures.
    """
    failures = 0

    def check_one(scope: str, metric: str, current, base,
                  gating: bool) -> None:
        nonlocal failures
        if not isinstance(base, (int, float)) or base <= 0:
            return
        floor = base * (1.0 - tolerance)
        if current >= floor:
            status = "ok"
        elif gating:
            status = "REGRESSION"
            failures += 1
        else:
            status = "warn (suite gates)"
        print(f"  {scope:8s} {metric:24s} {current:6.2f} vs baseline "
              f"{base:6.2f} (floor {floor:.2f}) {status}")

    full = set(report["figures"]) == set(baseline.get("figures", {}))
    shared = [name for name in report["figures"]
              if name in baseline.get("figures", {})]
    print(f"check: {len(shared)} figure(s) vs baseline "
          f"(tolerance {tolerance:.0%}):")
    for name in shared:
        for metric in CHECK_METRICS:
            check_one(name, metric,
                      report["figures"][name].get(metric, 0.0),
                      baseline["figures"][name].get(metric),
                      gating=not full)
    if full:
        for metric in CHECK_METRICS:
            check_one("suite", metric,
                      report["suite"].get(metric, 0.0),
                      baseline.get("suite", {}).get(metric),
                      gating=True)
    else:
        print("  (figure subset: no suite aggregate, figures gate)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down workloads (CI smoke mode)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for independent runs "
                             "(default 1: keeps telemetry in-process)")
    parser.add_argument("--figures", metavar="LIST",
                        help="comma-separated figure subset (e.g. "
                             "fig2,fig5,fig8) for smoke runs")
    parser.add_argument("--check", metavar="BASELINE",
                        help="validate speedup ratios against a "
                             "committed baseline JSON; exit 1 on "
                             "regression")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed relative regression for --check "
                             "(default 0.20)")
    parser.add_argument("--output", default="BENCH_sim_throughput.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    suite = build_suite(small=args.quick, jobs=args.jobs)
    if args.figures:
        wanted = [f.strip().lower() for f in args.figures.split(",")
                  if f.strip()]
        known = {name for name, _ in suite}
        unknown = [f for f in wanted if f not in known]
        if unknown:
            print(f"error: unknown figure(s) {', '.join(unknown)}; "
                  f"available: {', '.join(sorted(known))}",
                  file=sys.stderr)
            return 2
        suite = [(name, fn) for name, fn in suite if name in wanted]
    saved = {k: os.environ.get(k) for k in
             ("REPRO_SIM_FASTPATH", "REPRO_SIM_TRACEJIT",
              "REPRO_SIM_VECTOR", "REPRO_SIM_CACHE",
              "REPRO_SIM_CACHE_DIR")}
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        print("slow path (REPRO_SIM_FASTPATH=0, no cache):", flush=True)
        slow = run_phase(suite, fastpath=False, tracejit=False,
                         cache_dir=None)
        print("fast path, cold (no cache):", flush=True)
        cold = run_phase(suite, fastpath=True, tracejit=False,
                         cache_dir=None)
        print("trace JIT, cold (no cache):", flush=True)
        jit = run_phase(suite, fastpath=True, tracejit=True,
                        cache_dir=None)
        print("vector tier, cold (no cache):", flush=True)
        vec = run_phase(suite, fastpath=True, tracejit=True,
                        cache_dir=None, vector=True)
        print("fast path, populating cache:", flush=True)
        populate = run_phase(suite, fastpath=True, tracejit=False,
                             cache_dir=cache_dir)
        print("fast path, warm cache:", flush=True)
        warm = run_phase(suite, fastpath=True, tracejit=False,
                         cache_dir=cache_dir)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value

    report = build_report(suite, args, slow, cold, jit, vec, populate,
                          warm)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    s = report["suite"]
    print(f"\nsuite: slow {s['slow_s']}s | fast cold {s['fast_cold_s']}s "
          f"(engine {s['engine_speedup_cold']}x) | jit cold "
          f"{s['jit_cold_s']}s (tracejit {s['tracejit_speedup_cold']}x) "
          f"| vector cold {s['vector_cold_s']}s (vector "
          f"{s['vector_speedup_cold']}x, total "
          f"{s['total_engine_speedup_cold']}x) | fast warm "
          f"{s['fast_warm_s']}s ({s['speedup']}x end-to-end)")
    print(f"wrote {args.output}")

    if args.check:
        try:
            baseline = json.loads(Path(args.check).read_text())
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline {args.check}: {exc}",
                  file=sys.stderr)
            return 2
        if check_report(report, baseline, args.tolerance):
            print("bench check FAILED", file=sys.stderr)
            return 1
        print("bench check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
