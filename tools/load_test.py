#!/usr/bin/env python
"""Load-test harness for ``repro serve``: the serving benchmark.

Drives hundreds of concurrent requests (default 1000 requests at
concurrency 500) with a *duplicate-heavy* mix — a small set of unique
jobs repeated many times, the AMC-style evolving-workload setting where
most traffic re-asks slightly-stale questions — and checks three
properties:

1. **Correctness**: every 200 answer's ``result`` section is
   byte-identical (canonical JSON) to the same run performed directly
   through :func:`repro.bench.runner.run_variant`, i.e. exactly what
   ``repro bench`` computes;
2. **Sharing**: the duplicate mix must produce coalesce hits and CAS
   hits (> 0 each) — many clients, one simulation substrate;
3. **Latency**: p50/p95/p99 request latency is measured and archived.

Writes ``BENCH_serve_throughput.json`` (schema
``repro-serve-bench-v1``) and exits non-zero on any mismatch, transport
error, or missing sharing.  With ``--spawn`` the harness starts its own
``repro serve`` subprocess on a free port and tears it down after.

Usage::

    PYTHONPATH=src python tools/load_test.py --spawn --small
    PYTHONPATH=src python tools/load_test.py --host H --port P \
        --requests 1000 --concurrency 500 --unique 10
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import random
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.metrics import nearest_rank  # noqa: E402
from repro.serve.client import AsyncClient, get_metrics  # noqa: E402


def canonical(value) -> str:
    """Canonical JSON form used for byte-identity comparison."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def build_mix(unique: int, total: int, small: bool,
              seed: int = 20170204) -> tuple[list[dict], list[int]]:
    """A duplicate-heavy request mix.

    Returns ``(unique_requests, schedule)`` where ``schedule`` is a
    shuffled list of indices into ``unique_requests`` of length
    ``total``.  The unique set cycles workloads × variants × machines.
    """
    workloads = ["is", "cg", "ra", "hj2", "hj8"]
    variants = ["plain", "auto"]
    machines = ["Haswell", "A53"]
    pool = []
    for machine in machines:
        for variant in variants:
            for workload in workloads:
                pool.append({
                    "schema": "repro-serve-request-v1",
                    "kind": "simulate", "workload": workload,
                    "small": small, "variant": variant,
                    "machine": machine, "lookahead": 64,
                    "validate": True, "tier": "auto", "include": []})
    uniques = pool[:max(1, min(unique, len(pool)))]
    rng = random.Random(seed)
    schedule = [i % len(uniques) for i in range(total)]
    rng.shuffle(schedule)
    return uniques, schedule


def direct_results(uniques: list[dict]) -> list[str]:
    """Canonical result JSON per unique request, via the direct bench
    path (``run_variant`` — the same call ``repro bench`` makes)."""
    import dataclasses

    from repro.bench.runner import run_variant
    from repro.machine.configs import system_by_name
    from repro.passes.prefetch import PrefetchOptions
    from repro.workloads import workload_by_name

    expected = []
    for req in uniques:
        workload = workload_by_name(req["workload"],
                                    small=req["small"])
        machine = system_by_name(req["machine"])
        options = PrefetchOptions(lookahead=req["lookahead"])
        result = run_variant(workload, req["variant"], machine,
                             lookahead=req["lookahead"],
                             options=options, validate=True,
                             cache=False)
        expected.append(canonical(dataclasses.asdict(result)))
    return expected


async def run_load(host: str, port: int, uniques: list[dict],
                   schedule: list[int], expected: list[str],
                   concurrency: int) -> dict:
    """Fire the schedule at the server; returns the raw measurements."""
    semaphore = asyncio.Semaphore(concurrency)
    latencies: list[float] = []
    mismatches: list[str] = []
    errors: list[str] = []
    statuses: dict[str, int] = {}

    async def one(index: int, which: int) -> None:
        async with semaphore:
            client = AsyncClient(host, port)
            start = time.perf_counter()
            try:
                status, body = await client.submit(uniques[which])
            except Exception as exc:
                errors.append(f"request {index}: "
                              f"{type(exc).__name__}: {exc}")
                return
            finally:
                await client.close()
            latencies.append((time.perf_counter() - start) * 1e3)
            statuses[str(status)] = statuses.get(str(status), 0) + 1
            if status != 200:
                errors.append(f"request {index}: HTTP {status}: "
                              f"{body.get('error', body)}")
                return
            got = canonical(body.get("result"))
            if got != expected[which]:
                mismatches.append(
                    f"request {index} (unique {which}): served result "
                    f"differs from direct run_variant")

    start = time.perf_counter()
    await asyncio.gather(*(one(i, which)
                           for i, which in enumerate(schedule)))
    wall_s = time.perf_counter() - start
    return {"latencies": latencies, "mismatches": mismatches,
            "errors": errors, "statuses": statuses, "wall_s": wall_s}


def percentile(ordered: list[float], pct: float) -> float:
    """Nearest-rank percentile (ceil-based; see repro.obs.metrics —
    the old round()-based form under-reported, e.g. p50 of 5 samples
    answered the 2nd, not the 3rd)."""
    return nearest_rank(ordered, pct)


def git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        ).stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def spawn_server(workers: int | None, store_dir: str) -> tuple:
    """Start ``repro serve`` on a free port; returns (proc, host, port)."""
    cmd = [sys.executable, "-m", "repro", "serve", "--port", "0",
           "--cache-dir", store_dir]
    if workers:
        cmd += ["--workers", str(workers)]
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(Path(__file__).resolve().parent.parent
                             / "src")
                         + os.pathsep + env.get("PYTHONPATH", ""))
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE, text=True,
                            env=env)
    line = proc.stdout.readline()
    # "repro serve listening on 127.0.0.1:PORT (...)"
    try:
        address = line.split("listening on ")[1].split()[0]
        host, port = address.rsplit(":", 1)
        return proc, host, int(port)
    except (IndexError, ValueError):
        proc.terminate()
        raise SystemExit(f"could not parse server banner: {line!r}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787)
    parser.add_argument("--spawn", action="store_true",
                        help="start a repro serve subprocess on a free "
                             "port for the duration of the test")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for --spawn")
    parser.add_argument("--requests", type=int, default=1000)
    parser.add_argument("--concurrency", type=int, default=500)
    parser.add_argument("--unique", type=int, default=10,
                        help="distinct jobs in the mix (duplicate-"
                             "heavy: requests >> unique)")
    parser.add_argument("--small", action="store_true",
                        help="scaled-down workloads (CI sizes)")
    parser.add_argument("--output", default="BENCH_serve_throughput.json")
    args = parser.parse_args()

    uniques, schedule = build_mix(args.unique, args.requests,
                                  args.small)
    print(f"load_test: {len(uniques)} unique jobs × "
          f"{args.requests} requests at concurrency "
          f"{args.concurrency}")
    print("load_test: computing direct reference results "
          "(run_variant, no cache)...")
    expected = direct_results(uniques)

    proc = None
    host, port = args.host, args.port
    store_dir = None
    if args.spawn:
        import tempfile
        store_dir = tempfile.mkdtemp(prefix="repro-serve-cas-")
        proc, host, port = spawn_server(args.workers, store_dir)
        print(f"load_test: spawned repro serve on {host}:{port} "
              f"(store {store_dir})")
    try:
        measured = asyncio.run(run_load(host, port, uniques, schedule,
                                        expected, args.concurrency))
        metrics = get_metrics(host, port)
    finally:
        if proc is not None:
            proc.terminate()
            proc.wait(timeout=10)

    ordered = sorted(measured["latencies"])
    ok = measured["statuses"].get("200", 0)
    coalesce_hits = metrics["coalesce_hits"]
    cas_hits = metrics["cas"]["hits"]
    report = {
        "schema": "repro-serve-bench-v1",
        "host": {"python": platform.python_version(),
                 "platform": platform.platform(),
                 "cpu_count": os.cpu_count(),
                 "git_sha": git_sha(),
                 "timestamp_utc": time.strftime(
                     "%Y-%m-%dT%H:%M:%SZ", time.gmtime())},
        "config": {"requests": args.requests,
                   "concurrency": args.concurrency,
                   "unique": len(uniques), "small": args.small,
                   "spawned": bool(args.spawn),
                   "server_workers": metrics["workers"]["count"]},
        "results": {
            "ok": ok,
            "statuses": measured["statuses"],
            "errors": len(measured["errors"]),
            "mismatches": len(measured["mismatches"]),
            "wall_s": round(measured["wall_s"], 3),
            "requests_per_s": round(
                args.requests / measured["wall_s"], 2)
                if measured["wall_s"] else 0.0,
            "coalesce_hits": coalesce_hits,
            "cas_hits": cas_hits,
            "coalesce_hit_rate": round(
                coalesce_hits / args.requests, 4),
            "cas_hit_rate": round(cas_hits / args.requests, 4),
            "latency_ms": {
                "p50": round(percentile(ordered, 50), 3),
                "p95": round(percentile(ordered, 95), 3),
                "p99": round(percentile(ordered, 99), 3),
                "max": round(ordered[-1], 3) if ordered else 0.0},
            "jobs_executed": metrics["jobs"]["executed"],
            "worker_restarts": metrics["workers"]["restarts"],
            # Server-side per-stage p50/p99 from the labeled metrics
            # registry (admission/probe/queue/worker/compile/simulate/
            # store) — where a request's time actually went.
            "stage_latency_ms": {
                stage: {"count": row["count"], "p50": row["p50"],
                        "p99": row["p99"], "max": row["max"]}
                for stage, row in sorted(
                    metrics.get("stages", {}).items())},
        },
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(json.dumps(report["results"], indent=2))
    print(f"load_test: report written to {args.output}")

    failures = []
    if measured["errors"]:
        failures.append(f"{len(measured['errors'])} transport/HTTP "
                        f"errors (first: {measured['errors'][0]})")
    if measured["mismatches"]:
        failures.append(f"{len(measured['mismatches'])} result "
                        f"mismatches vs direct run_variant "
                        f"(first: {measured['mismatches'][0]})")
    if ok != args.requests:
        failures.append(f"only {ok}/{args.requests} requests got 200")
    if coalesce_hits <= 0:
        failures.append("coalesce hits == 0 on a duplicate-heavy mix")
    if cas_hits <= 0:
        failures.append("CAS hits == 0 on a duplicate-heavy mix")
    if failures:
        for failure in failures:
            print(f"load_test: FAIL — {failure}", file=sys.stderr)
        return 1
    print(f"load_test: PASS — {ok} requests, 0 mismatches, "
          f"coalesce {coalesce_hits}, CAS {cas_hits}, "
          f"p99 {report['results']['latency_ms']['p99']}ms")
    return 0


if __name__ == "__main__":
    sys.exit(main())
