#!/usr/bin/env python
"""Schema and determinism gate for the optimization-remarks stream.

Builds every quick-suite workload's ``auto`` variant with remarks
collected — twice, independently — and asserts the remark contract:

* every remark serialises to a dict that passes
  :func:`repro.remarks.validate_remark_dict` (unknown kinds or names
  are hard failures — extend ``KNOWN_REMARKS`` when adding one);
* the ``repro-remarks-v1`` stream round-trips byte-identically
  (emit → parse → re-emit);
* two independent compilations produce identical canonical streams
  (deterministic ordering; only ``wall_us`` may differ).

With ``--artifact FILE`` it additionally validates a
``repro-explain-remarks-v1`` file written by
``repro explain --remarks-out`` (as CI does) against the same rules.

Usage::

    PYTHONPATH=src python tools/check_remarks.py
    PYTHONPATH=src python tools/check_remarks.py --artifact remarks.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def collect_streams(small: bool = True) -> dict[str, str]:
    """workload name -> remarks stream for the quick-suite auto builds."""
    from repro.remarks.join import collect_remarks
    from repro.remarks.serialize import dumps_stream
    from repro.workloads import paper_benchmarks

    streams = {}
    for workload in paper_benchmarks(small=small):
        _module, emitter = collect_remarks(workload, "auto")
        streams[workload.name] = dumps_stream(emitter.remarks)
    return streams


def check_stream(name: str, stream: str) -> int:
    """Validate + round-trip one stream; returns its remark count."""
    from repro.remarks.serialize import dumps_stream, parse_stream

    remarks = parse_stream(stream)  # validates schema line by line
    again = dumps_stream(remarks)
    assert again == stream, (
        f"{name}: remark stream does not round-trip byte-identically")
    return len(remarks)


def check_artifact(path: str) -> None:
    """Validate a ``repro explain --remarks-out`` artifact file."""
    with open(path) as handle:
        artifact = json.load(handle)
    schema = artifact.get("schema")
    assert schema == "repro-explain-remarks-v1", (
        f"unexpected artifact schema {schema!r}")
    for name, stream in artifact["workloads"].items():
        count = check_stream(f"artifact:{name}", stream)
        print(f"  artifact {name}: {count} remarks ok")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--artifact", metavar="FILE",
                        help="also validate a --remarks-out JSON file")
    parser.add_argument("--full", action="store_true",
                        help="full-size workloads (default: quick)")
    args = parser.parse_args(argv)

    from repro.remarks.serialize import canonical_stream

    first = collect_streams(small=not args.full)
    second = collect_streams(small=not args.full)
    failures = 0
    for name, stream in first.items():
        count = check_stream(name, stream)
        a = canonical_stream(stream)
        b = canonical_stream(second[name])
        if a != b:
            print(f"FAIL {name}: remark stream differs between two "
                  "independent compilations", file=sys.stderr)
            failures += 1
            continue
        print(f"  {name}: {count} remarks, deterministic, "
              "round-trips")
    if args.artifact:
        check_artifact(args.artifact)
    if failures:
        return 1
    print(f"ok: {len(first)} workloads checked")
    return 0


if __name__ == "__main__":
    sys.exit(main())
