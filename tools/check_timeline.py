#!/usr/bin/env python
"""Schema and determinism gate for the flight-recorder trace export.

Runs ``repro timeline`` over the quick suite in-process — twice,
independently, with the run cache off — and asserts the flight
recorder's contract:

* every run carries a ``repro-timeline-v1`` snapshot whose windows are
  contiguous on the simulated-cycle axis and whose per-window deltas
  sum to the run totals;
* the assembled Chrome trace-event document is structurally valid
  (``repro-timeline-trace-v1``: every event has ``ph``/``pid``/
  ``name``, counters and window spans on the simulation pid, wall
  spans on the pipeline pid);
* two independent runs produce byte-identical traces under
  :func:`repro.telemetry.perfetto.canonical_json` (wall-clock
  timestamps zeroed; everything else must already be deterministic).

With ``--artifact FILE`` it additionally validates a trace written by
``repro timeline --perfetto`` (as CI does) against the same structural
rules.

Usage::

    PYTHONPATH=src python tools/check_timeline.py
    PYTHONPATH=src python tools/check_timeline.py --artifact trace.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

#: Trace-event phases the exporter is allowed to emit.
_ALLOWED_PHASES = {"M", "X", "C", "i"}


def collect_trace(small: bool = True, window: int = 5_000) -> dict:
    """One full timeline pass over the quick suite: rows + spans →
    trace document (run cache off, serial, spans recorded)."""
    from repro.machine import HASWELL
    from repro.telemetry.perfetto import build_trace
    from repro.telemetry.report import timeline_rows
    from repro.telemetry.spans import SpanRecorder, recording
    from repro.workloads import paper_benchmarks

    workloads = paper_benchmarks(small=small)
    recorder = SpanRecorder()
    with recording(recorder):
        rows = timeline_rows(workloads, HASWELL, variant="auto",
                             window=window, cache=False)
    for row in rows:
        check_snapshot(row["workload"], row["timeline"], row["cycles"],
                       row["instructions"])
    return build_trace(rows, recorder,
                       meta={"machine": HASWELL.name, "variant": "auto"})


def check_snapshot(name: str, snapshot: dict | None, cycles: float,
                   instructions: int) -> None:
    """Validate one run's ``repro-timeline-v1`` snapshot."""
    assert snapshot, f"{name}: run carried no timeline snapshot"
    assert snapshot["schema"] == "repro-timeline-v1", (
        f"{name}: unexpected snapshot schema {snapshot['schema']!r}")
    windows = snapshot["windows"]
    assert windows, f"{name}: no windows recorded"
    prev_end = 0.0
    d_cycles = 0.0
    d_instr = 0
    for w in windows:
        assert w["start_cycle"] == prev_end, (
            f"{name}: window {w['index']} starts at {w['start_cycle']}"
            f", previous ended at {prev_end}")
        prev_end = w["end_cycle"]
        d_cycles += w["cycles"]
        d_instr += w["instructions"]
        for level, stats in w["levels"].items():
            assert stats["misses"] >= 0 and stats["hits"] >= 0, (
                f"{name}: negative delta in {level}")
    assert d_cycles == prev_end, (
        f"{name}: window cycle deltas sum to {d_cycles}, "
        f"last edge is {prev_end}")
    assert abs(d_cycles - cycles) < 1e-9, (
        f"{name}: windows cover {d_cycles} cycles, run took {cycles}")
    assert d_instr == instructions, (
        f"{name}: windows cover {d_instr} instructions, "
        f"run executed {instructions}")
    totals = snapshot["totals"]
    assert totals["windows"] == len(windows)


def check_trace(trace: dict) -> dict[str, int]:
    """Validate trace-document structure; returns per-phase counts."""
    from repro.telemetry.perfetto import (PIPELINE_PID, SIM_PID,
                                          TRACE_SCHEMA)

    schema = trace.get("otherData", {}).get("schema")
    assert schema == TRACE_SCHEMA, (
        f"unexpected trace schema {schema!r}")
    events = trace.get("traceEvents")
    assert isinstance(events, list) and events, "no traceEvents"
    counts: dict[str, int] = {}
    for event in events:
        ph = event.get("ph")
        assert ph in _ALLOWED_PHASES, f"unknown phase {ph!r}: {event}"
        assert event.get("pid") in (SIM_PID, PIPELINE_PID), (
            f"unknown pid: {event}")
        assert isinstance(event.get("name"), str) and event["name"], (
            f"unnamed event: {event}")
        if ph in ("X", "C", "i"):
            assert isinstance(event.get("ts"), (int, float)), (
                f"missing ts: {event}")
            assert isinstance(event.get("args"), dict), (
                f"missing args: {event}")
        if ph == "C":
            assert event["pid"] == SIM_PID, (
                f"counter off the simulation pid: {event}")
        if ph == "i":
            assert event["pid"] == PIPELINE_PID, (
                f"instant off the pipeline pid: {event}")
        counts[ph] = counts.get(ph, 0) + 1
    assert counts.get("C", 0) > 0, "no counter events"
    assert counts.get("X", 0) > 0, "no span events"
    return counts


def check_artifact(path: str) -> None:
    """Validate a ``repro timeline --perfetto`` artifact file."""
    with open(path) as handle:
        trace = json.load(handle)
    counts = check_trace(trace)
    total = sum(counts.values())
    print(f"  artifact {path}: {total} events ok "
          f"({', '.join(f'{k}={v}' for k, v in sorted(counts.items()))})")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--artifact", metavar="FILE",
                        help="also validate a --perfetto JSON file")
    parser.add_argument("--full", action="store_true",
                        help="full-size workloads (default: quick)")
    args = parser.parse_args(argv)

    from repro.telemetry.perfetto import canonical_json

    # The disk cache is forced off per-call, but be explicit for the
    # subprocesses CI may add later.
    os.environ["REPRO_SIM_CACHE"] = "0"
    first = collect_trace(small=not args.full)
    counts = check_trace(first)
    print(f"  trace: {sum(counts.values())} events "
          f"({', '.join(f'{k}={v}' for k, v in sorted(counts.items()))})")
    second = collect_trace(small=not args.full)
    if canonical_json(first) != canonical_json(second):
        print("FAIL: two independent timeline passes differ under "
              "canonicalization", file=sys.stderr)
        return 1
    print("  determinism: two passes byte-identical (canonical form)")
    if args.artifact:
        check_artifact(args.artifact)
    print("ok: timeline trace checked")
    return 0


if __name__ == "__main__":
    sys.exit(main())
