"""Quickstart: automatic software prefetching for an indirect kernel.

Builds the paper's motivating kernel (``buckets[keys[i]]++``), runs the
automatic prefetch pass, shows the IR before and after, and measures the
simulated speedup on the four systems of Table 1.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.frontend import compile_source
from repro.ir import print_module
from repro.machine import ALL_SYSTEMS, Interpreter, Memory
from repro.passes import IndirectPrefetchPass, PrefetchOptions

SOURCE = """
void histogram(long* restrict keys, long* restrict buckets, long n) {
    for (long i = 0; i < n; i++)
        buckets[keys[i]] += 1;
}
"""

NUM_KEYS = 20_000
NUM_BUCKETS = 1 << 21  # 16 MiB of counters: misses in every LLC


def build(prefetch: bool):
    module = compile_source(SOURCE)
    if prefetch:
        report = IndirectPrefetchPass(PrefetchOptions(lookahead=64)).run(
            module)
        print("--- what the pass did ---")
        print(report.summary())
        print()
    return module


def simulate(module, machine):
    rng = np.random.default_rng(7)
    memory = Memory()
    keys = memory.allocate(8, NUM_KEYS, "keys")
    keys.fill(rng.integers(0, NUM_BUCKETS, NUM_KEYS))
    buckets = memory.allocate(8, NUM_BUCKETS, "buckets")
    interp = Interpreter(module, memory, machine=machine)
    result = interp.run("histogram", [keys.base, buckets.base, NUM_KEYS])
    return result.cycles


def main() -> None:
    plain = build(prefetch=False)
    print("--- kernel before the pass ---")
    print(print_module(plain))

    prefetched = build(prefetch=True)
    print("--- kernel after the pass ---")
    print(print_module(prefetched))

    print(f"{'System':10s} {'no-prefetch':>12s} {'prefetch':>12s} "
          f"{'speedup':>8s}")
    for machine in ALL_SYSTEMS:
        base = simulate(build(prefetch=False), machine)
        fast = simulate(build(prefetch=True), machine)
        print(f"{machine.name:10s} {base / NUM_KEYS:9.1f} cy/it "
              f"{fast / NUM_KEYS:9.1f} cy/it {base / fast:8.2f}x")


if __name__ == "__main__":
    main()
