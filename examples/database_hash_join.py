"""Hash-join probing with automatic and manual prefetching.

Reproduces the paper's HJ-2/HJ-8 story in miniature: the automatic pass
covers the hash-computed bucket access but correctly refuses to prefetch
through the data-dependent linked-list walk; the manual scheme exploits
the runtime knowledge that HJ-8 buckets hold exactly three chained nodes
and staggers prefetches across the whole chain (Fig. 7).

Run:  python examples/database_hash_join.py
"""

from repro.bench import run_variant
from repro.machine import A53, HASWELL
from repro.passes import IndirectPrefetchPass
from repro.workloads import hj2, hj8


def show_pass_report() -> None:
    module = hj8(num_probes=1000, num_buckets=1 << 10).build()
    report = IndirectPrefetchPass().run(module)
    print("--- automatic pass on the HJ-8 probe kernel ---")
    print(report.summary())
    print()


def compare(workload_factory, machine, depths=(1, 2, 3, 4)) -> None:
    workload = workload_factory()
    plain = run_variant(workload, "plain", machine)
    auto = run_variant(workload, "auto", machine)
    print(f"{workload.name} on {machine.name}: "
          f"auto {plain.cycles / auto.cycles:.2f}x", end="")
    if workload.nodes_per_bucket:
        print("  | manual by stagger depth:", end="")
        for depth in depths:
            manual = run_variant(workload, "manual", machine,
                                 stagger_depth=depth)
            print(f"  {depth}:{plain.cycles / manual.cycles:.2f}x",
                  end="")
    print()


def main() -> None:
    show_pass_report()
    small_hj2 = lambda: hj2(num_probes=6000, num_buckets=1 << 16)
    small_hj8 = lambda: hj8(num_probes=4000, num_buckets=1 << 14)
    for machine in (HASWELL, A53):
        compare(small_hj2, machine)
        compare(small_hj8, machine)


if __name__ == "__main__":
    main()
