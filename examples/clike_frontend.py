"""Compiling C-like source through the whole pipeline.

Demonstrates the frontend (lexer -> parser -> SSA lowering -> mem2reg),
the role of ``restrict`` in making the fault-avoidance analysis succeed,
and hand-written ``prefetch(...)`` statements versus the automatic pass.

Run:  python examples/clike_frontend.py
"""

import numpy as np

from repro.frontend import compile_source
from repro.ir import print_module
from repro.machine import HASWELL, Interpreter, Memory
from repro.passes import IndirectPrefetchPass

WITHOUT_RESTRICT = """
void scatter_add(long* dst, long* idx, long* src, long n) {
    for (long i = 0; i < n; i++)
        dst[idx[i]] += src[i];
}
"""

WITH_RESTRICT = WITHOUT_RESTRICT.replace(
    "long* dst, long* idx, long* src",
    "long* restrict dst, long* restrict idx, long* restrict src")

HAND_PREFETCHED = """
void scatter_add(long* restrict dst, long* restrict idx,
                 long* restrict src, long n) {
    for (long i = 0; i < n - 64; i++) {
        prefetch(idx[i + 64]);
        prefetch(dst[idx[i + 32]]);
        dst[idx[i]] += src[i];
    }
    for (long i = n - 64 < 0 ? 0 : n - 64; i < n; i++)
        dst[idx[i]] += src[i];
}
"""


def try_pass(label: str, source: str) -> None:
    module = compile_source(source)
    report = IndirectPrefetchPass().run(module)
    print(f"--- {label} ---")
    print(report.summary())
    print()


def run_timed(source: str, transform: bool) -> float:
    module = compile_source(source)
    if transform:
        IndirectPrefetchPass().run(module)
    n, width = 12_000, 1 << 20
    rng = np.random.default_rng(3)
    memory = Memory()
    dst = memory.allocate(8, width, "dst")
    idx = memory.allocate(8, n + 256, "idx")
    idx.fill(np.concatenate([rng.integers(0, width, n),
                             np.zeros(256, dtype=np.int64)]))
    src = memory.allocate(8, n, "src")
    src.fill(rng.integers(0, 100, n))
    interp = Interpreter(module, memory, machine=HASWELL)
    return interp.run("scatter_add",
                      [dst.base, idx.base, src.base, n]).cycles


def main() -> None:
    # Without restrict the pass must assume dst stores clobber idx.
    try_pass("without restrict (pass refuses: may-alias)",
             WITHOUT_RESTRICT)
    try_pass("with restrict (pass fires)", WITH_RESTRICT)

    print("--- hand-prefetched source (loop split by hand) ---")
    print(print_module(compile_source(HAND_PREFETCHED)))

    base = run_timed(WITH_RESTRICT, transform=False)
    auto = run_timed(WITH_RESTRICT, transform=True)
    hand = run_timed(HAND_PREFETCHED, transform=False)
    print(f"Haswell: plain {base:,.0f} cycles | "
          f"auto {base / auto:.2f}x | hand-written {base / hand:.2f}x")


if __name__ == "__main__":
    main()
