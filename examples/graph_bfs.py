"""Breadth-first search over a Kronecker graph, with prefetching.

Shows the Graph500 structure of §5.1 end to end: the pass picks up the
work-list -> vertex-list chain and the edge -> parent chain, but leaves
the edge list itself to the hardware prefetcher (it is a plain stride
under the innermost induction variable) — the limitation that makes the
hand-tuned scheme faster on large graphs.

Run:  python examples/graph_bfs.py
"""

from repro.bench import run_variant
from repro.machine import A53, HASWELL
from repro.passes import IndirectPrefetchPass
from repro.workloads import Graph500


def explain_pass() -> None:
    module = Graph500(scale=10, edge_factor=8).build()
    report = IndirectPrefetchPass().run(module)
    print("--- automatic pass on bfs_level ---")
    print(report.summary())
    print()


def measure(scale: int, edge_factor: int) -> None:
    workload = Graph500(scale=scale, edge_factor=edge_factor)
    graph = None
    for machine in (HASWELL, A53):
        plain = run_variant(workload, "plain", machine)
        auto = run_variant(workload, "auto", machine)
        manual = run_variant(workload, "manual", machine,
                             inner_parent_prefetch=machine.in_order)
        if graph is None:
            graph = workload.graph
            print(f"graph: 2^{scale} vertices, "
                  f"{graph.num_directed_edges} directed edges")
        print(f"  {machine.name:8s} auto {plain.cycles / auto.cycles:.2f}x"
              f"  manual {plain.cycles / manual.cycles:.2f}x"
              f"  ({plain.cycles_per_iteration:.1f} cyc/edge plain)")


def main() -> None:
    explain_pass()
    # Note: prefetching only pays once the graph exceeds the caches; on
    # small graphs the extra instructions are pure overhead (the paper's
    # graphs are 10 MiB and 700 MiB).  Scale 14 is the smallest size
    # where the out-of-order machines start to benefit; benchmarks/
    # runs the calibrated sizes.
    measure(scale=14, edge_factor=10)


if __name__ == "__main__":
    main()
