"""Defining a custom machine and tuning the look-ahead constant for it.

The paper's §6.2 finding is that c = 64 is close to optimal across very
different machines.  This example defines a fictional small in-order
edge-device core, sweeps c for Integer Sort on it, and checks where its
optimum falls.

Run:  python examples/custom_architecture.py
"""

from repro.bench import run_variant
from repro.machine.configs import CacheConfig, MachineConfig
from repro.workloads import IntegerSort

#: A small in-order core with a single cache level and slow LPDDR-ish
#: memory — think microcontroller-class edge device.
EDGE_DEVICE = MachineConfig(
    name="EdgeDevice",
    freq_ghz=1.0,
    in_order=True,
    issue_width=1,
    rob_size=0,
    mshrs=2,
    caches=(CacheConfig(16 * 1024, 4, 3),),
    dram_latency=150,
    dram_cycles_per_line=16.0,
    tlb_entries=16,
    tlb_walk_latency=30,
    tlb_max_walks=1,
    tlb_l2_entries=128,
    page_bits=12,
)


def main() -> None:
    workload = IntegerSort(num_keys=15_000, num_buckets=1 << 18)
    plain = run_variant(workload, "plain", EDGE_DEVICE)
    print(f"no prefetching: {plain.cycles_per_iteration:.1f} cycles/key")
    print(f"{'c':>5s} {'speedup':>8s}")
    best_c, best = None, 0.0
    for c in (4, 8, 16, 32, 64, 128, 256):
        run = run_variant(workload, "auto", EDGE_DEVICE, lookahead=c)
        speedup = plain.cycles / run.cycles
        if speedup > best:
            best_c, best = c, speedup
        print(f"{c:5d} {speedup:8.2f}x")
    print(f"\nbest look-ahead for {EDGE_DEVICE.name}: c = {best_c} "
          f"({best:.2f}x); the paper's fixed c = 64 is "
          f"{plain.cycles / run_variant(workload, 'auto', EDGE_DEVICE, lookahead=64).cycles:.2f}x")


if __name__ == "__main__":
    main()
