"""Unit tests for the run-result disk cache (bench/cache.py).

Covers key stability and invalidation, cold/warm behaviour of
``run_variant``, corrupted-entry handling, environment resolution, and
the acceptance property: a second invocation of a figure benchmark with
unchanged inputs hits the disk cache and skips re-simulation.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.cache import (RunCache, canonical_token,
                               resolve_run_cache, run_key,
                               simulator_code_hash)
from repro.bench.runner import (RunSpec, TELEMETRY, reset_telemetry,
                                run_specs, run_variant)
from repro.ir import print_module
from repro.machine import A53, HASWELL
from repro.passes import PrefetchOptions
from repro.workloads import IntegerSort, RandomAccess


def _ir(workload, variant="plain", **kwargs):
    return print_module(workload.build_variant(variant, **kwargs))


def small_is():
    return IntegerSort(num_keys=1500, num_buckets=1 << 12)


class TestRunKey:
    def test_stable_across_equal_instances(self):
        k1 = run_key(_ir(small_is()), HASWELL, small_is(), True)
        k2 = run_key(_ir(small_is()), HASWELL, small_is(), True)
        assert k1 == k2

    def test_ir_change_invalidates(self):
        wl = small_is()
        base = run_key(_ir(small_is()), HASWELL, wl, True)
        for kwargs in (dict(variant="auto"),
                       dict(variant="manual"),
                       dict(variant="auto", lookahead=16),
                       dict(variant="auto",
                            options=PrefetchOptions(
                                emit_stride_prefetch=False))):
            assert run_key(_ir(small_is(), **kwargs), HASWELL, wl,
                           True) != base

    def test_machine_and_params_invalidate(self):
        ir = _ir(small_is())
        wl = small_is()
        base = run_key(ir, HASWELL, wl, True)
        assert run_key(ir, A53, wl, True) != base
        assert run_key(ir, HASWELL.with_small_pages(), wl,
                       True) != base
        other = IntegerSort(num_keys=1501, num_buckets=1 << 12)
        assert run_key(ir, HASWELL, other, True) != base
        assert run_key(ir, HASWELL, wl, False) != base

    def test_rng_advancement_invalidates(self):
        """After prepare() the shared RNG has moved, so a repeat run of
        the same instance is (correctly) a different run."""
        from repro.machine.memory import Memory
        wl = small_is()
        ir = _ir(wl)
        before = run_key(ir, HASWELL, wl, True)
        wl.prepare(Memory())
        assert run_key(ir, HASWELL, wl, True) != before

    def test_canonical_token_arrays_and_rng(self):
        import numpy as np
        a = np.arange(10)
        assert canonical_token(a) == canonical_token(np.arange(10))
        assert canonical_token(a) != canonical_token(np.arange(11))
        r1, r2 = np.random.default_rng(7), np.random.default_rng(7)
        assert canonical_token(r1) == canonical_token(r2)
        r1.integers(0, 10)
        assert canonical_token(r1) != canonical_token(r2)

    def test_code_hash_is_cached_and_hex(self):
        assert simulator_code_hash() == simulator_code_hash()
        assert len(simulator_code_hash()) == 64


class TestRunCacheStore:
    def test_roundtrip_and_counters(self, tmp_path):
        rc = RunCache(tmp_path)
        assert rc.get("ab" * 32) is None
        rc.put("ab" * 32, {"cycles": 1.5})
        assert rc.get("ab" * 32) == {"cycles": 1.5}
        # A second instance reads the same root from disk.
        rc2 = RunCache(tmp_path)
        assert rc2.get("ab" * 32) == {"cycles": 1.5}
        assert (rc.misses, rc.stores, rc2.hits) == (1, 1, 1)

    def test_corrupted_entry_is_a_miss(self, tmp_path):
        rc = RunCache(tmp_path)
        key = "cd" * 32
        rc.put(key, {"cycles": 2.0})
        rc._mem.clear()
        rc._path(key).write_text("{not json")
        assert rc.get(key) is None
        rc._path(key).write_text(json.dumps([1, 2]))  # wrong shape
        assert rc.get(key) is None

    def test_resolve(self, tmp_path, monkeypatch):
        rc = RunCache(tmp_path)
        assert resolve_run_cache(rc) is rc
        assert resolve_run_cache(False) is None
        monkeypatch.delenv("REPRO_SIM_CACHE", raising=False)
        assert resolve_run_cache(None) is None
        monkeypatch.setenv("REPRO_SIM_CACHE", "1")
        monkeypatch.setenv("REPRO_SIM_CACHE_DIR", str(tmp_path / "c"))
        shared = resolve_run_cache(None)
        assert isinstance(shared, RunCache)
        assert resolve_run_cache(None) is shared


class TestRunVariantCaching:
    def test_cold_then_warm(self, tmp_path):
        rc = RunCache(tmp_path)
        reset_telemetry()
        cold = run_variant(small_is(), "auto", HASWELL, cache=rc)
        assert TELEMETRY["simulated_runs"] == 1
        warm = run_variant(small_is(), "auto", HASWELL, cache=rc)
        assert TELEMETRY["simulated_runs"] == 1  # no re-simulation
        assert TELEMETRY["cached_runs"] == 1
        assert warm == cold
        assert rc.stores == 1

    def test_warm_result_matches_uncached(self, tmp_path):
        rc = RunCache(tmp_path)
        run_variant(small_is(), "auto", HASWELL, cache=rc)
        warm = run_variant(small_is(), "auto", HASWELL, cache=rc)
        uncached = run_variant(small_is(), "auto", HASWELL,
                               cache=False)
        assert warm == uncached

    def test_sequence_semantics_preserved(self, tmp_path):
        """A cached first run must leave the workload's RNG exactly
        where an uncached run would, so the *second* run on the same
        instance sees identical inputs either way."""
        rc = RunCache(tmp_path)
        wl = small_is()
        run_variant(wl, "plain", HASWELL, cache=rc)
        second_uncached = run_variant(wl, "auto", HASWELL, cache=False)

        wl = small_is()
        run_variant(wl, "plain", HASWELL, cache=rc)  # cache hit
        second_after_hit = run_variant(wl, "auto", HASWELL,
                                       cache=False)
        assert second_after_hit == second_uncached

    def test_run_specs_parallel_populates_shared_cache(self, tmp_path):
        rc = RunCache(tmp_path)
        wl1, wl2 = small_is(), RandomAccess(nblocks=15,
                                            table_size=1 << 12)
        specs = [RunSpec(wl1, "plain", HASWELL),
                 RunSpec(wl2, "plain", A53)]
        first = run_specs(specs, jobs=2, cache=rc)
        reset_telemetry()
        specs = [RunSpec(small_is(), "plain", HASWELL),
                 RunSpec(RandomAccess(nblocks=15, table_size=1 << 12),
                         "plain", A53)]
        second = run_specs(specs, jobs=1, cache=RunCache(tmp_path))
        assert second == first
        assert TELEMETRY["simulated_runs"] == 0
        assert TELEMETRY["cached_runs"] == 2


class TestFigureLevelCaching:
    def test_second_figure_invocation_skips_simulation(
            self, tmp_path, monkeypatch):
        """Acceptance: re-running a figure benchmark with unchanged
        inputs replays the disk cache and performs zero simulations."""
        from repro.bench.experiments import fig2_prefetch_schemes
        monkeypatch.setenv("REPRO_SIM_CACHE", "1")
        monkeypatch.setenv("REPRO_SIM_CACHE_DIR", str(tmp_path))
        reset_telemetry()
        first = fig2_prefetch_schemes(small=True)
        assert TELEMETRY["simulated_runs"] == 5
        reset_telemetry()
        second = fig2_prefetch_schemes(small=True)
        assert TELEMETRY["simulated_runs"] == 0
        assert TELEMETRY["cached_runs"] == 5
        assert second == first
