"""Trace-JIT tier: equivalence, deopt guards, reporting, multicore.

The trace-JIT (``REPRO_SIM_TRACEJIT=1``) compiles hot loop paths to
specialized Python on top of the fused fast path.  Its contract is the
same as the fast path's: *bit-identical* results — cycles, run stats,
and memory-system snapshots — against the reference engine, under every
combination of tier, telemetry, and yield schedule.  These tests also
poke each deoptimization guard directly and pin down the determinism of
the multicore barrier schedule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir import INT64, IRBuilder, Module, VOID, pointer, \
    verify_module
from repro.ir.values import Constant
from repro.machine import A53, HASWELL, XEON_PHI, Interpreter
from repro.machine.memory import Memory
from repro.machine.multicore import mc_workers, run_multicore
from repro.machine.tracejit import trace_threshold, tracejit_enabled
from repro.remarks import RemarkEmitter, collecting

from .test_fastpath_equivalence import (build_random_kernel, run_engine,
                                        snapshot)


def run_jit(module: Module, machine, seed: int, n: int = 512):
    """Like ``run_engine`` but under the trace-JIT tier."""
    mem = Memory(machine.line_size)
    data = np.random.default_rng(seed).integers(0, 1 << 40, 2 * n)
    a = mem.allocate(8, n, "a")
    a.fill(data[:n])
    barr = mem.allocate(8, n, "b")
    barr.fill(data[n:])
    out = mem.allocate(8, n, "out")
    interp = Interpreter(module, mem, machine=machine, fastpath=True,
                         tracejit=True)
    interp.run("kernel", [a.base, barr.base, out.base, n])
    return interp, snapshot(interp), list(out.data)


def build_nested_kernel(n: int = 256) -> Module:
    """Outer loop over ``i`` with a data-dependent single-block inner
    loop (``j`` up to ``i & 7``) — the shape the recorder compiles to a
    nested ``while`` inside one trace."""
    module = Module("nested")
    func = module.create_function(
        "kernel", VOID,
        [("a", pointer(INT64)), ("out", pointer(INT64)), ("n", INT64)])
    a, out, nval = func.args
    for arg in (a, out):
        arg.array_size = Constant(INT64, n)
        arg.noalias = True

    b = IRBuilder()
    entry = func.add_block("entry")
    outer = func.add_block("outer")
    inner = func.add_block("inner")
    latch = func.add_block("latch")
    exit_ = func.add_block("exit")
    mask = Constant(INT64, n - 1)

    b.set_insert_point(entry)
    b.br(b.cmp("sgt", nval, b.const(0), "guard"), outer, exit_)

    b.set_insert_point(outer)
    i = b.phi(INT64, "i")
    limit = b.and_(i, b.const(7), "limit")
    b.jmp(inner)

    b.set_insert_point(inner)
    j = b.phi(INT64, "j")
    s = b.phi(INT64, "s")
    idx = b.and_(b.add(i, j, "ij"), mask, "idx")
    v = b.load(b.gep(a, idx, "ap"), "v")
    s2 = b.add(s, v, "s2")
    j2 = b.add(j, b.const(1), "j2")
    b.br(b.cmp("slt", j2, limit, "more"), inner, latch)
    j.add_incoming(b.const(0), outer)
    j.add_incoming(j2, inner)
    s.add_incoming(b.const(0), outer)
    s.add_incoming(s2, inner)

    b.set_insert_point(latch)
    b.store(s2, b.gep(out, i, "op"))
    i2 = b.add(i, b.const(1), "i2")
    b.br(b.cmp("slt", i2, nval, "cond"), outer, exit_)
    i.add_incoming(b.const(0), entry)
    i.add_incoming(i2, latch)

    b.set_insert_point(exit_)
    b.ret()
    verify_module(module)
    return module


def run_module(module: Module, machine, n: int, *, tracejit: bool,
               fastpath: bool = True, yield_every: int = 0):
    """Run a (a, out, n)-shaped kernel; returns (interp, snap, out)."""
    mem = Memory(machine.line_size)
    data = np.random.default_rng(7).integers(0, 1 << 40, n)
    a = mem.allocate(8, n, "a")
    a.fill(data)
    out = mem.allocate(8, n, "out")
    interp = Interpreter(module, mem, machine=machine,
                         fastpath=fastpath, tracejit=tracejit)
    if yield_every:
        for _ in interp.run_stepped("kernel", [a.base, out.base, n],
                                    yield_every=yield_every):
            pass
    else:
        interp.run("kernel", [a.base, out.base, n])
    return interp, snapshot(interp), list(out.data)


class TestTraceEquivalence:
    @pytest.mark.parametrize("machine", (HASWELL, A53, XEON_PHI),
                             ids=lambda m: m.name)
    @pytest.mark.parametrize("seed", range(4))
    def test_identical_on_random_kernels(self, machine, seed):
        slow, out_slow = run_engine(build_random_kernel(seed), machine,
                                    False, seed)
        interp, jit, out_jit = run_jit(build_random_kernel(seed),
                                       machine, seed)
        assert jit == slow
        assert out_jit == out_slow
        assert interp.trace_report(), "no trace compiled on a hot loop"

    @pytest.mark.parametrize("machine", (HASWELL, A53),
                             ids=lambda m: m.name)
    def test_tier_matrix_integer_sort(self, machine):
        """tier × telemetry: every combination is bit-identical."""
        from repro.workloads import IntegerSort
        combos = [(False, False, False), (True, False, False),
                  (True, True, False), (True, False, True),
                  (True, True, True)]
        snaps = {}
        for fastpath, tracejit, telemetry in combos:
            wl = IntegerSort(num_keys=2000, num_buckets=1 << 14)
            module = wl.build_variant("auto")
            mem = Memory(machine.line_size)
            prepared = wl.prepare(mem)
            interp = Interpreter(module, mem, machine=machine,
                                 fastpath=fastpath, tracejit=tracejit,
                                 telemetry=telemetry)
            interp.run(wl.entry, prepared.args)
            prepared.validate()
            snaps[(fastpath, tracejit, telemetry)] = snapshot(interp)
        base = snaps[(False, False, False)]
        for combo, snap in snaps.items():
            assert snap == base, f"diverged at {combo}"

    def test_yield_schedule_identical(self):
        """Traces honour the yield budget: a stepped run exits traces
        at the same instruction boundaries and ends bit-identical."""
        module = build_nested_kernel(256)
        _, plain, out_plain = run_module(build_nested_kernel(256),
                                         HASWELL, 256, tracejit=False,
                                         fastpath=False)
        _, whole, out_whole = run_module(module, HASWELL, 256,
                                         tracejit=True)
        _, stepped, out_stepped = run_module(
            build_nested_kernel(256), HASWELL, 256, tracejit=True,
            yield_every=300)
        assert whole == plain
        assert stepped == plain
        assert out_whole == out_plain == out_stepped


class TestSelfLoopTraces:
    def test_nested_while_compiles_and_matches(self):
        _, slow, out_slow = run_module(build_nested_kernel(256),
                                       HASWELL, 256, tracejit=False,
                                       fastpath=False)
        emitter = RemarkEmitter()
        with collecting(emitter):
            interp, jit, out_jit = run_module(build_nested_kernel(256),
                                              HASWELL, 256,
                                              tracejit=True)
        assert jit == slow
        assert out_jit == out_slow
        compiled = emitter.by_name("TraceCompiled")
        assert compiled
        assert any(r.arg("nested", 0) >= 1 for r in compiled), \
            "self-loop block was not compiled as a nested while"
        rows = interp.trace_report()
        assert rows and rows[0]["iterations"] > 0


def build_flip_kernel(n: int = 512) -> Module:
    """A loop whose branch goes to ``small`` for the first half of the
    iterations and to ``big`` for the second half: the direction the
    recorder bakes into the trace fails halfway through the run."""
    module = Module("flip")
    func = module.create_function(
        "kernel", VOID,
        [("a", pointer(INT64)), ("out", pointer(INT64)), ("n", INT64)])
    a, out, nval = func.args
    for arg in (a, out):
        arg.array_size = Constant(INT64, n)
        arg.noalias = True
    b = IRBuilder()
    entry = func.add_block("entry")
    loop = func.add_block("loop")
    big = func.add_block("big")
    small = func.add_block("small")
    latch = func.add_block("latch")
    exit_ = func.add_block("exit")
    b.set_insert_point(entry)
    b.br(b.cmp("sgt", nval, b.const(0), "guard"), loop, exit_)
    b.set_insert_point(loop)
    i = b.phi(INT64, "i")
    v = b.load(b.gep(a, i, "ap"), "v")
    b.br(b.cmp("slt", i, b.const(n // 2), "half"), small, big)
    b.set_insert_point(big)
    vb = b.add(v, b.const(100), "vb")
    b.jmp(latch)
    b.set_insert_point(small)
    vs = b.add(v, b.const(1), "vs")
    b.jmp(latch)
    b.set_insert_point(latch)
    merged = b.phi(INT64, "m")
    merged.add_incoming(vb, big)
    merged.add_incoming(vs, small)
    b.store(merged, b.gep(out, i, "op"))
    i2 = b.add(i, b.const(1), "i2")
    b.br(b.cmp("slt", i2, nval, "cond"), loop, exit_)
    i.add_incoming(b.const(0), entry)
    i.add_incoming(i2, latch)
    b.set_insert_point(exit_)
    b.ret()
    verify_module(module)
    return module


class TestDeoptGuards:
    def test_side_exit_returns_to_fused_tier(self):
        """A branch that flips direction after recording side-exits;
        the run must still be bit-identical and the trace re-entered."""
        n = 512
        _, slow, out_slow = run_module(build_flip_kernel(n), HASWELL, n,
                                       tracejit=False, fastpath=False)
        interp, jit, out_jit = run_module(build_flip_kernel(n), HASWELL,
                                          n, tracejit=True)
        assert jit == slow
        assert out_jit == out_slow
        rows = {r["header"]: r for r in interp.trace_report()}
        # The first trace (recorded through `small`) stopped iterating
        # at the flip: its side exit returned control to the fused
        # dispatcher, which then saw `big` go hot and traced it too —
        # `big` is only ever reached after the recorded direction fails.
        assert rows["loop"]["iterations"] <= n // 2
        assert "big" in rows and rows["big"]["iterations"] > 0

    def test_cold_line_falls_back_in_trace(self):
        """Loads far beyond the L1 working set keep missing the hot-line
        memo: the in-trace fast path must take the full-walk fallback
        and stay bit-identical."""
        seed = 99
        machine = A53
        n = 2048  # 16 KiB per array: misses both the memo and L1 often
        slow, out_slow = run_engine(build_random_kernel(seed, n=n),
                                    machine, False, seed, n=n)
        interp, jit, out_jit = run_jit(build_random_kernel(seed, n=n),
                                       machine, seed, n=n)
        assert jit == slow
        assert out_jit == out_slow
        assert jit["memory_system"]["dram"]["stats"]["accesses"] > 0

    def test_memory_mode_change_deopts_at_entry(self):
        """Flipping the memory system off the fast path (what attaching
        a telemetry collector does) fails the trace's entry guard: the
        trace is discarded with a ``memory-mode-changed`` remark and the
        run completes on the fused tier, still bit-identical."""
        n = 512
        _, slow, out_slow = run_module(build_flip_kernel(n), HASWELL, n,
                                       tracejit=False, fastpath=False)
        mem = Memory(HASWELL.line_size)
        data = np.random.default_rng(7).integers(0, 1 << 40, n)
        a = mem.allocate(8, n, "a")
        a.fill(data)
        out = mem.allocate(8, n, "out")
        interp = Interpreter(build_flip_kernel(n), mem, machine=HASWELL,
                             fastpath=True, tracejit=True)
        emitter = RemarkEmitter()
        with collecting(emitter):
            stepper = interp.run_stepped(
                "kernel", [a.base, out.base, n], yield_every=1000)
            next(stepper)  # past the threshold: a trace is live
            interp.memory_system.fastpath = False
            for _ in stepper:
                pass
        deopts = [r for r in emitter.by_name("TraceDeopt")
                  if r.arg("reason") == "memory-mode-changed"]
        assert deopts, "entry guard did not fire on the mode change"
        assert snapshot(interp) == slow
        assert list(out.data) == out_slow

    def test_unfusable_loop_aborts_and_blacklists(self):
        """A call inside the hot loop aborts recording (blacklist +
        ``TraceDeopt`` record-stage remark); execution is unaffected."""
        module = Module("callee")
        helper = module.create_function("twice", INT64,
                                        [("x", INT64)])
        b = IRBuilder()
        hentry = helper.add_block("entry")
        b.set_insert_point(hentry)
        b.ret(b.add(helper.args[0], helper.args[0], "xx"))
        func = module.create_function(
            "kernel", VOID,
            [("a", pointer(INT64)), ("out", pointer(INT64)),
             ("n", INT64)])
        a, out, nval = func.args
        n = 128
        for arg in (a, out):
            arg.array_size = Constant(INT64, n)
            arg.noalias = True
        entry = func.add_block("entry")
        loop = func.add_block("loop")
        exit_ = func.add_block("exit")
        b.set_insert_point(entry)
        b.br(b.cmp("sgt", nval, b.const(0), "guard"), loop, exit_)
        b.set_insert_point(loop)
        i = b.phi(INT64, "i")
        v = b.load(b.gep(a, i, "ap"), "v")
        d = b.call(helper, [v], "d")
        b.store(d, b.gep(out, i, "op"))
        i2 = b.add(i, b.const(1), "i2")
        b.br(b.cmp("slt", i2, nval, "cond"), loop, exit_)
        i.add_incoming(b.const(0), entry)
        i.add_incoming(i2, loop)
        b.set_insert_point(exit_)
        b.ret()
        verify_module(module)

        mem = Memory(HASWELL.line_size)
        a_ = mem.allocate(8, n, "a")
        a_.fill(np.arange(n))
        out_ = mem.allocate(8, n, "out")
        interp = Interpreter(module, mem, machine=HASWELL,
                             fastpath=True, tracejit=True)
        emitter = RemarkEmitter()
        with collecting(emitter):
            interp.run("kernel", [a_.base, out_.base, n])
        aborts = [r for r in emitter.by_name("TraceDeopt")
                  if r.arg("stage") == "record"
                  and r.arg("reason") == "unfusable"]
        assert aborts
        assert not interp.trace_report()
        assert list(out_.data) == [2 * x for x in range(n)]
        assert interp._tj.aborts >= 1

    def test_low_yield_discards_and_blacklists(self):
        interp, _, _ = run_module(build_nested_kernel(64), HASWELL, 64,
                                  tracejit=True)
        tj = interp._tj
        assert tj.traces
        trace = tj.traces[0]
        state = tj._states[trace.func]
        assert trace.header in state.traces
        tj.deopt(state, trace, "low-yield")
        assert trace.header not in state.traces
        assert trace.header in state.blacklist
        assert tj.deopts >= 1


class TestGates:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_TRACEJIT", raising=False)
        assert tracejit_enabled(None) is False
        interp = Interpreter(build_random_kernel(0), Memory(),
                             machine=HASWELL)
        assert interp.tracejit is False
        assert interp._tj is None

    def test_env_flag_and_explicit_argument(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_TRACEJIT", "1")
        assert tracejit_enabled(None) is True
        assert tracejit_enabled(False) is False
        interp = Interpreter(build_random_kernel(1), Memory(),
                             machine=HASWELL)
        assert interp.tracejit is True

    def test_requires_fastpath(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_TRACEJIT", raising=False)
        interp = Interpreter(build_random_kernel(2), Memory(),
                             machine=HASWELL, fastpath=False,
                             tracejit=True)
        assert interp.tracejit is False

    def test_threshold_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_TRACEJIT_THRESHOLD", "5")
        assert trace_threshold() == 5
        monkeypatch.setenv("REPRO_SIM_TRACEJIT_THRESHOLD", "bogus")
        assert trace_threshold() == 16
        monkeypatch.setenv("REPRO_SIM_TRACEJIT_THRESHOLD", "1")
        assert trace_threshold() == 2


class TestMulticoreBarrier:
    def _setup(self, cores: int, n: int = 512):
        modules, memories, args = [], [], []
        for c in range(cores):
            module = build_random_kernel(c, n=n)
            mem = Memory(HASWELL.line_size)
            data = np.random.default_rng(c).integers(0, 1 << 40, 2 * n)
            a = mem.allocate(8, n, "a")
            a.fill(data[:n])
            barr = mem.allocate(8, n, "b")
            barr.fill(data[n:])
            out = mem.allocate(8, n, "out")
            modules.append(module)
            memories.append(mem)
            args.append([a.base, barr.base, out.base, n])
        return modules, memories, args

    def _signature(self, result):
        return (result.schedule, result.makespan,
                [r.cycles for r in result.per_core],
                [r.stats.instructions for r in result.per_core],
                [r.stats.loads for r in result.per_core])

    def test_barrier_schedule_is_deterministic(self):
        sigs = []
        for workers in (2, 4, 2):
            modules, memories, args = self._setup(4)
            result = run_multicore(modules, "kernel", args, HASWELL,
                                   memories, quantum=500,
                                   workers=workers)
            sigs.append(self._signature(result))
        assert sigs[0] == sigs[1] == sigs[2]
        assert sigs[0][0] == "barrier"

    def test_sequential_default_unchanged(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_MC_WORKERS", raising=False)
        modules, memories, args = self._setup(2)
        result = run_multicore(modules, "kernel", args, HASWELL,
                               memories, quantum=500)
        assert result.schedule == "shared-queue"
        assert result.makespan > 0

    def test_worker_env_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_MC_WORKERS", raising=False)
        assert mc_workers() == 0
        monkeypatch.setenv("REPRO_SIM_MC_WORKERS", "3")
        assert mc_workers() == 3
        assert mc_workers(2) == 2
        monkeypatch.setenv("REPRO_SIM_MC_WORKERS", "junk")
        assert mc_workers() == 0
