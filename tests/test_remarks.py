"""Tests for the optimization-remarks subsystem: the Remark model,
emitter scoping, the JSON-lines stream contracts, pass-manager
instrumentation, per-pass remark emission, stable prefetch IDs with
their runtime-PC mapping, and the telemetry ring-capacity warnings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir import (Constant, INT64, IRBuilder, Load, Module, Namer,
                      Prefetch, VOID, pointer, print_module,
                      verify_module)
from repro.machine import Interpreter, Memory
from repro.machine.interpreter import static_prefetch_pcs
from repro.passes import (CommonSubexpressionEliminationPass,
                          ConstantFoldingPass, DeadCodeEliminationPass,
                          IndirectPrefetchPass,
                          LoopInvariantCodeMotionPass, Mem2RegPass,
                          PassManager, PrefetchOptions, SimplifyCFGPass,
                          StrideIndirectBaselinePass)
from repro.remarks import (KNOWN_REMARKS, Remark, RemarkEmitter,
                           active_emitter, canonical_stream, collecting,
                           dumps_stream, emit, parse_stream,
                           remark_from_dict, remark_to_dict,
                           render_remarks, validate_remark_dict)
from repro.telemetry import (DEFAULT_RING_CAPACITY, MAX_RING_CAPACITY,
                             ring_capacity)
from tests.conftest import build_indirect_kernel


class TestRemarkModel:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Remark(kind="info", pass_name="p", name="PassExecuted")

    def test_unregistered_name_rejected(self):
        with pytest.raises(ValueError, match="unregistered"):
            Remark(kind="passed", pass_name="p", name="MadeItFaster")

    def test_non_scalar_arg_rejected(self):
        with pytest.raises(TypeError, match="JSON scalars"):
            Remark(kind="passed", pass_name="p", name="PassExecuted",
                   args=(("module", object()),))

    def test_arg_lookup_and_message(self):
        remark = Remark(kind="missed", pass_name="indirect-prefetch",
                        name="PrefetchRejected", function="kernel",
                        args=(("load", "%k"), ("reason", "NOT_INDIRECT")))
        assert remark.arg("load") == "%k"
        assert remark.arg("missing", 7) == 7
        assert "PrefetchRejected" in remark.message
        assert "@kernel" in remark.message

    def test_every_known_name_documented(self):
        assert all(KNOWN_REMARKS.values())  # each has a meaning string


class TestEmitterScoping:
    def test_emit_is_noop_without_emitter(self):
        assert active_emitter() is None
        assert emit("passed", "p", "PassExecuted") is None

    def test_collecting_routes_and_restores(self):
        emitter = RemarkEmitter()
        with collecting(emitter):
            recorded = emit("analysis", "p", "PassExecuted", wall_us=3)
        assert active_emitter() is None
        assert recorded is not None
        assert emitter.remarks == [recorded]
        assert recorded.arg("wall_us") == 3

    def test_scopes_nest_innermost_wins(self):
        outer, inner = RemarkEmitter(), RemarkEmitter()
        with collecting(outer):
            with collecting(inner):
                emit("analysis", "p", "PassExecuted")
            emit("analysis", "q", "PassExecuted")
        assert [r.pass_name for r in inner] == ["p"]
        assert [r.pass_name for r in outer] == ["q"]

    def test_filter_helpers(self):
        emitter = RemarkEmitter()
        with collecting(emitter):
            emit("passed", "indirect-prefetch", "PrefetchInserted",
                 prefetch_id="pf:kernel:0")
            emit("missed", "indirect-prefetch", "PrefetchRejected")
            emit("analysis", "pm", "PassExecuted")
        assert len(emitter.by_name("PrefetchRejected")) == 1
        assert len(emitter.by_pass("indirect-prefetch")) == 2
        assert len(emitter.by_kind("analysis")) == 1
        assert len(emitter.for_prefetch("pf:kernel:0")) == 1


class TestSerialization:
    def _sample_remarks(self):
        emitter = RemarkEmitter()
        with collecting(emitter):
            emit("analysis", "pm", "PassExecuted", wall_us=123,
                 insts_before=10, insts_after=8)
            emit("passed", "indirect-prefetch", "PrefetchInserted",
                 function="kernel", prefetch_id="pf:kernel:0",
                 covered_load="%k", position=0, offset=64, t=2, c=64,
                 clamp_source="none", new_instructions=2)
            emit("missed", "indirect-prefetch", "PrefetchRejected",
                 function="kernel", load="%k", reason="NOT_INDIRECT",
                 detail="", path=["%p", "%k"])
        return emitter.remarks

    def test_round_trip_is_byte_identical(self):
        stream = dumps_stream(self._sample_remarks())
        assert dumps_stream(parse_stream(stream)) == stream

    def test_dict_round_trip_preserves_fields(self):
        for remark in self._sample_remarks():
            clone = remark_from_dict(remark_to_dict(remark))
            assert clone == remark

    def test_header_is_schema_tagged(self):
        stream = dumps_stream([])
        assert stream.splitlines()[0] == '{"schema":"repro-remarks-v1"}'

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError, match="header"):
            parse_stream('{"schema":"repro-remarks-v0"}\n')
        with pytest.raises(ValueError, match="empty"):
            parse_stream("")

    def test_unknown_name_rejected_on_parse(self):
        stream = ('{"schema":"repro-remarks-v1"}\n'
                  '{"kind":"passed","pass":"p","name":"Novel","args":{}}\n')
        with pytest.raises(ValueError, match="unknown remark name"):
            parse_stream(stream)
        with pytest.raises(ValueError, match="unknown remark kind"):
            validate_remark_dict({"kind": "info", "pass": "p",
                                  "name": "PassExecuted"})

    def test_canonical_stream_zeroes_wall_clock_only(self):
        stream = dumps_stream(self._sample_remarks())
        canon = canonical_stream(stream)
        assert '"wall_us":0' in canon
        assert '"wall_us":123' not in canon
        assert '"offset":64' in canon  # other args untouched
        # Canonicalisation is idempotent.
        assert canonical_stream(canon) == canon

    def test_render_remarks(self):
        text = render_remarks(self._sample_remarks(), title="t")
        assert text.startswith("t\n")
        assert "PrefetchRejected" in text
        assert render_remarks([]) == "(no remarks)"


class TestPassManagerInstrumentation:
    def test_pass_executed_remarks_with_deltas(self):
        emitter = RemarkEmitter()
        pm = PassManager(emitter=emitter)
        pm.add(ConstantFoldingPass()).add(DeadCodeEliminationPass())
        pm.run(build_indirect_kernel())
        executed = emitter.by_name("PassExecuted")
        assert [r.pass_name for r in executed] == ["constfold", "dce"]
        for remark in executed:
            assert remark.kind == "analysis"
            assert remark.arg("wall_us") >= 0
            assert remark.arg("insts_before") >= remark.arg("insts_after")
            assert remark.arg("blocks_before") > 0

    def test_ambient_emitter_is_used(self):
        emitter = RemarkEmitter()
        with collecting(emitter):
            PassManager().add(DeadCodeEliminationPass()).run(
                build_indirect_kernel())
        assert emitter.by_name("PassExecuted")

    def test_no_emitter_no_remarks_same_result(self):
        with_, without = build_indirect_kernel(), build_indirect_kernel()
        emitter = RemarkEmitter()
        pm = PassManager(emitter=emitter)
        pm.add(ConstantFoldingPass()).add(DeadCodeEliminationPass())
        pm.run(with_)
        pm2 = PassManager()
        pm2.add(ConstantFoldingPass()).add(DeadCodeEliminationPass())
        pm2.run(without)
        assert print_module(with_) == print_module(without)


class TestCleanupPassRemarks:
    """Each generic pass reports its transformations when collecting."""

    def _collect(self, pass_, module):
        emitter = RemarkEmitter()
        with collecting(emitter):
            pass_.run(module)
        return emitter

    def test_dce_remark(self):
        m = build_indirect_kernel()
        func = m.function("kernel")
        b = IRBuilder()
        b.set_insert_point(func.entry, before=func.entry.terminator)
        b.add(b.const(1), b.const(2), "dead")
        emitter = self._collect(DeadCodeEliminationPass(), m)
        (remark,) = emitter.by_name("DeadInstructionRemoved")
        assert remark.arg("instruction") == "%dead"
        assert remark.arg("opcode") == "add"

    def test_constfold_remark(self):
        m = build_indirect_kernel()
        func = m.function("kernel")
        b = IRBuilder()
        b.set_insert_point(func.entry, before=func.entry.terminator)
        folded = b.add(b.const(20), b.const(22), "folded")
        b.add(folded, func.arg("n"), "keep")  # keeps %folded live
        emitter = self._collect(ConstantFoldingPass(), m)
        (remark,) = emitter.by_name("ConstantFolded")
        assert remark.arg("instruction") == "%folded"
        assert remark.arg("replaced_by") == "42"

    def test_cse_remark(self):
        m = build_indirect_kernel()
        func = m.function("kernel")
        loop = func.block("loop")
        b = IRBuilder()
        b.set_insert_point(loop, before=loop.terminator)
        (i,) = loop.phis
        dup = b.add(i, Constant(INT64, 1), "dup")  # same as %i.next
        b.add(dup, func.arg("n"), "keep")
        emitter = self._collect(CommonSubexpressionEliminationPass(), m)
        remarks = emitter.by_name("RedundantExpressionEliminated")
        assert any(r.arg("instruction") == "%dup" and
                   r.arg("replaced_by") == "%i.next" for r in remarks)

    def test_licm_remark(self):
        m = build_indirect_kernel()
        func = m.function("kernel")
        loop = func.block("loop")
        b = IRBuilder()
        b.set_insert_point(loop, before=loop.terminator)
        b.add(func.arg("n"), Constant(INT64, 1), "inv")
        emitter = self._collect(LoopInvariantCodeMotionPass(), m)
        remarks = emitter.by_name("LoopInvariantHoisted")
        assert any(r.arg("instruction") == "%inv" for r in remarks)

    def test_mem2reg_remark(self):
        m = Module("m")
        f = m.create_function("f", INT64, [("x", INT64)])
        b = IRBuilder()
        b.set_insert_point(f.add_block("entry"))
        slot = b.alloc(INT64, 1, "slot")
        b.store(f.arg("x"), slot)
        b.ret(b.load(slot, "v"))
        verify_module(m)
        emitter = self._collect(Mem2RegPass(), m)
        (remark,) = emitter.by_name("SlotPromoted")
        assert remark.arg("slot") == "%slot"
        assert remark.arg("loads") == 1
        assert remark.arg("stores") == 1

    def test_simplifycfg_remarks(self):
        m = Module("m")
        f = m.create_function("f", INT64, [("x", INT64)])
        b = IRBuilder()
        entry = f.add_block("entry")
        fwd = f.add_block("fwd")
        tail = f.add_block("tail")
        dead = f.add_block("dead")
        b.set_insert_point(entry)
        b.jmp(fwd)
        b.set_insert_point(fwd)
        b.jmp(tail)
        b.set_insert_point(tail)
        b.ret(f.arg("x"))
        b.set_insert_point(dead)
        b.ret(b.const(0))
        verify_module(m)
        emitter = self._collect(SimplifyCFGPass(), m)
        names = {r.name for r in emitter}
        assert "UnreachableBlockRemoved" in names
        # The jmp-chain collapses via a merge or a forwarding bypass.
        assert names & {"BlockMerged", "ForwardingBlockRemoved"}


class TestPrefetchPassRemarks:
    def _run(self, module, **options):
        emitter = RemarkEmitter()
        with collecting(emitter):
            report = IndirectPrefetchPass(
                PrefetchOptions(**options)).run(module)
        return report, emitter

    def test_chain_accepted_records_eq1_inputs(self, indirect_module):
        report, emitter = self._run(indirect_module)
        (accepted,) = emitter.by_name("PrefetchChainAccepted")
        assert accepted.arg("load") == "%bv"
        assert accepted.arg("iv") == "%i"
        assert accepted.arg("t") == 2
        assert accepted.arg("c") == 64
        (acc,) = report.accepted
        assert accepted.arg("clamp_source") == acc.clamp.source
        assert accepted.arg("chain") == ["%p", "%k", "%bp", "%bv"]

    def test_inserted_remarks_match_prefetch_ids(self, indirect_module):
        report, emitter = self._run(indirect_module)
        inserted = emitter.by_name("PrefetchInserted")
        func = indirect_module.function("kernel")
        prefetches = [i for i in func.instructions()
                      if isinstance(i, Prefetch)]
        assert [r.prefetch_id for r in inserted] == \
            [p.remark_id for p in prefetches] == \
            ["pf:kernel:0", "pf:kernel:1"]
        by_position = {r.arg("position"): r for r in inserted}
        # eq. (1): offset = max(1, c*(t-l)/t) with t=2, c=64.
        assert by_position[0].arg("offset") == 64
        assert by_position[1].arg("offset") == 32
        assert by_position[0].arg("clamp_source") == "none"  # stride leg
        assert by_position[1].arg("clamp_source") != "none"

    def test_ids_assigned_even_without_emitter(self, indirect_module):
        IndirectPrefetchPass().run(indirect_module)
        func = indirect_module.function("kernel")
        ids = [i.remark_id for i in func.instructions()
               if isinstance(i, Prefetch)]
        assert ids == ["pf:kernel:0", "pf:kernel:1"]

    def test_collecting_does_not_change_the_module(self):
        plain, observed = build_indirect_kernel(), build_indirect_kernel()
        IndirectPrefetchPass().run(plain)
        with collecting(RemarkEmitter()):
            IndirectPrefetchPass().run(observed)
        assert print_module(plain) == print_module(observed)

    def test_subsumed_remark(self):
        # Two chains over the same IV where one covers the other: the
        # kernel's stride load is not subsumed (it is NOT_INDIRECT), so
        # build a 3-deep chain and check the middle load's subsumption.
        m = Module("m")
        f = m.create_function(
            "kernel", VOID, [("a", pointer(INT64)), ("b", pointer(INT64)),
                             ("c", pointer(INT64)), ("n", INT64)])
        f.arg("a").array_size = f.arg("n")
        for name, size in (("b", 4096), ("c", 4096)):
            f.arg(name).array_size = Constant(INT64, size)
        for name in ("a", "b", "c"):
            f.arg(name).noalias = True
        b = IRBuilder()
        entry, loop, exit_ = (f.add_block(x) for x in
                              ("entry", "loop", "exit"))
        b.set_insert_point(entry)
        g = b.cmp("sgt", f.arg("n"), b.const(0))
        b.br(g, loop, exit_)
        b.set_insert_point(loop)
        i = b.phi(INT64, "i")
        av = b.load(b.gep(f.arg("a"), i), "av")
        bv = b.load(b.gep(f.arg("b"), av), "bv")   # 2-chain target
        b.load(b.gep(f.arg("c"), bv), "cv")        # 3-chain target
        i_next = b.add(i, b.const(1), "i.next")
        cond = b.cmp("slt", i_next, f.arg("n"))
        b.br(cond, loop, exit_)
        i.add_incoming(b.const(0), entry)
        i.add_incoming(i_next, loop)
        b.set_insert_point(exit_)
        b.ret()
        verify_module(m)
        report, emitter = self._run(m)
        subsumed = emitter.by_name("PrefetchSubsumed")
        assert [r.arg("load") for r in subsumed] == ["%bv"]
        assert report.num_prefetches == 3  # one chain, t=3


class TestBaselinePassRemarks:
    def test_inserted_and_skipped(self):
        m = build_indirect_kernel(num_buckets=1024)
        m.function("kernel").arg("keys").array_size = \
            Constant(INT64, 5000)
        emitter = RemarkEmitter()
        with collecting(emitter):
            StrideIndirectBaselinePass().run(m)
        inserted = emitter.by_name("BaselinePrefetchInserted")
        # One remark per emitted instruction: indirect + stride leg.
        assert [r.prefetch_id for r in inserted] == \
            ["pf:kernel:0", "pf:kernel:1"]
        assert all(r.arg("load") == "%bv" for r in inserted)
        assert all(r.arg("c") == 64 for r in inserted)
        prefetch_ids = sorted(i.remark_id for i in
                              m.function("kernel").instructions()
                              if isinstance(i, Prefetch))
        assert prefetch_ids == ["pf:kernel:0", "pf:kernel:1"]

    def test_skip_reason_reported(self):
        m = build_indirect_kernel()  # argument-valued size: pass bails
        emitter = RemarkEmitter()
        with collecting(emitter):
            StrideIndirectBaselinePass().run(m)
        skipped = emitter.by_name("BaselineSkipped")
        assert skipped
        assert any("statically" in r.arg("reason") for r in skipped)


class TestSummaryNaming:
    def test_anonymous_loads_use_printer_numbering(self):
        # Satellite fix: summary() must print an anonymous load as the
        # %<n> of the printed IR, not an ambiguous "%load".
        m = Module("m")
        f = m.create_function("kernel", VOID,
                              [("keys", pointer(INT64)),
                               ("buckets", pointer(INT64)),
                               ("n", INT64)])
        f.arg("keys").array_size = f.arg("n")
        f.arg("buckets").array_size = Constant(INT64, 1024)
        f.arg("keys").noalias = True
        f.arg("buckets").noalias = True
        b = IRBuilder()
        entry, loop, exit_ = (f.add_block(x) for x in
                              ("entry", "loop", "exit"))
        b.set_insert_point(entry)
        g = b.cmp("sgt", f.arg("n"), b.const(0))
        b.br(g, loop, exit_)
        b.set_insert_point(loop)
        i = b.phi(INT64, "i")
        k = b.load(b.gep(f.arg("keys"), i))       # anonymous
        bv = b.load(b.gep(f.arg("buckets"), k))   # anonymous
        b.store(b.add(bv, b.const(1)), bv.ptr)
        i_next = b.add(i, b.const(1), "i.next")
        c = b.cmp("slt", i_next, f.arg("n"))
        b.br(c, loop, exit_)
        i.add_incoming(b.const(0), entry)
        i.add_incoming(i_next, loop)
        b.set_insert_point(exit_)
        b.ret()
        verify_module(m)

        emitter = RemarkEmitter()
        with collecting(emitter):
            report = IndirectPrefetchPass().run(m)
        namer = Namer(f)
        summary = report.summary()
        assert f"rejected {namer.ref(k)}:" in summary
        assert f"prefetched {namer.ref(bv)} " in summary
        assert "%load" not in summary
        # The same numbers appear in the printed IR and in remarks.
        printed = print_module(m)
        assert f"{namer.ref(k)} = load" in printed
        (rejected,) = emitter.by_name("PrefetchRejected")
        assert rejected.arg("load") == namer.ref(k)


class TestPrefetchPCs:
    @staticmethod
    def _add_indirect_loop(func, b, prelude=None):
        entry, loop, exit_ = (func.add_block(x) for x in
                              ("entry", "loop", "exit"))
        b.set_insert_point(entry)
        if prelude is not None:
            prelude(b)
        g = b.cmp("sgt", func.arg("n"), b.const(0))
        b.br(g, loop, exit_)
        b.set_insert_point(loop)
        i = b.phi(INT64, "i")
        k = b.load(b.gep(func.arg("keys"), i), "k")
        bp = b.gep(func.arg("buckets"), k, "bp")
        bv = b.load(bp, "bv")
        b.store(b.add(bv, b.const(1)), bp)
        i_next = b.add(i, b.const(1), "i.next")
        c = b.cmp("slt", i_next, func.arg("n"))
        b.br(c, loop, exit_)
        i.add_incoming(b.const(0), entry)
        i.add_incoming(i_next, loop)
        b.set_insert_point(exit_)
        b.ret()

    def _two_function_module(self) -> Module:
        m = Module("two")
        args = [("keys", pointer(INT64)), ("buckets", pointer(INT64)),
                ("n", INT64)]
        helper = m.create_function("helper", VOID, args)
        kernel = m.create_function("kernel", VOID, args)
        for f in (helper, kernel):
            f.arg("keys").array_size = f.arg("n")
            f.arg("buckets").array_size = Constant(INT64, 256)
            f.arg("keys").noalias = True
            f.arg("buckets").noalias = True
        b = IRBuilder()
        self._add_indirect_loop(helper, b)
        self._add_indirect_loop(
            kernel, b,
            prelude=lambda bb: bb.call(
                helper, [kernel.arg("keys"), kernel.arg("buckets"),
                         kernel.arg("n")]))
        verify_module(m)
        return m

    def test_static_map_matches_interpreter(self):
        # The module lists helper before kernel, but lazy compilation
        # starts at the entry: static_prefetch_pcs must emulate that.
        m = self._two_function_module()
        report = IndirectPrefetchPass().run(m)
        assert report.num_prefetches == 4
        static = static_prefetch_pcs(m, "kernel")
        assert set(static) == {"pf:kernel:0", "pf:kernel:1",
                               "pf:helper:0", "pf:helper:1"}

        rng = np.random.default_rng(0)
        mem = Memory()
        keys = mem.allocate(8, 64, "keys")
        keys.fill(rng.integers(0, 256, 64))
        buckets = mem.allocate(8, 256, "buckets")
        interp = Interpreter(m, mem)
        interp.run("kernel", [keys.base, buckets.base, 64])
        assert interp.prefetch_pc_map() == static

    def test_unknown_entry_yields_empty_map(self):
        m = self._two_function_module()
        IndirectPrefetchPass().run(m)
        assert static_prefetch_pcs(m, "nonesuch") == {}


class TestRingCapacityValidation:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_TELEMETRY_RING", raising=False)
        assert ring_capacity() == DEFAULT_RING_CAPACITY

    def test_valid_value_passes_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_TELEMETRY_RING", "512")
        assert ring_capacity() == 512

    def test_non_integer_falls_back_with_warning_and_remark(
            self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_TELEMETRY_RING", "lots")
        emitter = RemarkEmitter()
        with collecting(emitter):
            with pytest.warns(RuntimeWarning, match="not an integer"):
                assert ring_capacity() == DEFAULT_RING_CAPACITY
        (remark,) = emitter.by_name("TelemetryRingClamped")
        assert remark.kind == "warning"
        assert remark.arg("value") == "lots"
        assert remark.arg("used") == DEFAULT_RING_CAPACITY

    def test_non_positive_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_TELEMETRY_RING", "-5")
        with pytest.warns(RuntimeWarning, match="not positive"):
            assert ring_capacity() == DEFAULT_RING_CAPACITY

    def test_oversized_clamps_to_max(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_TELEMETRY_RING", str(1 << 25))
        emitter = RemarkEmitter()
        with collecting(emitter):
            with pytest.warns(RuntimeWarning, match="above the maximum"):
                assert ring_capacity() == MAX_RING_CAPACITY
        (remark,) = emitter.by_name("TelemetryRingClamped")
        assert remark.arg("used") == MAX_RING_CAPACITY

    def test_no_remark_without_collecting(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_TELEMETRY_RING", "bogus")
        with pytest.warns(RuntimeWarning):
            ring_capacity()  # must not crash without an emitter
