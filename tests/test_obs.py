"""Tests for the observability layer (src/repro/obs/).

Covers the metrics registry (nearest-rank percentile boundary cases,
histogram bucket bookkeeping, Prometheus exposition golden with label
ordering and escaping), structured log schema round-trips, request-id
semantics (uniqueness, propagation through coalesced waiters sharing
one job span tree), the ``/v1/trace/<id>`` endpoint's Perfetto
document, the ``repro top`` renderer, and the guarantee that tracing
never changes a result payload (byte-identity with observability on
and off).
"""

from __future__ import annotations

import asyncio
import io
import json

import pytest

from repro.obs.logs import (LogFormatError, AccessLogger, format_json,
                            format_text, make_record, parse_json_line)
from repro.obs.metrics import (Counter, Gauge, Histogram, Registry,
                               escape_label_value, nearest_rank)
from repro.obs.trace import (RequestSpans, TraceBuffer,
                             new_request_id, worker_stage_ms)
from repro.obs.top import render as render_top
from repro.serve.client import AsyncClient
from repro.serve.protocol import execute_request, normalize_request
from repro.serve.server import Server, ServeConfig
from repro.telemetry.perfetto import build_request_trace


def canonical(value) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# nearest-rank percentile: the boundary cases the round()-based form
# got wrong.


class TestNearestRank:
    def test_empty(self):
        assert nearest_rank([], 50) == 0.0

    @pytest.mark.parametrize("pct", [0, 1, 50, 99, 100])
    def test_n1_always_answers_the_only_sample(self, pct):
        # The old form: round(0.5)-1 = -1 clamped to 0 worked for p50
        # but round(0.99)-1 = 0 vs round(1.0)-1 = 0 only by clamping.
        assert nearest_rank([7.0], pct) == 7.0

    def test_n2_boundaries(self):
        assert nearest_rank([1.0, 2.0], 50) == 1.0   # ceil(1.0) = 1st
        assert nearest_rank([1.0, 2.0], 51) == 2.0   # ceil(1.02) = 2nd
        assert nearest_rank([1.0, 2.0], 99) == 2.0
        assert nearest_rank([1.0, 2.0], 100) == 2.0

    def test_p50_of_5_is_the_median(self):
        # The bug this replaces: round(2.5) banker's-rounds to 2, so
        # the old form answered the 2nd sample, not the 3rd (median).
        assert nearest_rank([1, 2, 3, 4, 5], 50) == 3

    def test_p99_needs_100_samples_to_leave_the_max_bucket(self):
        ordered = list(range(1, 101))
        assert nearest_rank(ordered, 99) == 99
        assert nearest_rank(ordered, 100) == 100


# ---------------------------------------------------------------------------
# Metrics registry and Prometheus exposition.


class TestRegistry:
    def test_counter_labels_and_values(self):
        registry = Registry()
        counter = registry.counter("t_total", "help",
                                   labels=("a", "b"))
        counter.labels(a="x", b="y").inc()
        counter.labels(a="x", b="y").inc(2)
        counter.labels(b="z", a="x").inc()
        assert counter.value == 4
        with pytest.raises(ValueError):
            counter.labels(a="x")           # missing label
        with pytest.raises(ValueError):
            counter.labels(a="x", b="y", c="z")  # extra label
        with pytest.raises(ValueError):
            counter.labels(a="x", b="y").inc(-1)

    def test_duplicate_family_rejected(self):
        registry = Registry()
        registry.counter("dup_total", "h")
        with pytest.raises(ValueError):
            registry.counter("dup_total", "h")

    def test_histogram_running_max_outlives_any_window(self):
        hist = Histogram("h_ms", "h", buckets=(1.0, 10.0))
        hist.labels().observe(500.0)
        for _ in range(100):
            hist.labels().observe(0.5)
        child = hist.labels()
        assert child.max == 500.0
        assert child.count == 101
        assert child.quantile(1.0) == 500.0  # +Inf bucket → max

    def test_histogram_quantile_interpolates(self):
        hist = Histogram("h_ms", "h", buckets=(10.0, 20.0))
        for _ in range(10):
            hist.labels().observe(15.0)
        q = hist.labels().quantile(0.5)
        assert 10.0 < q <= 20.0

    def test_exposition_golden(self):
        """Byte-stable golden: label names sorted, children sorted,
        HELP escaping, histogram series shape."""
        registry = Registry()
        counter = registry.counter(
            "g_requests_total", 'help with "quotes" and \\slash',
            labels=("zeta", "alpha"))
        counter.labels(zeta="b", alpha="2").inc(3)
        counter.labels(zeta="a", alpha="1").inc()
        gauge = registry.gauge("g_depth", "queue depth")
        gauge.set(4)
        hist = registry.histogram("g_latency_ms", "latency",
                                  buckets=(1.0, 5.0))
        hist.labels().observe(0.5)
        hist.labels().observe(3.0)
        hist.labels().observe(99.0)
        # HELP escapes only backslash and newline (exposition spec);
        # quotes are escaped in label values, not help text.
        assert registry.render_prometheus() == (
            '# HELP g_requests_total help with "quotes" and '
            "\\\\slash\n"
            "# TYPE g_requests_total counter\n"
            'g_requests_total{alpha="1",zeta="a"} 1\n'
            'g_requests_total{alpha="2",zeta="b"} 3\n'
            "# HELP g_depth queue depth\n"
            "# TYPE g_depth gauge\n"
            "g_depth 4\n"
            "# HELP g_latency_ms latency\n"
            "# TYPE g_latency_ms histogram\n"
            'g_latency_ms_bucket{le="1"} 1\n'
            'g_latency_ms_bucket{le="5"} 2\n'
            'g_latency_ms_bucket{le="+Inf"} 3\n'
            "g_latency_ms_sum 102.5\n"
            "g_latency_ms_count 3\n")

    def test_label_value_escaping(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'
        registry = Registry()
        counter = registry.counter("e_total", "h", labels=("path",))
        counter.labels(path='we"ird\\pa\nth').inc()
        line = registry.render_prometheus().splitlines()[2]
        assert line == 'e_total{path="we\\"ird\\\\pa\\nth"} 1'

    def test_registered_families_render_before_first_sample(self):
        registry = Registry()
        registry.counter("empty_total", "h", labels=("x",))
        text = registry.render_prometheus()
        assert "# TYPE empty_total counter" in text


# ---------------------------------------------------------------------------
# Structured logs.


class TestLogs:
    def test_json_round_trip(self):
        record = make_record(
            "request", clock=lambda: 1700000000.123456,
            request_id="ab" * 8, method="POST", path="/v1/jobs",
            status=200, latency_ms=12.5, outcome="fresh",
            workload="is", tier="auto")
        line = format_json(record)
        assert parse_json_line(line) == record
        # Byte-stable: sorted keys, compact separators.
        assert format_json(parse_json_line(line)) == line

    def test_request_record_requires_core_fields(self):
        with pytest.raises(LogFormatError):
            make_record("request", request_id="x", method="GET")
        with pytest.raises(LogFormatError):
            make_record("not_an_event")

    @pytest.mark.parametrize("line", [
        "not json",
        '{"schema": "other-v1", "event": "request", "ts": 1}',
        '{"schema": "repro-serve-log-v1", "event": "nope", "ts": 1}',
        '{"schema": "repro-serve-log-v1", "event": "request", '
        '"ts": 1, "request_id": "x", "method": "GET", '
        '"path": "/", "status": "200", "latency_ms": 1.0}',
    ])
    def test_parse_rejects(self, line):
        with pytest.raises(LogFormatError):
            parse_json_line(line)

    def test_text_format_one_line(self):
        record = make_record(
            "request", clock=lambda: 1700000000.5,
            request_id="cafe", method="GET", path="/metrics",
            status=200, latency_ms=0.25)
        text = format_text(record)
        assert "\n" not in text
        assert "rid=cafe" in text and '"GET /metrics"' in text

    def test_logger_off_swallows_and_dead_stream_never_raises(self):
        stream = io.StringIO()
        logger = AccessLogger("off", stream=stream)
        logger.emit("server_start", port=1)
        assert stream.getvalue() == ""
        closed = io.StringIO()
        closed.close()
        logger = AccessLogger("json", stream=closed)
        logger.emit("server_start", port=1)  # must not raise

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            AccessLogger("xml")


# ---------------------------------------------------------------------------
# Request ids, spans, trace records.


class TestTracePieces:
    def test_request_ids_unique_and_well_formed(self):
        ids = {new_request_id() for _ in range(1000)}
        assert len(ids) == 1000
        assert all(len(i) == 16 and
                   set(i) <= set("0123456789abcdef") for i in ids)

    def test_request_spans_stage_ms_sums_same_name(self):
        spans = RequestSpans()
        spans.span("probe", 0, end_us=1000)
        spans.span("probe", 2000, end_us=2500)
        spans.span("queue", 0, end_us=100)
        stage_ms = spans.stage_ms()
        assert stage_ms["probe"] == pytest.approx(1.5)
        assert stage_ms["queue"] == pytest.approx(0.1)

    def test_worker_stage_ms_maps_compile_and_simulate(self):
        records = [
            {"type": "span", "name": "build", "dur_us": 1000},
            {"type": "span", "name": "compile_source", "dur_us": 500},
            {"type": "span", "name": "simulate", "dur_us": 2000},
            {"type": "span", "name": "prepare", "dur_us": 9000},
            {"type": "instant", "name": "simulate", "ts_us": 1},
        ]
        stages = worker_stage_ms(records)
        assert stages == {"compile": pytest.approx(1.5),
                          "simulate": pytest.approx(2.0)}

    def test_trace_buffer_is_bounded_lru(self):
        buffer = TraceBuffer(capacity=2)
        for i in range(4):
            buffer.put({"request_id": f"r{i}"})
        assert len(buffer) == 2
        assert buffer.get("r0") is None and buffer.get("r1") is None
        assert buffer.get("r3")["request_id"] == "r3"

    def test_build_request_trace_document_shape(self):
        record = {
            "schema": "repro-request-trace-v1", "request_id": "w1",
            "key": "k" * 64, "kind": "simulate", "workload": "is",
            "tier": "auto", "status": 200, "outcome": "coalesced",
            "server_spans": [
                {"type": "span", "category": "serve",
                 "name": "admission", "start_us": 0, "dur_us": 10,
                 "args": {}}],
            "job": {"request_id": "owner", "start_offset_us": 500,
                    "worker_anchor_us": 40,
                    "spans": [{"type": "span", "category": "serve",
                               "name": "worker", "start_us": 40,
                               "dur_us": 100, "args": {}}],
                    "worker_spans": [
                        {"type": "span", "category": "serve",
                         "name": "execute", "start_us": 0,
                         "dur_us": 90, "args": {}}],
                    "worker": 1, "pid": 4242},
        }
        trace = build_request_trace(record)
        events = trace["traceEvents"]
        other = trace["otherData"]
        assert other["schema"] == "repro-request-trace-v1"
        assert other["request_id"] == "w1"
        assert other["job_request_id"] == "owner"
        pids = {e["pid"] for e in events}
        assert pids == {1, 2}          # server process + worker process
        job_span = next(e for e in events
                        if e.get("name") == "worker" and e["pid"] == 1)
        assert job_span["ts"] == 500 + 40   # offset onto waiter time
        worker_span = next(e for e in events if e["pid"] == 2
                           and e.get("ph") == "X")
        assert worker_span["ts"] == 500 + 40  # anchored at queue exit
        # Loadable: every event has a phase; X events have durations.
        assert all("ph" in e for e in events)
        assert all("dur" in e for e in events if e["ph"] == "X")


# ---------------------------------------------------------------------------
# repro top renderer.


class TestTopRender:
    SNAPSHOT = {
        "schema": "repro-serve-metrics-v1", "uptime_s": 12.0,
        "requests": {"total": 20, "by_status": {"200": 18, "429": 2},
                     "by_label": [
                         {"workload": "is", "tier": "auto",
                          "status": "200", "count": 18}]},
        "coalesce_hits": 5, "cas": {"hits": 4, "misses": 6,
                                    "stores": 6},
        "jobs": {"executed": 9, "errors": 0, "timeouts": 0, "shed": 2},
        "queue": {"depth": 1, "limit": 8},
        "workers": {"count": 2, "restarts": 0},
        "latency_ms": {"count": 20, "p50": 5.0, "p99": 20.0,
                       "max": 30.0},
        "stages": {"worker": {"count": 9, "p50": 4.0, "p99": 18.0,
                              "max": 25.0}},
        "traces": {"buffered": 20, "capacity": 256},
    }

    def test_renders_key_numbers(self):
        frame = render_top(self.SNAPSHOT, address="h:1")
        assert "20 total" in frame
        assert "coalesce  25.0%" in frame
        assert "worker" in frame and "p50" in frame
        assert "200:18" in frame and "429:2" in frame

    def test_rate_from_delta(self):
        prev = dict(self.SNAPSHOT,
                    requests=dict(self.SNAPSHOT["requests"], total=10))
        frame = render_top(self.SNAPSHOT, prev, interval_s=2.0,
                           address="h:1")
        assert "5.0 req/s" in frame


# ---------------------------------------------------------------------------
# Byte-identity: observability must never change a result payload.


class TestObservabilityEquivalence:
    def test_execute_request_payload_identical_with_recorder(self):
        from repro.telemetry.spans import SpanRecorder

        norm = normalize_request({"workload": "is", "small": True,
                                  "variant": "plain"})
        plain = execute_request(dict(norm))
        traced = execute_request(dict(norm), recorder=SpanRecorder())
        # wall_ms is a measurement; everything else must be identical,
        # and the recorder must not leak spans into the payload.
        plain.pop("wall_ms"), traced.pop("wall_ms")
        assert "spans" not in traced
        assert canonical(traced) == canonical(plain)

    def test_include_spans_still_works_with_external_recorder(self):
        from repro.telemetry.spans import SpanRecorder

        norm = normalize_request({"workload": "is", "small": True,
                                  "variant": "plain",
                                  "include": ["spans"]})
        recorder = SpanRecorder()
        payload = execute_request(dict(norm), recorder=recorder)
        assert payload["spans"]["schema"] == "repro-spans-v1"
        names = {r["name"] for r in payload["spans"]["records"]}
        assert "execute" in names            # the top-level span
        assert payload["spans"]["records"] == \
            recorder.snapshot()["records"]


# ---------------------------------------------------------------------------
# Server integration: request ids, coalesced trace sharing, the trace
# endpoint, Prometheus over HTTP, access-log schema.


def serve_scenario(scenario, **config_kwargs):
    config_kwargs.setdefault("workers", 1)
    config_kwargs.setdefault("queue_limit", 8)
    config_kwargs.setdefault("timeout_s", 60.0)
    config_kwargs.setdefault("debug", True)
    config_kwargs.setdefault("log_format", "json")

    async def body(tmp):
        server = Server(ServeConfig(port=0, cache_dir=tmp,
                                    **config_kwargs))
        server.log.stream = io.StringIO()
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.close()

    def run(tmp_path):
        return asyncio.run(body(str(tmp_path)))
    return run


async def roundtrip(server, request, method="POST", path="/v1/jobs"):
    client = AsyncClient("127.0.0.1", server.port)
    try:
        return await client.request(method, path, request)
    finally:
        await client.close()


class TestServerObservability:
    def test_request_ids_unique_across_coalesced_waiters(self,
                                                         tmp_path):
        async def scenario(server):
            request = {"kind": "sleep", "seconds": 0.3}
            clients = [AsyncClient("127.0.0.1", server.port)
                       for _ in range(3)]
            try:
                answers = await asyncio.gather(
                    *(c.submit(request) for c in clients))
            finally:
                for c in clients:
                    await c.close()
            assert all(status == 200 for status, _ in answers)
            rids = [body["request_id"] for _, body in answers]
            assert len(set(rids)) == 3          # distinct request ids
            assert sorted(b["coalesced"] for _, b in answers) == \
                [False, True, True]

            # Each waiter's trace embeds the SAME shared job section
            # (owner request id + worker spans), offset per waiter.
            job_rids, owner_events = set(), []
            for rid in rids:
                status, trace = await roundtrip(
                    server, None, "GET", f"/v1/trace/{rid}")
                assert status == 200
                other = trace["otherData"]
                assert other["schema"] == "repro-request-trace-v1"
                assert other["request_id"] == rid
                job_rids.add(other["job_request_id"])
                worker = [e for e in trace["traceEvents"]
                          if e["pid"] == 2 and e.get("ph") == "X"]
                assert worker, "worker-side spans must cross the pipe"
                owner_events.append(
                    sorted(e["name"] for e in worker))
            assert len(job_rids) == 1           # one shared job
            assert job_rids <= set(rids)        # owned by a waiter
            assert owner_events[0] == owner_events[1] == \
                owner_events[2]
        serve_scenario(scenario)(tmp_path)

    def test_trace_endpoint_full_document(self, tmp_path):
        async def scenario(server):
            status, body = await roundtrip(
                server, {"workload": "is", "small": True,
                         "variant": "plain"})
            assert status == 200
            rid = body["request_id"]
            status, trace = await roundtrip(
                server, None, "GET", f"/v1/trace/{rid}")
            assert status == 200
            names = {e.get("name") for e in trace["traceEvents"]}
            # Server stages + worker execution cross one document.
            assert {"admission", "probe", "job_wait", "queue",
                    "worker", "store"} <= names
            pids = {e["pid"] for e in trace["traceEvents"]}
            assert pids == {1, 2}
            # Unknown id → 404; stray path shapes → 404 not 500.
            status, _ = await roundtrip(server, None, "GET",
                                        "/v1/trace/ffffffffffffffff")
            assert status == 404
            status, _ = await roundtrip(server, None, "GET",
                                        "/v1/trace/")
            assert status == 404
        serve_scenario(scenario)(tmp_path)

    def test_prometheus_exposition_over_http(self, tmp_path):
        async def scenario(server):
            status, _ = await roundtrip(
                server, {"kind": "sleep", "seconds": 0.01})
            assert status == 200
            status, body = await roundtrip(
                server, None, "GET", "/metrics?format=prometheus")
            assert status == 200
            text = body["raw"]       # text/plain → client's raw form
            assert "# TYPE repro_serve_http_requests_total counter" \
                in text
            assert 'repro_serve_requests_total{status="200",' \
                   'tier="-",workload="-"} 1' in text
            assert "repro_serve_request_latency_ms_bucket" in text
            # The JSON snapshot still answers without the param.
            status, snapshot = await roundtrip(server, None, "GET",
                                               "/metrics")
            assert snapshot["schema"] == "repro-serve-metrics-v1"
            assert "queue" in snapshot["stages"]
            assert snapshot["requests"]["by_label"] == [
                {"workload": "-", "tier": "-", "status": "200",
                 "count": 1}]
        serve_scenario(scenario)(tmp_path)

    def test_metrics_uptime_and_max_semantics(self, tmp_path):
        async def scenario(server):
            status, first = await roundtrip(server, None, "GET",
                                            "/metrics")
            await asyncio.sleep(0.05)
            status, second = await roundtrip(server, None, "GET",
                                             "/metrics")
            assert second["uptime_s"] > first["uptime_s"] >= 0
            row = second["latency_ms"]
            assert row["max"] >= row["p99"] >= row["p50"] >= 0
        serve_scenario(scenario)(tmp_path)

    def test_access_log_lines_validate_and_carry_outcomes(self,
                                                          tmp_path):
        async def scenario(server):
            await roundtrip(server, {"kind": "sleep", "seconds": 0.01})
            await roundtrip(server, None, "GET", "/healthz")
            return server.log.stream
        # The stream is read after close so the shutdown events
        # (server_stop, pool_close) are present too.
        stream = serve_scenario(scenario)(tmp_path)
        records = [parse_json_line(line)
                   for line in stream.getvalue().splitlines()]
        events = [r["event"] for r in records]
        assert "server_start" in events and "worker_start" in events
        assert "server_stop" in events and "pool_close" in events
        requests = [r for r in records if r["event"] == "request"]
        assert len(requests) == 2
        job = next(r for r in requests if r["path"] == "/v1/jobs")
        assert job["status"] == 200 and job["outcome"] == "fresh"
        assert job["latency_ms"] > 0
        rids = {r["request_id"] for r in requests}
        assert len(rids) == 2

    def test_response_carries_request_id_header(self, tmp_path):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            writer.write(b"GET /healthz HTTP/1.1\r\n"
                         b"Connection: close\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            head = raw.split(b"\r\n\r\n", 1)[0].decode()
            assert "X-Request-Id: " in head
            rid = [line.split(": ", 1)[1]
                   for line in head.splitlines()
                   if line.startswith("X-Request-Id")][0]
            assert len(rid) == 16
        serve_scenario(scenario)(tmp_path)

    def test_served_result_identical_with_log_off_and_json(
            self, tmp_path):
        """The observability configuration must never leak into the
        stored/served result payload."""
        request = {"workload": "is", "small": True, "variant": "plain"}
        results = {}
        for fmt in ("off", "json"):
            async def scenario(server):
                status, body = await roundtrip(server, request)
                assert status == 200
                return body["result"]
            results[fmt] = serve_scenario(scenario, log_format=fmt)(
                tmp_path / fmt)
        assert canonical(results["off"]) == canonical(results["json"])
