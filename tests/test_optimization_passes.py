"""Tests for LICM, CSE, and CFG simplification — including their
interaction with the prefetch pass's emitted code."""

import numpy as np
import pytest

from repro.frontend import compile_source
from repro.ir import (INT64, Load, Module, Prefetch, parse_module,
                      print_module, verify_module)
from repro.machine import Interpreter, Memory
from repro.passes import (CommonSubexpressionEliminationPass,
                          DeadCodeEliminationPass, IndirectPrefetchPass,
                          LoopInvariantCodeMotionPass, PassManager,
                          SimplifyCFGPass)
from tests.conftest import build_indirect_kernel


def run_histogram(module, n=300, buckets=512):
    rng = np.random.default_rng(5)
    mem = Memory()
    keys = mem.allocate(8, n, "keys")
    keys.fill(rng.integers(0, buckets, n))
    out = mem.allocate(8, buckets, "buckets")
    Interpreter(module, mem).run("kernel", [keys.base, out.base, n])
    return list(out.data)


class TestLICM:
    def test_hoists_invariant_arithmetic(self):
        m = parse_module("""
        func @f(%n: i64, %a: i64) -> i64 {
        entry:
          jmp loop
        loop:
          %i = phi i64 [0, entry], [%i.next, loop]
          %inv = mul i64 %a, 3
          %use = add i64 %i, %inv
          %i.next = add i64 %i, 1
          %c = cmp slt i64 %i.next, %n
          br %c, loop, exit
        exit:
          ret i64 %use
        }
        """)
        hoisted = LoopInvariantCodeMotionPass().run(m)
        verify_module(m)
        assert hoisted == 1
        f = m.function("f")
        assert any(i.opcode == "mul" for i in f.block("entry"))
        assert not any(i.opcode == "mul" for i in f.block("loop"))

    def test_does_not_hoist_loads_or_divisions(self):
        m = parse_module("""
        func @f(%p: i64*, %n: i64, %d: i64) -> i64 {
        entry:
          jmp loop
        loop:
          %i = phi i64 [0, entry], [%i.next, loop]
          %v = load i64* %p
          %q = sdiv i64 %n, %d
          %i.next = add i64 %i, 1
          %c = cmp slt i64 %i.next, %n
          br %c, loop, exit
        exit:
          ret i64 %q
        }
        """)
        assert LoopInvariantCodeMotionPass().run(m) == 0

    def test_hoists_prefetch_bound_computation(self):
        # The pass emits "n - 1" clamp bounds in-loop when the bound is
        # an argument; LICM should lift them to the preheader.
        module = build_indirect_kernel()  # keys annotated with %n
        IndirectPrefetchPass().run(module)
        func = module.function("kernel")
        in_loop_before = len(func.block("loop").instructions)
        hoisted = LoopInvariantCodeMotionPass().run(module)
        verify_module(module)
        assert hoisted >= 1
        assert len(func.block("loop").instructions) < in_loop_before

    def test_semantics_preserved(self):
        plain = build_indirect_kernel(num_buckets=512)
        opt = build_indirect_kernel(num_buckets=512)
        IndirectPrefetchPass().run(opt)
        LoopInvariantCodeMotionPass().run(opt)
        verify_module(opt)
        assert run_histogram(plain) == run_histogram(opt)

    def test_nested_invariant_bubbles_out(self):
        m = compile_source("""
        long f(long n, long a) {
            long acc = 0;
            for (long i = 0; i < n; i++)
                for (long j = 0; j < n; j++)
                    acc += a * 7;
            return acc;
        }
        """)
        hoisted = LoopInvariantCodeMotionPass().run(m)
        assert hoisted >= 1
        assert Interpreter(m).run("f", [3, 2]).value == 9 * 14


class TestCSE:
    def test_removes_duplicate_expression(self):
        m = parse_module("""
        func @f(%a: i64, %b: i64) -> i64 {
        entry:
          %x = add i64 %a, %b
          %y = add i64 %a, %b
          %z = add i64 %x, %y
          ret i64 %z
        }
        """)
        removed = CommonSubexpressionEliminationPass().run(m)
        verify_module(m)
        assert removed == 1

    def test_commutative_matching(self):
        m = parse_module("""
        func @f(%a: i64, %b: i64) -> i64 {
        entry:
          %x = add i64 %a, %b
          %y = add i64 %b, %a
          %z = sub i64 %x, %y
          ret i64 %z
        }
        """)
        assert CommonSubexpressionEliminationPass().run(m) == 1

    def test_non_commutative_not_swapped(self):
        m = parse_module("""
        func @f(%a: i64, %b: i64) -> i64 {
        entry:
          %x = sub i64 %a, %b
          %y = sub i64 %b, %a
          %z = add i64 %x, %y
          ret i64 %z
        }
        """)
        assert CommonSubexpressionEliminationPass().run(m) == 0

    def test_dominance_scoped(self):
        # The same expression in two sibling branches must NOT be merged
        # (neither dominates the other).
        m = parse_module("""
        func @f(%a: i64, %p: i1) -> i64 {
        entry:
          br %p, left, right
        left:
          %x = mul i64 %a, 5
          jmp merge
        right:
          %y = mul i64 %a, 5
          jmp merge
        merge:
          %r = phi i64 [%x, left], [%y, right]
          ret i64 %r
        }
        """)
        assert CommonSubexpressionEliminationPass().run(m) == 0

    def test_dominating_def_reused_in_loop(self):
        m = parse_module("""
        func @f(%a: i64, %n: i64) -> i64 {
        entry:
          %x = mul i64 %a, 3
          jmp loop
        loop:
          %i = phi i64 [0, entry], [%i.next, loop]
          %y = mul i64 %a, 3
          %i.next = add i64 %i, %y
          %c = cmp slt i64 %i.next, %n
          br %c, loop, exit
        exit:
          ret i64 %x
        }
        """)
        assert CommonSubexpressionEliminationPass().run(m) == 1

    def test_loads_never_merged(self):
        m = parse_module("""
        func @f(%p: i64*) -> i64 {
        entry:
          %a = load i64* %p
          store i64 99, %p
          %b = load i64* %p
          %c = sub i64 %b, %a
          ret i64 %c
        }
        """)
        assert CommonSubexpressionEliminationPass().run(m) == 0

    def test_cleans_prefetch_duplication(self):
        # HJ-2's three bucket chains duplicate the hash computation; CSE
        # collapses the copies without changing results.
        from repro.workloads import hj2
        wl = hj2(num_probes=400, num_buckets=1 << 8)
        module = wl.build()
        IndirectPrefetchPass().run(module)
        before = sum(1 for _ in module.function("kernel").instructions())
        removed = CommonSubexpressionEliminationPass().run(module)
        verify_module(module)
        assert removed > 0
        mem = Memory()
        prepared = wl.prepare(mem)
        Interpreter(module, mem).run("kernel", prepared.args)
        prepared.validate()


class TestSimplifyCFG:
    def test_merges_linear_chain(self):
        m = compile_source("long f(long x) { return x + 1; }",
                           optimize=True)
        f = m.function("f")
        before = len(f.blocks)
        removed = SimplifyCFGPass().run(m)
        verify_module(m)
        assert removed >= 1
        assert len(f.blocks) < before
        assert Interpreter(m).run("f", [4]).value == 5

    def test_removes_unreachable_block(self):
        m = parse_module("""
        func @f() -> i64 {
        entry:
          ret i64 1
        dead:
          %x = add i64 2, 3
          ret i64 %x
        }
        """)
        removed = SimplifyCFGPass().run(m)
        verify_module(m)
        assert removed == 1
        assert len(m.function("f").blocks) == 1

    def test_forwarding_block_bypassed(self):
        m = parse_module("""
        func @f(%p: i1) -> i64 {
        entry:
          br %p, fwd, other
        fwd:
          jmp join
        other:
          jmp join
        join:
          %r = phi i64 [1, fwd], [2, other]
          ret i64 %r
        }
        """)
        SimplifyCFGPass().run(m)
        verify_module(m)
        f = m.function("f")
        names = {b.name for b in f.blocks}
        assert "fwd" not in names
        # Behaviour unchanged.
        assert Interpreter(m).run("f", [1]).value == 1
        assert Interpreter(m).run("f", [0]).value == 2

    def test_loop_structure_survives(self):
        plain = build_indirect_kernel(num_buckets=512)
        opt = build_indirect_kernel(num_buckets=512)
        SimplifyCFGPass().run(opt)
        verify_module(opt)
        assert run_histogram(plain) == run_histogram(opt)

    def test_frontend_loops_still_prefetchable_after_simplify(self):
        src = """
        void kernel(long* restrict keys, long* restrict buckets, long n) {
            for (long i = 0; i < n; i++)
                buckets[keys[i]] += 1;
        }
        """
        m = compile_source(src)
        SimplifyCFGPass().run(m)
        verify_module(m)
        report = IndirectPrefetchPass().run(m)
        assert report.num_prefetches == 2
        assert run_histogram(m) == run_histogram(compile_source(src))


class TestFullPipeline:
    def test_o2_style_pipeline(self):
        """mem2reg -> simplifycfg -> prefetch -> licm -> cse -> dce,
        verified between every pass, semantics intact."""
        src = """
        void kernel(long* restrict keys, long* restrict buckets, long n) {
            for (long i = 0; i < n; i++) {
                long k = keys[i];
                long h = k * 40503;
                buckets[h & 511] += 1;
            }
        }
        """
        reference = compile_source(src)
        module = compile_source(src)
        pm = PassManager()
        pm.add(SimplifyCFGPass())
        pm.add(IndirectPrefetchPass())
        pm.add(LoopInvariantCodeMotionPass())
        pm.add(CommonSubexpressionEliminationPass())
        pm.add(DeadCodeEliminationPass())
        reports = pm.run(module)
        assert reports["indirect-prefetch"].num_prefetches == 2
        assert run_histogram(module) == run_histogram(reference)
