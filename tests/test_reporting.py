"""Text-rendering helpers: tables, series, telemetry columns."""

from repro.bench.reporting import (format_series, format_table,
                                   telemetry_summary)


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(["Name", "Value"],
                            [["a", 1.2345], ["longer", 2]], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.23" in text  # floats render at two decimals
        assert "2" in text
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # every rendered row aligns

    def test_no_title(self):
        text = format_table(["H"], [["x"]])
        assert text.splitlines()[0] == "H"


class TestFormatSeries:
    def test_dense_series(self):
        text = format_series("S", "x", (1, 2),
                             {"a": {1: 1.0, 2: 2.0},
                              "b": {1: 3.0, 2: 4.0}})
        assert "1.00" in text and "4.00" in text
        assert text.splitlines()[2].split("|")[0].strip() == "x"

    def test_sparse_series_renders_empty_cells(self):
        # A series missing some x values must render blanks, not crash.
        text = format_series("S", "c", (4, 8, 16),
                             {"full": {4: 1.0, 8: 2.0, 16: 3.0},
                              "sparse": {8: 9.0}})
        rows = text.splitlines()[4:]
        assert len(rows) == 3
        row4 = rows[0].split("|")
        assert row4[0].strip() == "4"
        assert row4[2].strip() == ""  # sparse has no value at x=4
        assert rows[1].split("|")[2].strip() == "9.00"

    def test_entirely_empty_series(self):
        text = format_series("S", "x", (1, 2), {"none": {}})
        rows = text.splitlines()[4:]
        assert all(row.split("|")[1].strip() == "" for row in rows)

    def test_non_float_cells(self):
        # x values and cells may be strings or ints; ints pass through
        # unrounded and strings verbatim.
        text = format_series("S", "depth", ("a", 2),
                             {"s": {"a": "n/a", 2: 7}})
        assert "n/a" in text
        body = text.splitlines()[5]
        assert body.split("|")[1].strip() == "7"
        assert "7.00" not in text

    def test_no_xs(self):
        text = format_series("S", "x", (), {"a": {1: 1.0}})
        # Title, rule, header, separator — and no data rows.
        assert len(text.splitlines()) == 4


class TestTelemetrySummary:
    def test_empty_for_missing_snapshot(self):
        assert telemetry_summary(None) == {}
        assert telemetry_summary({}) == {}

    def test_columns_from_snapshot(self):
        snap = {"prefetch": {"issued": 10, "accuracy": 0.5,
                             "outcomes": {"timely": 4, "late": 1}}}
        summary = telemetry_summary(snap)
        assert summary == {"Pf issued": 10, "Pf timely": 4,
                           "Pf late": 1, "Pf accuracy": 0.5}
